#!/usr/bin/env python3
"""Anatomy of a traced decision: spans, critical path, and the run report.

Part 1 attaches the observability runtime to a Protected Memory Paxos
cluster, renders the leader's span tree, and asks the critical-path
analyzer to decompose decision latency into the paper's units — the
steady-state answer is exactly **2 memory delays** (the single
permission-fenced phase-2 write).  Part 2 does the same for
message-passing Paxos: 4 message delays end to end, of which the
decision-forming accept phase costs 2.

Part 3 traces the whole stack at once: a sharded KV workload with a
crash/recover fault in the middle, streaming spans to sinks, sampling
gauges on a virtual-time ticker, and finishing with the combined run
report (workload + fault timeline + metrics registry + task profile).

Run:  python examples/trace_anatomy.py
      python examples/trace_anatomy.py --perfetto trace.json --flight flight.json

The ``--perfetto`` file loads in https://ui.perfetto.dev; ``--flight``
writes a flight-recorder dump (tripped manually at the end of the run as
a demonstration — real trips come from strict-safety violations).
"""

import argparse

from repro import (
    ClosedLoopClient,
    FaultScript,
    MessagePaxos,
    OperationMix,
    ProtectedMemoryPaxos,
    ShardConfig,
    ShardedKV,
    UniformKeys,
)
from repro.core.cluster import Cluster, ClusterConfig
from repro.metrics.reporting import run_report
from repro.obs import ChromeTraceSink, JsonlSink, attach, critical_path, render_tree
from repro.types import ProcessId


def traced_consensus(protocol, name: str) -> None:
    print(f"=== {name}: one traced decision ===")
    cluster = Cluster(protocol, ClusterConfig(3, 3))
    runtime = attach(cluster.kernel)
    result = cluster.run(["a", "b", "c"])
    assert result.agreed

    leader = ProcessId(0)
    path = critical_path(runtime, leader)
    _, trace_id = runtime.decide_points[(leader, None)]
    print("span tree of the deciding trace:")
    print(render_tree(runtime.spans, trace_id))
    print()
    print(path.summary())
    print()


def traced_stack(args) -> None:
    print("=== whole stack: sharded KV under a crash, traced ===")
    script = FaultScript()
    script.at(30.0).crash_process(2).recover(at=90.0)
    service = ShardedKV(
        ShardConfig(
            n_shards=2, n_processes=3, n_memories=3, faults=script, deadline=100_000
        )
    )
    # the task profile measures host wall clock, which would make stdout
    # nondeterministic — the determinism probe diffs two runs byte for byte
    runtime = attach(service.kernel, flight_path=args.flight, profile=args.profile)
    if args.perfetto:
        runtime.add_sink(ChromeTraceSink(args.perfetto))
    if args.jsonl:
        runtime.add_sink(JsonlSink(args.jsonl))
    runtime.start_sampling(interval=5.0, until=200.0)

    # pin clients to p1/p2 — p3 crashes at t=30 and recovers at t=90
    clients = [
        ClosedLoopClient(
            client_id=c,
            n_ops=12,
            keys=UniformKeys(32),
            mix=OperationMix(0.3),
            think_time=10.0,
            pid=c % 2,
        )
        for c in range(4)
    ]
    report = service.run_workload(clients)
    assert report.ok

    if args.flight:
        runtime.flight.trip("demo dump (end of run)", service.kernel.now)
        print(f"flight-recorder dump written to {args.flight}")
    runtime.close()
    if args.perfetto:
        print(f"perfetto trace written to {args.perfetto} "
              "(load it at https://ui.perfetto.dev)")
    if args.jsonl:
        print(f"span JSONL written to {args.jsonl}")
    print()
    print(run_report(report, service.kernel.metrics, runtime))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--perfetto", help="write a Perfetto/Chrome trace here")
    parser.add_argument("--jsonl", help="stream span JSONL here")
    parser.add_argument("--flight", help="write a flight-recorder dump here")
    parser.add_argument("--profile", action="store_true",
                        help="include the host-wall-clock task profile in the "
                             "report (nondeterministic stdout)")
    args = parser.parse_args()

    traced_consensus(ProtectedMemoryPaxos(), "Protected Memory Paxos")
    traced_consensus(MessagePaxos(), "Message-passing Paxos")
    traced_stack(args)


if __name__ == "__main__":
    main()
