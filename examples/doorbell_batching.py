#!/usr/bin/env python3
"""Doorbell batching, side by side: fused op chains vs one-at-a-time.

Part 1 traces a Protected Memory Paxos decision with the prepare phase
enabled (``skip_first_attempt=False``) both ways.  Classic PMP runs three
sequential memory rounds per replica — permission grab, probe write,
snapshot read — before the phase-2 write: 8 delays to decide.  The
batched protocol posts the same three ops as ONE fused chain (one queue
entry out, one completion back), so prepare costs a single round and the
decision lands in 4 delays.  The span trees make the difference visible:
three ``memop`` spans per replica collapse into one ``BatchOp`` span
annotated with its sub-op count, and the critical-path analyzer prices
the chain at one round trip.

Part 2 runs the identically-seeded sharded-KV workload (quorum reads,
so both replication phase 2 and the read plane exercise chains) with
``batch_chains`` off and on, and compares per-commit event counts: the
batched run schedules fewer kernel events and opens fewer memop spans
per committed command.  (The closed-loop driver draws ops from the
kernel's seeded RNG, so flipping the mechanism perturbs the exact op
sequence; the comparison is therefore per-commit, and the staleness
tripwire stays at zero both ways — behavioural equivalence itself is
pinned by the test suite and the exhaustive schedule explorer.)

Run:  python examples/doorbell_batching.py
"""

from repro import (
    ClosedLoopClient,
    OperationMix,
    PmpConfig,
    ProtectedMemoryPaxos,
    ShardConfig,
    ShardedKV,
    UniformKeys,
)
from repro.core.cluster import Cluster, ClusterConfig
from repro.metrics.reporting import format_table
from repro.obs import attach, critical_path, render_tree
from repro.obs.spans import K_MEMOP
from repro.types import ProcessId


def traced_decision(batch_chains: bool) -> None:
    label = "batched chains" if batch_chains else "classic rounds"
    print(f"--- {label} ---")
    config = PmpConfig(skip_first_attempt=False, batch_chains=batch_chains)
    cluster = Cluster(ProtectedMemoryPaxos(config), ClusterConfig(3, 3))
    runtime = attach(cluster.kernel)
    result = cluster.run(["a", "b", "c"])
    assert result.agreed

    leader = ProcessId(0)
    _, trace_id = runtime.decide_points[(leader, None)]
    print("span tree of the deciding trace:")
    print(render_tree(runtime.spans, trace_id))
    memops = [s for s in runtime.spans if s.kind == K_MEMOP]
    chains = [s for s in memops if s.name == "BatchOp"]
    sub_ops = sum(s.attrs.get("ops", 1) for s in memops)
    print(
        f"memop spans: {len(memops)} ({len(chains)} fused chains) "
        f"covering {sub_ops} one-sided ops"
    )
    print(critical_path(runtime, leader).summary())
    print()


def stack_side_by_side() -> None:
    print("=== sharded KV, same seeded workload, batch_chains off vs on ===\n")
    rows = []
    for batch_chains in (False, True):
        service = ShardedKV(
            ShardConfig(
                n_shards=2, batch_max=4, seed=7, read_mode="quorum",
                batch_chains=batch_chains, deadline=10.0**6,
            )
        )
        runtime = attach(service.kernel)
        clients = [
            ClosedLoopClient(
                client_id=c, n_ops=10, keys=UniformKeys(32),
                mix=OperationMix(0.5),
            )
            for c in range(12)
        ]
        report = service.run_workload(clients)
        assert report.ok
        kernel = service.kernel
        ledger = kernel.metrics
        assert ledger.staleness_violations == 0
        commits = sum(ledger.shard_commits.values())
        memops = [s for s in runtime.spans if s.kind == K_MEMOP]
        chains = sum(1 for s in memops if s.name == "BatchOp")
        rows.append(
            [
                "on" if batch_chains else "off",
                commits,
                kernel.queue.popped,
                f"{kernel.queue.popped / commits:.1f}",
                ledger.total_mem_ops(),
                len(memops),
                chains,
                f"{kernel.now:.0f}",
            ]
        )
    print(
        format_table(
            ["chains", "commits", "events", "events/commit",
             "one-sided ops", "memop spans", "fused chains", "finish"],
            rows,
        )
    )
    print(
        "\nSame workload, zero staleness violations both ways — the batched\n"
        "run just rings fewer doorbells per commit: every phase-2 slot\n"
        "write fuses with its watermark publish, and every quorum read\n"
        "fetches watermark + entries in one chain per memory."
    )


def main() -> None:
    print("=== one PMP decision with the prepare phase on, traced ===\n")
    traced_decision(batch_chains=False)
    traced_decision(batch_chains=True)
    stack_side_by_side()


if __name__ == "__main__":
    main()
