#!/usr/bin/env python3
"""A Byzantine-tolerant ordering service with n = 2f+1 replicas.

Three replicas agree on the next ledger batch using Fast & Robust
(Theorem 4.9).  Scenario 1 is the common case: the leader's batch commits
after a single two-delay RDMA write with one signature.  In scenario 2 the
leader is *Byzantine* — it writes different signed batches to different
memory replicas trying to split the honest replicas — and the composition
falls back to Preferential Paxos over Robust Backup, which commits a single
batch anyway.

Note the resilience: with message passing alone, Byzantine agreement needs
n >= 3f+1 = 4 replicas; RDMA's protected memory does it with 3.

Run:  python examples/byzantine_ledger.py
"""

from repro import (
    CheapQuorumEquivocatorLeader,
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig

BATCH_P1 = ("tx: alice->bob 10", "tx: carol->dave 5")
BATCH_P2 = ("tx: bob->carol 7",)
BATCH_P3 = ("tx: dave->alice 3",)


def common_case() -> None:
    print("Scenario 1: honest leader, synchronous network")
    result = run_consensus(
        FastRobust(),
        n_processes=3,
        n_memories=3,
        inputs=[BATCH_P1, BATCH_P2, BATCH_P3],
        deadline=20_000,
    )
    assert result.agreed and result.valid
    (batch,) = result.decided_values
    print(f"  committed batch : {batch}")
    print(f"  decision delays : {result.earliest_decision_delay:g} "
          "(one RDMA write)")
    print(f"  all replicas    : {'decided' if result.all_decided else 'stuck'}\n")


def byzantine_leader() -> None:
    print("Scenario 2: Byzantine leader equivocates across memory replicas")
    faults = FaultPlan().make_byzantine(
        0, CheapQuorumEquivocatorLeader(value_a=("forged-A",), value_b=("forged-B",))
    )
    config = FastRobustConfig(
        cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
    )
    result = run_consensus(
        FastRobust(config),
        n_processes=3,
        n_memories=3,
        inputs=[BATCH_P1, BATCH_P2, BATCH_P3],
        faults=faults,
        omega=lambda now: 1,  # an honest replica leads the backup path
        deadline=30_000,
    )
    assert result.agreed, "honest replicas diverged!"
    (batch,) = result.decided_values
    print(f"  committed batch : {batch}")
    print("  honest replicas panicked, revoked the leader's write permission,")
    print("  and agreed via Preferential Paxos — no split, no forged commit.")
    assert result.all_decided


def main() -> None:
    print("Byzantine ledger: n = 3 = 2f+1 replicas, f = 1\n")
    common_case()
    byzantine_leader()


if __name__ == "__main__":
    main()
