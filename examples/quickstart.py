#!/usr/bin/env python3
"""Quickstart: run every algorithm from the paper once and compare delays.

This reproduces the paper's headline comparison in one screen: the
RDMA-enabled algorithms (Protected Memory Paxos, Aligned Paxos, Fast &
Robust) decide in two network delays while matching or beating the
resilience of the slower baselines.

Run:  python examples/quickstart.py
"""

from repro import (
    AlignedPaxos,
    DiskPaxos,
    FastPaxos,
    FastRobust,
    MessagePaxos,
    ProtectedMemoryPaxos,
    RobustBackup,
    run_consensus,
)
from repro.metrics.reporting import format_table


def main() -> None:
    rows = []
    for name, protocol, n, m, resilience, model in [
        ("Message Paxos", MessagePaxos(), 3, 0, "n >= 2f+1", "crash"),
        ("Fast Paxos", FastPaxos(), 3, 0, "n >= 2f+1", "crash"),
        ("Disk Paxos", DiskPaxos(), 3, 3, "n >= f+1", "crash"),
        ("Protected Memory Paxos", ProtectedMemoryPaxos(), 3, 3, "n >= f+1", "crash"),
        ("Aligned Paxos", AlignedPaxos(), 3, 3, "maj. of n+m", "crash"),
        ("Robust Backup", RobustBackup(), 3, 3, "n >= 2f+1", "Byzantine"),
        ("Fast & Robust", FastRobust(), 3, 3, "n >= 2f+1", "Byzantine"),
    ]:
        result = run_consensus(protocol, n_processes=n, n_memories=m, deadline=20_000)
        assert result.agreed and result.valid, f"{name} failed!"
        rows.append(
            [
                name,
                model,
                resilience,
                f"{result.earliest_decision_delay:g}",
                "yes" if result.all_decided else "no",
            ]
        )

    print("Common-case execution (synchronous, no failures), n=3 processes:\n")
    print(
        format_table(
            ["algorithm", "faults", "resilience", "delays", "all decided"], rows
        )
    )
    print(
        "\nThe paper's claim: RDMA (dynamic permissions + shared memory +"
        "\nmessages) gets BOTH the 2-delay fast path and the best resilience."
    )


if __name__ == "__main__":
    main()
