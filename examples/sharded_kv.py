#!/usr/bin/env python3
"""A sharded replicated KV service under a YCSB-style workload.

Four consensus groups (Protected Memory Paxos logs) share one simulated
cluster of 3 processes and 3 memories.  Keys are consistent-hashed to
shards, each shard pins its own leader so proposal work spreads across
processes, and leaders drain client requests into batches so one
two-delay consensus instance commits many commands.

Run:  python examples/sharded_kv.py
"""

from repro.shard import (
    ClosedLoopClient,
    ShardConfig,
    ShardedKV,
    YCSB_B,
    ZipfianKeys,
)

N_SHARDS = 4
N_CLIENTS = 12
OPS_PER_CLIENT = 10


def main() -> None:
    print(
        f"Sharded replicated KV: {N_SHARDS} shards, 3 replicas, 3 memories, "
        f"{N_CLIENTS} Zipfian closed-loop clients (YCSB-B)\n"
    )
    service = ShardedKV(ShardConfig(n_shards=N_SHARDS, batch_max=8, seed=42))
    for g in range(N_SHARDS):
        print(f"  shard g{g}: leader p{service.leader_of(g) + 1}")

    clients = [
        ClosedLoopClient(
            client_id=i,
            n_ops=OPS_PER_CLIENT,
            keys=ZipfianKeys(256),
            mix=YCSB_B,
        )
        for i in range(N_CLIENTS)
    ]
    report = service.run_workload(clients)

    print(f"\n{report.summary()}\n")
    print(report.per_shard_table())

    # Every replica of every shard converged on the identical store.
    for g in range(N_SHARDS):
        snapshots = [service.machine(pid, g).snapshot() for pid in range(3)]
        assert all(s == snapshots[0] for s in snapshots), f"shard {g} diverged!"
        for key in snapshots[0]:
            assert service.partitioner.shard_for(key) == g, "misrouted key!"
    total = report.completed_requests
    assert total == N_CLIENTS * OPS_PER_CLIENT
    print(
        f"\nAll {N_SHARDS} shards converged across replicas; every key lives "
        f"on its hash-owner shard.\n"
        f"{total} requests committed at {report.commands_per_delay:.2f} "
        f"commands/delay (batch fill {report.mean_batch_fill:.1f})."
    )


if __name__ == "__main__":
    main()
