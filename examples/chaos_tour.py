#!/usr/bin/env python3
"""A tour of the event-driven fault plane: FaultScript chaos end to end.

Four acts, each one scripted timeline against Protected Memory Paxos (plus
a sharded-KV finale):

  1. crash the leader mid-attempt, recover it later — the successor takes
     over via permissions; the restarted leader re-adopts from the regions;
  2. partition the minority, heal — the minority rejoins through the
     memories without a single message being re-sent;
  3. link chaos — delay inflation and duplication, survived silently;
  4. permission storm — an adversary legally steals the region six times;
     the leader out-retries it.

Run:  python examples/chaos_tour.py
"""

from repro import (
    ClosedLoopClient,
    FaultScript,
    ProtectedMemoryPaxos,
    ShardConfig,
    ShardedKV,
    UniformKeys,
)
from repro.consensus.omega import crash_aware_omega
from repro.core.cluster import Cluster, ClusterConfig


def show(title, cluster, result):
    timeline = cluster.kernel.metrics.fault_timeline
    print(f"--- {title}")
    for record in timeline:
        extra = f" {record.detail}" if record.detail else ""
        print(f"    t={record.time:<6g} {record.kind:<13} {record.subject}{extra}")
    verdict = "agreed" if result.agreed else "DISAGREED"
    print(f"    -> {verdict}, all decided: {result.all_decided}")
    for pid in sorted(result.metrics.decisions):
        rec = result.metrics.decisions[pid]
        print(f"       p{int(pid)+1}: {rec.value!r} at t={rec.decided_at:g}")
    print()


def act_crash_recover():
    script = FaultScript().at(1.0).crash_process(0).recover(at=30.0)
    cluster = Cluster(
        ProtectedMemoryPaxos(), ClusterConfig(3, 3, deadline=60_000), script
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    show("leader crash + recovery", cluster, cluster.run(["a", "b", "c"]))


def act_partition_heal():
    from repro.core.scenarios import partition_minority

    cluster = partition_minority(ProtectedMemoryPaxos(), heal_at=25.0)
    result = cluster.run(["a", "b", "c"])
    show("partition minority + heal", cluster, result)
    print(f"    (messages lost to the partition: "
          f"{cluster.kernel.network.partition_dropped})\n")


def act_link_chaos():
    script = (
        FaultScript()
        .at(0.0).delay_link(0, 1, factor=4.0, until=15.0, symmetric=True)
        .at(0.0).duplicate_link(0, 2, prob=1.0, until=15.0)
    )
    cluster = Cluster(
        ProtectedMemoryPaxos(), ClusterConfig(3, 3, deadline=60_000), script
    )
    show("link chaos (delay x4, duplication)", cluster, cluster.run(["a", "b", "c"]))


def act_permission_storm():
    from repro.core.scenarios import permission_storm

    cluster = permission_storm(ProtectedMemoryPaxos(), shots=6, spacing=1.5)
    result = cluster.run(["a", "b", "c"])
    grabs = cluster.kernel.metrics.faults_of("perm_change")
    stolen = sum(1 for record in grabs if record.detail["ok"])
    show("permission storm", cluster, result)
    print(f"    (adversarial grabs: {len(grabs)}, acknowledged: {stolen})\n")


def finale_sharded_churn():
    script = FaultScript().at(40.0).crash_process(1).recover(at=160.0)
    service = ShardedKV(
        ShardConfig(n_shards=3, n_processes=3, batch_max=4, seed=3,
                    retry_timeout=25.0, deadline=10_000.0, faults=script)
    )
    clients = [
        ClosedLoopClient(client_id=i, n_ops=12, keys=UniformKeys(32),
                         think_time=6.0, pid=pid)
        for i, pid in enumerate((0, 2, 0, 2))
    ]
    report = service.run_workload(clients)
    print("--- sharded finale: shard-1 leader churns, the service carries on")
    print(f"    completed {report.completed_requests}/{report.expected_requests} "
          f"requests in {report.elapsed:g} time units")
    for record in service.kernel.metrics.fault_timeline:
        print(f"    t={record.time:<6g} {record.kind:<13} {record.subject}")
    for g in range(3):
        counts = {service.machines[(p, g)].applied_count for p in range(3)}
        print(f"    shard {g}: replicas converged on {counts} applied entries")


def main() -> None:
    print("FaultScript chaos tour: the failure landscape keeps changing, "
          "agreement does not.\n")
    act_crash_recover()
    act_partition_heal()
    act_link_chaos()
    act_permission_storm()
    finale_sharded_churn()


if __name__ == "__main__":
    main()
