#!/usr/bin/env python3
"""Causal what-if profiling, differential tracing, and the SLO plane.

Part 1 asks the question a wall-clock profiler cannot answer: *which
component, if faster, would actually move end-to-end latency?*  The
:class:`~repro.obs.whatif.WhatIfProfiler` replays a classic (unbatched,
skip-off) Protected Memory Paxos decision under virtual speedups —
memories, links, per-WR issue cost, or a whole named phase — on the
identical seed and schedule, and ranks experiments by measured impact.
The headline: the top-ranked bottleneck is the prepare-phase fan-out,
and removing two-thirds of it reproduces the exact 8 -> 4 delay win
that doorbell batching (PR 8) delivered for real.  Every replay is
hash-checked, so a counterfactual that silently changed the schedule
would fail loudly instead of lying.

Part 2 diffs two *real* runs — classic vs. doorbell-batched — aligning
their span trees by causal identity and attributing the latency delta
segment by segment: individual WriteOps disappear, fused BatchOps
appear, and the prepare phase shrinks by exactly 4 delays.

Part 3 arms the SLO plane on a sharded KV service and crashes the
leader mid-workload: burn-rate objectives over virtual-time windows
breach deterministically, land in the metrics ledger, and surface in
the run report.

Run:  python examples/whatif_tour.py
      python examples/whatif_tour.py --slo-report slo.json --diff-report diff.json
"""

import argparse
import json

from repro import (
    ClosedLoopClient,
    FaultScript,
    OperationMix,
    ProtectedMemoryPaxos,
    ShardConfig,
    ShardedKV,
    UniformKeys,
)
from repro.consensus.protected_memory_paxos import PmpConfig
from repro.core.cluster import Cluster, ClusterConfig
from repro.metrics.reporting import run_report
from repro.obs import (
    Objective,
    WhatIfProfiler,
    attach,
    critical_delta,
    critical_path,
    diff_runs,
    format_critical_delta,
    issue_experiment,
    link_experiment,
    memory_experiment,
    phase_experiment,
)


def banner(title: str) -> None:
    print()
    print("=" * 66)
    print(title)
    print("=" * 66)


# ----------------------------------------------------------------------
# part 1: rank the bottlenecks of a classic PMP decision
# ----------------------------------------------------------------------
def classic_pmp(latency):
    """Skip-off, unbatched PMP: the paper's full two-phase slow path."""
    cluster = Cluster(
        ProtectedMemoryPaxos(PmpConfig(skip_first_attempt=False, batch_chains=False)),
        ClusterConfig(3, 3, latency=latency),
    )
    attach(cluster.kernel)
    return cluster.run(["a", "b", "c"])


def part_whatif() -> dict:
    banner("Part 1 — causal what-if profiling (classic PMP, 8 delays)")
    profiler = WhatIfProfiler(classic_pmp, check_determinism=True)
    experiments = [
        phase_experiment("pmp.prepare", 1 / 3, name="prepare fan-out"),
        phase_experiment("pmp.phase2", 0.5, name="phase-2 write"),
        link_experiment(0.5, name="all links"),
        memory_experiment(None, 0.5, name="all memories"),
        issue_experiment(0.5, name="issue cost"),
    ]
    report = profiler.rank(experiments, k=3)
    print(report.summary())
    print()
    baseline = report.baseline.measurement
    print("critical-path recomposition of the baseline:")
    for phase, parts in sorted(baseline.phase_delays.items()):
        print(f"  {phase}: {parts}")
    top = report.top
    print()
    print(
        f"top bottleneck: {top.experiment.name} "
        f"({top.before:g} -> {top.after:g} delays, {top.speedup:.2f}x)"
    )
    print("  -> the counterfactual predicts the doorbell-batching win of PR 8")
    return {
        "baseline_delays": baseline.earliest_delay,
        "ranked": [
            {
                "rank": r.rank,
                "experiment": r.experiment.name,
                "before": r.before,
                "after": r.after,
            }
            for r in report.ranked
        ],
    }


# ----------------------------------------------------------------------
# part 2: differential tracing, classic vs. doorbell-batched
# ----------------------------------------------------------------------
def pmp_run(batch_chains: bool):
    cluster = Cluster(
        ProtectedMemoryPaxos(
            PmpConfig(skip_first_attempt=False, batch_chains=batch_chains)
        ),
        ClusterConfig(3, 3),
    )
    runtime = attach(cluster.kernel)
    cluster.run(["a", "b", "c"])
    return cluster, runtime


def part_diff() -> dict:
    banner("Part 2 — differential tracing (classic vs. doorbell-batched)")
    _, classic = pmp_run(False)
    _, batched = pmp_run(True)
    diff = diff_runs(classic, batched)
    print(diff.summary(limit=10))
    print()
    delta = critical_delta(critical_path(classic, 0), critical_path(batched, 0))
    print("critical-path delta (batched minus classic):")
    print(format_critical_delta(delta))
    return {
        "total_delta": diff.total_delta,
        "matched": len(diff.matched),
        "only_classic": len(diff.only_a),
        "only_batched": len(diff.only_b),
        "critical_delta": delta,
    }


# ----------------------------------------------------------------------
# part 3: the SLO plane under chaos
# ----------------------------------------------------------------------
def part_slo() -> dict:
    banner("Part 3 — SLO plane: burn-rate breaches under a leader crash")
    script = FaultScript()
    script.at(60.0).crash_process(0).recover(at=160.0)
    service = ShardedKV(
        ShardConfig(
            n_shards=2,
            n_processes=3,
            n_memories=3,
            seed=7,
            faults=script,
            # NB: the slo tuple below keeps evaluation on virtual time,
            # so this whole part's stdout is deterministic (the runtime
            # is attached with profile=False for the same reason)
            slo=(
                Objective(
                    "commit-latency",
                    latency_budget=40.0,
                    target=0.9,
                    window=50.0,
                    long_window=150.0,
                    burn_threshold=2.0,
                ),
            ),
        )
    )
    runtime = attach(service.kernel, profile=False)
    clients = [
        ClosedLoopClient(
            client_id=i,
            n_ops=30,
            keys=UniformKeys(40),
            mix=OperationMix(read_fraction=0.3),
        )
        for i in range(6)
    ]
    report = service.run_workload(clients, deadline=2000.0)
    print(run_report(report, service.kernel.metrics, runtime, title="slo chaos tour"))
    return {
        "objectives": runtime.slo.snapshot()["objectives"],
        "timeline": [
            {"time": r.time, "kind": r.kind, "subject": r.subject}
            for r in service.kernel.metrics.slo_timeline
        ],
        "total_breaches": runtime.slo.total_breaches(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slo-report", help="write the SLO summary JSON here")
    parser.add_argument("--diff-report", help="write the trace-diff JSON here")
    args = parser.parse_args()

    whatif = part_whatif()
    diff = part_diff()
    slo = part_slo()

    if args.diff_report:
        with open(args.diff_report, "w", encoding="utf-8") as fh:
            json.dump({"whatif": whatif, "diff": diff}, fh, indent=2)
        print(f"\nwrote {args.diff_report}")
    if args.slo_report:
        with open(args.slo_report, "w", encoding="utf-8") as fh:
            json.dump(slo, fh, indent=2)
        print(f"wrote {args.slo_report}")


if __name__ == "__main__":
    main()
