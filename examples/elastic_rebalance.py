"""Elastic rebalance tour: autoscale 2 -> 4 shards under Zipfian load.

Starts a 2-shard :class:`ElasticKV` with the autoscaler armed, drives a
Zipfian closed-loop workload at it, and lets the control plane do the
rest: the ledger's per-shard commit rates cross the split threshold, the
autoscaler proposes, the config log commits, and the coordinator runs
the fenced migration dance — twice.  Prints the epoch history, per-epoch
moved-key counts, and p99 latency before/after the reconfigurations.

Run:  python examples/elastic_rebalance.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    AutoscalerConfig,
    ClosedLoopClient,
    ElasticConfig,
    ElasticKV,
    ZipfianKeys,
)
from repro.metrics.workload import percentile  # noqa: E402


def main() -> None:
    service = ElasticKV(
        ElasticConfig(
            n_shards=2,
            n_processes=4,
            batch_max=4,
            seed=29,
            retry_timeout=25.0,
            deadline=200_000.0,
            autoscaler=AutoscalerConfig(
                interval=50.0,
                split_above=60.0,  # commands per kilo-delay per shard
                cooldown=140.0,
                max_shards=4,
            ),
        )
    )
    print("epoch 0:", service.epoch)
    clients = [
        ClosedLoopClient(
            client_id=i,
            n_ops=220,
            keys=ZipfianKeys(200, prefix="zk"),
            think_time=1.0,
        )
        for i in range(6)
    ]
    report = service.run_workload(clients)
    assert report.ok, report.summary()
    print(f"\nworkload: {report.summary()}")

    ledger = service.kernel.metrics
    activations = {
        int(record.subject[1:]): record.time
        for record in ledger.reconfigs_of("activate")
    }
    moved = service.moved_by_epoch()
    print("\nepoch history:")
    for epoch in service.epochs:
        when = activations.get(epoch.number)
        line = (
            f"  e{epoch.number}: shards={list(epoch.shards)} "
            f"leaders={ {g: int(p) + 1 for g, p in sorted(epoch.leaders.items())} }"
        )
        if epoch.number:
            line += f"  moved={moved.get(epoch.number, 0)} keys"
            line += f"  activated at t={when:g}" if when is not None else "  (pending)"
        print(line)
    assert service.epoch.number == 2, "expected two autoscaler splits"
    assert len(service.shards) == 4

    first_cutover = min(activations.values())
    last_cutover = max(activations.values())
    before, after = [], []
    for samples in ledger.shard_latencies.values():
        for t, latency in samples:
            if t <= first_cutover:
                before.append(latency)
            elif t > last_cutover:
                after.append(latency)
    print(
        f"\np99 latency: {percentile(before, 0.99):g} delays on 2 shards "
        f"(before e1) -> {percentile(after, 0.99):g} delays on 4 shards "
        f"(after e{service.epoch.number})"
    )
    print(
        "autoscaler proposals:",
        [(f"t={t:g}", repr(p)) for t, p in service.autoscaler.proposals],
    )
    print("per-shard distribution of the hot keyspace now:")
    counts = service.partitioner.distribution(f"zk{i}" for i in range(200))
    for shard in sorted(counts):
        print(f"  g{shard}: {counts[shard]} of 200 keys")


if __name__ == "__main__":
    main()
