#!/usr/bin/env python3
"""Theorem 6.1, live: why dynamic permissions are necessary.

Builds the paper's impossibility argument as three executions under the
same adversarial schedule (delay the fast proposer's writes until a second
proposer finished a solo run):

1. a strawman that decides in two delays from static-permission shared
   memory — it violates agreement on cue;
2. Disk Paxos — safe, but only because it pays a confirming read
   (4 delays);
3. Protected Memory Paxos — safe at two delays: the revoked permission
   turns the delayed write into a nak.

Run:  python examples/lower_bound_demo.py
"""

from repro.lowerbound import (
    attack_disk_paxos,
    attack_naive_fast,
    attack_protected_memory_paxos,
    solo_fast_delay,
)
from repro.metrics.reporting import format_table


def main() -> None:
    print("Theorem 6.1: no 2-deciding consensus from static-permission")
    print("shared memory — the proof's schedule, executed.\n")

    print(f"Step 1: the strawman IS 2-deciding when alone "
          f"(solo delay = {solo_fast_delay():g}).\n")

    naive = attack_naive_fast()
    pmp = attack_protected_memory_paxos()
    disk = attack_disk_paxos()

    rows = [
        [
            "strawman (static perms, 2 delays)",
            "VIOLATED" if naive.agreement_violated else "held",
            str(naive.decisions),
        ],
        [
            "Disk Paxos (static perms, 4 delays)",
            "VIOLATED" if disk.agreement_violated else "held",
            str(disk.decisions),
        ],
        [
            "Protected Memory Paxos (dynamic perms, 2 delays)",
            "VIOLATED" if pmp.agreement_violated else "held",
            str(pmp.decisions),
        ],
    ]
    print("Step 2: the adversary delays the fast proposer's writes while a")
    print("second proposer runs solo to a decision:\n")
    print(format_table(["algorithm", "agreement", "decisions"], rows))

    print(f"\nThe mechanism: PMP's held-back write came back NAK "
          f"({pmp.fast_path_write_naked}) — the")
    print("takeover revoked its permission, so the two-delay path detects")
    print("contention without reading.  Static permissions must choose:")
    print("pay the confirming read (Disk Paxos) or split (the strawman).")


if __name__ == "__main__":
    main()
