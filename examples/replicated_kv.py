#!/usr/bin/env python3
"""A replicated key-value store on Protected Memory Paxos instances.

Three replicas, three memories.  The leader commits each command with a
single two-delay RDMA write (the paper's Section 5.1 fast path); when the
leader crashes mid-workload, a successor grabs the memories' write
permissions, recovers the committed prefix and continues — no committed
write is ever lost.

Run:  python examples/replicated_kv.py
"""

from repro.consensus.base import ConsensusProtocol
from repro.core.cluster import Cluster, ClusterConfig
from repro.failures.plans import FaultPlan
from repro.consensus.omega import crash_aware_omega
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import ReplicatedLog, smr_regions

WORKLOAD = [
    KVCommand("put", "alice", 100),
    KVCommand("put", "bob", 250),
    KVCommand("put", "carol", 75),
    KVCommand("put", "alice", 90),   # alice spends 10
    KVCommand("delete", "carol"),    # carol closes her account
    KVCommand("put", "dave", 500),
    KVCommand("put", "bob", 300),
]


class ReplicatedKV(ConsensusProtocol):
    """Wires one KV state machine + replicated log per replica."""

    name = "replicated-kv"

    def __init__(self, workload):
        self.workload = workload
        self.machines = {}

    def regions(self, n, m):
        return smr_regions(n)

    def tasks(self, env, value):
        machine = KVStateMachine()
        log = ReplicatedLog(env, machine.apply)
        self.machines[int(env.pid)] = machine
        total = len(self.workload)

        def driver():
            slot = 0
            while log.applied_upto < total - 1:
                if env.leader() == env.pid:
                    slot = log.applied_upto + 1
                    command = self.workload[slot]
                    committed = yield from log.propose(slot, command)
                    print(
                        f"  t={env.now:6.1f}  p{int(env.pid)+1} committed "
                        f"slot {slot}: {committed.op} {committed.key}"
                    )
                else:
                    yield env.gate_wait(log.commit_gate, timeout=5.0)
            env.decide(tuple(sorted(machine.snapshot().items())))

        return [("kv-listener", log.listener()), ("kv-driver", driver())]


def main() -> None:
    print("Replicated KV over Protected Memory Paxos (3 replicas, 3 memories)")
    print("Leader p1 will crash at t=9; p2 takes over.\n")

    protocol = ReplicatedKV(WORKLOAD)
    faults = FaultPlan().crash_process(0, at=9.0)
    cluster = Cluster(
        protocol,
        ClusterConfig(n_processes=3, n_memories=3, deadline=10_000),
        faults,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    result = cluster.run([None, None, None])

    assert result.agreed, "replicas diverged!"
    survivors = [p for p in (1, 2)]
    final = protocol.machines[1].snapshot()
    print(f"\nFinal store ({len(WORKLOAD)} commands, leader crash survived):")
    for key, value in sorted(final.items()):
        print(f"  {key:8s} = {value}")
    for p in survivors:
        assert protocol.machines[p].snapshot() == final
    print("\nAll surviving replicas converged — committed prefix preserved.")


if __name__ == "__main__":
    main()
