#!/usr/bin/env python3
"""Tour of the Section 7 RDMA facade: PDs, QPs, rkeys, revocation.

Shows the paper's practice-level mapping: register a slot array read-only,
keep a write registration for your own row, hand rkeys to peers, and revoke
a writer by switching the memory-side permission — the late write completes
with a nak exactly like a deregistered rkey on real hardware.

Run:  python examples/rdma_facade_tour.py
"""

from repro.mem.permissions import Permission, revoke_only_policy
from repro.mem.regions import RegionSpec
from repro.rdma.verbs import RdmaNic
from repro.sim.environment import ProcessEnv
from repro.sim.kernel import Kernel, SimConfig
from repro.mem.layout import MemoryLayout
from repro.types import ProcessId


def build_kernel() -> Kernel:
    revoked = Permission.read_only(range(2))
    regions = [
        # p1's slot row: SWMR, but revocable to read-only (Cheap Quorum's
        # leader-region shape).
        RegionSpec(
            "row:0",
            ("row", 0),
            Permission.exclusive_writer(0, range(2)),
            legal_change=revoke_only_policy(revoked),
        ),
        RegionSpec("row:1", ("row", 1), Permission.swmr(1, range(2))),
    ]
    return Kernel(SimConfig(n_processes=2, n_memories=1), MemoryLayout(regions))


def main() -> None:
    kernel = build_kernel()
    env0 = ProcessEnv(kernel, ProcessId(0))
    env1 = ProcessEnv(kernel, ProcessId(1))
    nic0, nic1 = RdmaNic(env0), RdmaNic(env1)

    log = []

    def p1_writer():
        pd = nic0.alloc_pd()
        qp = nic0.create_qp(pd, ProcessId(1))
        mr = pd.register(0, "row:0", ("row", 0), access="read-write")
        log.append(f"t={env0.now:4.1f}  p1 registered row:0 rkey={mr.rkey:#x}")
        result = yield from nic0.post_write(qp, mr, ("row", 0, "slot"), "v1")
        log.append(f"t={env0.now:4.1f}  p1 write -> {result.status.value}")
        yield from nic0.post_send(qp, ("rkey-share", mr.rkey))
        # Wait past the revocation, then try writing again.
        yield env0.sleep(10.0)
        late = yield from nic0.post_write(qp, mr, ("row", 0, "slot"), "v2")
        log.append(
            f"t={env0.now:4.1f}  p1 late write -> {late.status.value} "
            "(permission was revoked)"
        )

    def p2_reader():
        pd = nic1.alloc_pd()
        qp = nic1.create_qp(pd, ProcessId(0))
        envelope = yield from nic1.poll_recv(timeout=50)
        _tag, rkey = envelope.payload
        log.append(f"t={env1.now:4.1f}  p2 received rkey {rkey:#x}")
        mr = pd.register(0, "row:0", ("row", 0), access="read")
        snap = yield from nic1.post_read_array(qp, mr)
        log.append(f"t={env1.now:4.1f}  p2 array read -> {dict(snap.value)}")
        # Revoke p1's write access (deregistration on the host side).
        result = yield from env1.change_permission(
            0, "row:0", Permission.read_only(range(2))
        )
        log.append(
            f"t={env1.now:4.1f}  p2 revoked p1's write access "
            f"({result.status.value})"
        )

    kernel.spawn(0, "p1", p1_writer())
    kernel.spawn(1, "p2", p2_reader())
    kernel.run(until=100)

    print("RDMA facade tour (1 memory, 2 processes):\n")
    for line in log:
        print(" ", line)
    print(
        "\nThe late write nak is the paper's 'uncontended instantaneous'"
        "\nguarantee: a successful write proves nobody revoked you first."
    )


if __name__ == "__main__":
    main()
