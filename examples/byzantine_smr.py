#!/usr/bin/env python3
"""Multi-shot Byzantine replication: a 3-replica ordered ledger, f = 1.

Chains Fast & Robust instances into a replicated log — the design the
paper's systems descendants (Mu, uBFT) built on real RDMA.  Every slot is
one weak-Byzantine-agreement instance in its own register namespace; the
leader commits each slot on the two-delay fast path, and a silent Byzantine
replica (scenario 2) changes nothing for the honest majority.

Run:  python examples/byzantine_smr.py
"""

from repro import FaultPlan, SilentByzantine
from repro.core.cluster import Cluster, ClusterConfig
from repro.smr.byzantine_log import ByzantineLogConfig, ByzantineReplicatedLog

LEDGER_BATCHES = {
    0: [  # the leader's queued batches
        ("batch", 1, ("alice->bob 10", "carol->dave 5")),
        ("batch", 2, ("bob->carol 7",)),
        ("batch", 3, ("dave->alice 3",)),
    ],
}


def run(faults=None, n_slots=3, label=""):
    protocol = ByzantineReplicatedLog(
        LEDGER_BATCHES, ByzantineLogConfig(n_slots=n_slots)
    )
    cluster = Cluster(
        protocol, ClusterConfig(3, 3, deadline=120_000), faults
    )
    result = cluster.run([None] * 3)
    assert result.agreed, f"{label}: replicas diverged!"
    (log,) = result.decided_values
    slot0 = result.metrics.instance_decisions[0][0]
    print(f"{label}")
    print(f"  slot-0 committed by leader at t = {slot0.decided_at:g} "
          "(two-delay fast path)")
    for slot, entry in enumerate(log):
        print(f"  slot {slot}: {entry}")
    print(f"  replicas done at t = {result.final_time:g}, logs identical\n")


def main() -> None:
    print("Byzantine replicated ledger: n = 3 = 2f+1 replicas, 3 memories\n")
    run(label="Scenario 1: all replicas honest")
    faults = FaultPlan().make_byzantine(2, SilentByzantine())
    run(faults=faults, n_slots=2,
        label="Scenario 2: replica p3 is Byzantine (silent)")
    print("Message-passing BFT needs 3f+1 = 4 replicas for the same f;")
    print("RDMA's protected memory orders the ledger with 3.")


if __name__ == "__main__":
    main()
