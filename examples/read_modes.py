#!/usr/bin/env python3
"""A tour of the sharded KV's read paths.

The same read-mostly Zipfian workload served four ways:

* ``consensus`` — every get is committed through the shard's log (the
  seed behaviour: linearizable, but each read burns consensus bandwidth);
* ``leader``    — permission-fenced leader reads: the leader serves from
  local applied state and validates its exclusive write grant with one
  zero-length probe per drained batch (linearizable at the probe);
* ``quorum``    — one-sided quorum reads: commit watermark + missing
  entries straight from a majority of memories, no leader involvement
  (linearizable via the ABD-style watermark write-back);
* ``local``     — session-consistent reads from the client's own replica
  (read-your-writes / monotonic reads, not linearizable).

Run:  python examples/read_modes.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.metrics.reporting import format_table  # noqa: E402
from repro.shard import (  # noqa: E402
    ClosedLoopClient,
    OperationMix,
    ShardConfig,
    ShardedKV,
    ZipfianKeys,
)

N_CLIENTS = 24
OPS = 15


def main() -> None:
    print(
        "Read paths over a 2-shard replicated KV "
        f"({N_CLIENTS} closed-loop clients, 95% reads, Zipfian keys)\n"
    )
    rows = []
    for mode in ("consensus", "leader", "quorum", "local"):
        service = ShardedKV(
            ShardConfig(
                n_shards=2, batch_max=4, seed=7, read_mode=mode,
                deadline=10.0**6,
            )
        )
        clients = [
            ClosedLoopClient(
                client_id=i, n_ops=OPS, keys=ZipfianKeys(128, prefix="rk"),
                mix=OperationMix(read_fraction=0.95),
            )
            for i in range(N_CLIENTS)
        ]
        report = service.run_workload(clients)
        assert report.ok
        ledger = service.kernel.metrics
        reads = report.read_latency_summary()
        rows.append(
            [
                mode,
                f"{1000.0 * report.reads_per_delay:.0f}",
                f"{reads.p50:.0f}",
                f"{reads.p99:.0f}",
                f"{report.achieved_read_fraction:.3f}",
                ledger.total_reads_served(mode) if mode != "consensus" else "-",
                ledger.staleness_violations,
            ]
        )
    print(
        format_table(
            ["mode", "reads/ktime", "p50", "p99", "achieved mix",
             "served off-log", "stale"],
            rows,
        )
    )
    print(
        "\nconsensus reads queue behind the log's batches; the fenced and"
        "\none-sided paths answer without consensus instances — and the"
        "\nstaleness tripwire stayed at zero everywhere."
    )


if __name__ == "__main__":
    main()
