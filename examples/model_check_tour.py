#!/usr/bin/env python3
"""A tour of the schedule explorer: model checking the deterministic kernel.

Three acts:

  1. exhaust every schedule of a 3-process Protected Memory Paxos instance
     (depth 2, no faults) and show the search statistics;
  2. re-discover a real historical kernel bug from the regression corpus —
     the explorer finds the one interleaving that breaks it, saves a
     counterexample trace, and replays it deterministically;
  3. replay the same trace against the *fixed* kernel: the schedule still
     exists, but the oracle passes.

Run:  python examples/model_check_tour.py
"""

import json
import os
import re
import tempfile

from repro.check import (
    Budget,
    explore,
    make_scenario,
    replay_trace,
    save_trace,
)
from repro.check.trace import counterexample_to_dict


def act(n, title):
    print(f"\n=== Act {n}: {title} ===")


def stable(summary):
    # the search is deterministic; only the wall-clock tail is not —
    # strip it so two runs of this script print identical bytes
    return re.sub(r" in \d+\.\d+s$", "", summary)


def main():
    # ---- Act 1: exhaust the PMP schedule space -------------------------
    act(1, "exhaust Protected Memory Paxos, depth 2, no faults")
    report = explore(
        make_scenario("pmp-single", {"crashes": 0, "revokes": 0}),
        Budget(divergences=2),
    )
    print(stable(report.summary()))
    assert report.exhausted and report.violations == 0
    print(
        f"every one of the {report.runs} reachable schedules decided the "
        "same value — agreement holds under all interleavings at this depth"
    )

    # ---- Act 2: rediscover a seeded kernel bug -------------------------
    act(2, "find the unpark token-collision bug from the corpus")
    bug = "unpark-token-collision"
    found = explore(
        make_scenario("regression-unpark-collision", {"bug": bug}),
        Budget(divergences=2),
        stop_on_first=True,
    )
    cx = found.counterexamples[0]
    print(f"violation after {found.runs} runs; divergence plan: {cx.plan}")
    for error in cx.errors:
        print(f"  oracle: {error}")
    path = save_trace(
        cx, os.path.join(tempfile.gettempdir(), "model_check_tour_cx.json")
    )
    print(f"counterexample saved to {path}")
    result = replay_trace(path)
    print(
        f"replay on the buggy kernel: matched={result.matched} "
        f"reproduced={result.reproduced}"
    )
    assert result.reproduced

    # ---- Act 3: the same schedule on the fixed kernel ------------------
    act(3, "replay the counterexample against the fixed kernel")
    data = counterexample_to_dict(cx)
    data["params"]["bug"] = None
    fixed = replay_trace(data)
    print(
        f"replay on the fixed kernel: matched={fixed.matched} "
        f"reproduced={fixed.reproduced}"
    )
    assert fixed.matched and not fixed.reproduced
    print("\nthe schedule still exists — the bug no longer does")
    print(json.dumps({"schedules_explored": report.runs,
                      "pruned": report.pruned,
                      "bug_found_in_runs": found.runs}, indent=2))


if __name__ == "__main__":
    main()
