#!/usr/bin/env python3
"""Aligned Paxos: processes and memories as interchangeable agents.

A six-agent deployment (3 processes + 3 memories) keeps committing as long
as any 4 agents survive — the paper's Section 5.2 claim that memories and
processes are *equivalent* for quorum purposes.  We sweep every failure
mix at the tolerance boundary and one step beyond it.

Run:  python examples/mixed_failover.py
"""

from repro import AlignedPaxos, FaultPlan
from repro.consensus.omega import crash_aware_omega
from repro.core.cluster import Cluster, ClusterConfig
from repro.metrics.reporting import format_table

N_PROCESSES = 3
N_MEMORIES = 3


def run_mix(proc_crashes, mem_crashes, deadline=8000.0):
    faults = FaultPlan()
    for pid in proc_crashes:
        faults.crash_process(pid, at=1.0)
    for mid in mem_crashes:
        faults.crash_memory(mid, at=1.0)
    cluster = Cluster(
        AlignedPaxos(),
        ClusterConfig(N_PROCESSES, N_MEMORIES, deadline=deadline),
        faults,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster.run([f"config-{p}" for p in range(N_PROCESSES)])


def main() -> None:
    print(
        f"Aligned Paxos over {N_PROCESSES} processes + {N_MEMORIES} memories "
        f"= {N_PROCESSES + N_MEMORIES} agents (tolerates any "
        f"{(N_PROCESSES + N_MEMORIES - 1) // 2} crashes)\n"
    )
    mixes = [
        ([], [], "no failures"),
        ([1], [], "one process"),
        ([], [0], "one memory"),
        ([1], [2], "one of each"),
        ([1, 2], [], "two processes"),
        ([], [0, 1], "two memories"),
        ([0], [2], "leader + memory"),
        ([1], [0, 1], "BEYOND tolerance (3 agents)"),
    ]
    rows = []
    for procs, mems, label in mixes:
        deadline = 800.0 if "BEYOND" in label else 8000.0
        result = run_mix(procs, mems, deadline)
        rows.append(
            [
                label,
                len(procs) + len(mems),
                "yes" if result.all_decided else "no (blocked)",
                "yes" if (result.agreed or not result.decided_values) else "NO",
            ]
        )
    print(format_table(["failure mix", "agents down", "committed", "safe"], rows))
    print(
        "\nAny minority of the combined agent set is survivable; one step"
        "\npast the boundary the system blocks (it never splits)."
    )


if __name__ == "__main__":
    main()
