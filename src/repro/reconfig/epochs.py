"""Epochs and the typed configuration-change command vocabulary.

A cluster configuration — which shards exist, who leads them, which
processes host replicas — is itself replicated state: the config log
commits the commands below in a total order, and every replica folds
them through :class:`ConfigState` to derive the identical numbered
:class:`Epoch` sequence without communicating.  The fold is therefore
*deterministic and total*: an invalid command folds to a recorded
rejection (a no-op), never an exception, because every replica must
reach the same state regardless of which one proposed the nonsense.

User-facing commands (each opens a new epoch):

* :class:`SplitShard` — allocate a fresh shard id; consistent hashing
  steals ~1/(n+1) of the keyspace for it from *every* existing shard.
* :class:`MergeShard` — retire one shard; its keys spill across the
  survivors and its log region is permission-fenced to the tombstone.
* :class:`MoveLeader` — move one shard's leadership to another replica.
* :class:`AddReplica` / :class:`RemoveReplica` — grow or shrink the
  replica membership (processes are a fixed pool in the simulation;
  membership says who *hosts shard replicas*, the rest are warm spares).

Coordinator-internal commands (they advance an epoch's lifecycle and are
committed through the same log so a respawned coordinator can resume):

* :class:`SealShard` — a migration source stops committing moved keys.
* :class:`ActivateEpoch` — the cutover: routing flips to the new ring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.types import process_name

# ---------------------------------------------------------------------------
# Command kinds (dense, mirror the kernel's event/fault tagging).
# ---------------------------------------------------------------------------
RK_SPLIT = 0          #: allocate a new shard (grow the ring)
RK_MERGE = 1          #: retire a shard (shrink the ring)
RK_MOVE_LEADER = 2    #: move one shard's leadership
RK_ADD_REPLICA = 3    #: a spare process joins the replica set
RK_REMOVE_REPLICA = 4  #: a replica leaves the set (its led shards move)
RK_SEAL = 5           #: internal: freeze a migration source's moved keys
RK_ACTIVATE = 6       #: internal: flip routing to the epoch's ring


class SplitShard:
    """Grow the ring by one shard.  ``hot_shard`` is provenance only (the
    autoscaler's culprit); the ring effect is global — the new shard's
    virtual nodes steal a slice from every existing shard."""

    __slots__ = ("hot_shard",)
    kind = RK_SPLIT

    def __init__(self, hot_shard: Optional[int] = None) -> None:
        self.hot_shard = None if hot_shard is None else int(hot_shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplitShard(hot={self.hot_shard})"


class MergeShard:
    """Retire shard *victim*: migrate its keys out, tombstone its log."""

    __slots__ = ("victim",)
    kind = RK_MERGE

    def __init__(self, victim: int) -> None:
        self.victim = int(victim)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeShard(g{self.victim})"


class MoveLeader:
    """Hand shard *shard*'s leadership to replica *pid*."""

    __slots__ = ("shard", "pid")
    kind = RK_MOVE_LEADER

    def __init__(self, shard: int, pid: int) -> None:
        self.shard = int(shard)
        self.pid = int(pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MoveLeader(g{self.shard} -> {process_name(self.pid)})"


class AddReplica:
    """Process *pid* (a warm spare) joins the replica membership."""

    __slots__ = ("pid",)
    kind = RK_ADD_REPLICA

    def __init__(self, pid: int) -> None:
        self.pid = int(pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddReplica({process_name(self.pid)})"


class RemoveReplica:
    """Process *pid* leaves the membership; shards it led are reassigned."""

    __slots__ = ("pid",)
    kind = RK_REMOVE_REPLICA

    def __init__(self, pid: int) -> None:
        self.pid = int(pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoveReplica({process_name(self.pid)})"


class SealShard:
    """Internal: source *shard* of epoch *epoch* stops committing moved
    keys (the drain filter drops them; client resends re-route)."""

    __slots__ = ("epoch", "shard")
    kind = RK_SEAL

    def __init__(self, epoch: int, shard: int) -> None:
        self.epoch = int(epoch)
        self.shard = int(shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SealShard(e{self.epoch}, g{self.shard})"


class ActivateEpoch:
    """Internal: epoch *epoch*'s migration finished — flip routing."""

    __slots__ = ("epoch",)
    kind = RK_ACTIVATE

    def __init__(self, epoch: int) -> None:
        self.epoch = int(epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivateEpoch(e{self.epoch})"


#: Any of the command classes above.
ConfigCommand = object


class Epoch:
    """One numbered cluster configuration.

    ``ring_version`` equals ``number``: every epoch stages exactly one
    ring.  ``migration_sources`` are the shards that lose keys going into
    this epoch; ``retired`` the shards whose log regions get tombstoned;
    ``sealed`` grows as :class:`SealShard` commands fold; ``active``
    flips when :class:`ActivateEpoch` folds.
    """

    __slots__ = (
        "number",
        "shards",
        "leaders",
        "replicas",
        "source",
        "migration_sources",
        "retired",
        "sealed",
        "active",
        "deposed",
    )

    def __init__(
        self,
        number: int,
        shards: Tuple[int, ...],
        leaders: Dict[int, int],
        replicas: Tuple[int, ...],
        source: Optional[ConfigCommand],
        migration_sources: Tuple[int, ...] = (),
        retired: Tuple[int, ...] = (),
        deposed: Tuple[Tuple[int, int], ...] = (),
    ) -> None:
        self.number = number
        self.shards = tuple(sorted(shards))
        self.leaders = dict(leaders)
        self.replicas = tuple(sorted(replicas))
        self.source = source
        self.migration_sources = tuple(migration_sources)
        self.retired = tuple(retired)
        #: (shard, old_leader) pairs whose leadership this epoch revokes
        self.deposed = tuple(deposed)
        self.sealed: set = set()
        self.active = number == 0

    @property
    def ring_version(self) -> int:
        return self.number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        leads = ",".join(
            f"g{g}:{process_name(p)}" for g, p in sorted(self.leaders.items())
        )
        return (
            f"Epoch(e{self.number}{'*' if self.active else ''} "
            f"shards={list(self.shards)} leaders=[{leads}] "
            f"replicas={[process_name(p) for p in self.replicas]})"
        )


class ConfigState:
    """The deterministic fold of committed config commands into epochs.

    One instance is shared by a service's config-log replicas; the
    fold-once guard lives in the config log (slots fold in slot order,
    exactly once).  ``apply`` returns the new :class:`Epoch` for an
    accepted user command, None otherwise; rejections are recorded in
    ``rejected`` rather than raised, because every replica must fold
    every committed command to the same state.
    """

    def __init__(
        self,
        n_shards: int,
        n_processes: int,
        replicas: Tuple[int, ...],
        max_shards: Optional[int] = None,
    ) -> None:
        self.n_processes = n_processes
        #: cap on concurrently active shards (None: unlimited); enforced
        #: in the fold so operator and autoscaler proposals alike bounce
        self.max_shards = max_shards
        replicas = tuple(sorted(replicas))
        shards = tuple(range(n_shards))
        leaders = {g: replicas[g % len(replicas)] for g in shards}
        self.epochs: List[Epoch] = [Epoch(0, shards, leaders, replicas, None)]
        self.active_epoch: Epoch = self.epochs[0]
        self.next_shard_id = n_shards
        #: (slot-ordered) commands the fold refused, with reasons
        self.rejected: List[Tuple[ConfigCommand, str]] = []

    # ------------------------------------------------------------------
    @property
    def latest(self) -> Epoch:
        return self.epochs[-1]

    def epoch(self, number: int) -> Epoch:
        return self.epochs[number]

    def next_pending(self) -> Optional[Epoch]:
        """The earliest committed-but-not-yet-active epoch, if any."""
        number = self.active_epoch.number + 1
        return self.epochs[number] if number < len(self.epochs) else None

    def has_pending(self) -> bool:
        return self.active_epoch.number + 1 < len(self.epochs)

    # ------------------------------------------------------------------
    def check(self, command: ConfigCommand) -> Optional[str]:
        """Why *command* would be rejected against the latest epoch, or
        None if it would fold cleanly (propose-time validation)."""
        base = self.latest
        kind = command.kind
        if kind == RK_SPLIT:
            if self.max_shards is not None and len(base.shards) >= self.max_shards:
                return f"already at max_shards={self.max_shards}"
            return None
        if kind == RK_MERGE:
            if command.victim not in base.shards:
                return f"g{command.victim} is not an active shard"
            if len(base.shards) < 2:
                return "cannot merge away the last shard"
            return None
        if kind == RK_MOVE_LEADER:
            if command.shard not in base.shards:
                return f"g{command.shard} is not an active shard"
            if command.pid not in base.replicas:
                return f"{process_name(command.pid)} is not an active replica"
            if base.leaders[command.shard] == command.pid:
                return f"{process_name(command.pid)} already leads g{command.shard}"
            return None
        if kind == RK_ADD_REPLICA:
            if not 0 <= command.pid < self.n_processes:
                return f"{process_name(command.pid)} is outside the process pool"
            if command.pid in base.replicas:
                return f"{process_name(command.pid)} is already a replica"
            return None
        if kind == RK_REMOVE_REPLICA:
            if command.pid not in base.replicas:
                return f"{process_name(command.pid)} is not an active replica"
            if len(base.replicas) < 2:
                return "cannot remove the last replica"
            return None
        if kind == RK_SEAL:
            if not 0 <= command.epoch < len(self.epochs):
                return f"no epoch e{command.epoch}"
            return None
        if kind == RK_ACTIVATE:
            if command.epoch != self.active_epoch.number + 1:
                return (
                    f"e{command.epoch} is not the next pending epoch "
                    f"(active is e{self.active_epoch.number})"
                )
            return None
        return f"unknown config command {command!r}"

    def _least_loaded(self, leaders: Dict[int, int], replicas: Tuple[int, ...]) -> int:
        """The replica leading the fewest shards (ties broken by pid)."""
        load = {pid: 0 for pid in replicas}
        for leader in leaders.values():
            if leader in load:
                load[leader] += 1
        return min(replicas, key=lambda pid: (load[pid], pid))

    def apply(self, command: ConfigCommand) -> Optional[Epoch]:
        """Fold one committed command; returns the new epoch if it opened
        one.  Rejections are recorded, never raised (see class docs)."""
        reason = self.check(command)
        if reason is not None:
            self.rejected.append((command, reason))
            return None
        kind = command.kind
        if kind == RK_SEAL:
            self.epochs[command.epoch].sealed.add(command.shard)
            return None
        if kind == RK_ACTIVATE:
            epoch = self.epochs[command.epoch]
            epoch.active = True
            self.active_epoch = epoch
            return None

        base = self.latest
        number = len(self.epochs)
        shards = base.shards
        leaders = dict(base.leaders)
        replicas = base.replicas
        migration_sources: Tuple[int, ...] = ()
        retired: Tuple[int, ...] = ()
        deposed: List[Tuple[int, int]] = []

        if kind == RK_SPLIT:
            new_shard = self.next_shard_id
            self.next_shard_id += 1
            shards = base.shards + (new_shard,)
            leaders[new_shard] = self._least_loaded(leaders, replicas)
            migration_sources = base.shards
        elif kind == RK_MERGE:
            victim = command.victim
            shards = tuple(g for g in base.shards if g != victim)
            deposed.append((victim, leaders.pop(victim)))
            migration_sources = (victim,)
            retired = (victim,)
        elif kind == RK_MOVE_LEADER:
            deposed.append((command.shard, leaders[command.shard]))
            leaders[command.shard] = command.pid
        elif kind == RK_ADD_REPLICA:
            replicas = tuple(sorted(base.replicas + (command.pid,)))
        elif kind == RK_REMOVE_REPLICA:
            replicas = tuple(p for p in base.replicas if p != command.pid)
            for shard, leader in sorted(leaders.items()):
                if leader == command.pid:
                    deposed.append((shard, leader))
                    leaders[shard] = self._least_loaded(leaders, replicas)
        epoch = Epoch(
            number,
            shards,
            leaders,
            replicas,
            command,
            migration_sources=migration_sources,
            retired=retired,
            deposed=tuple(deposed),
        )
        self.epochs.append(epoch)
        return epoch
