"""Elastic reconfiguration: epoch-based membership over permission fences.

The paper's dynamic-permission trick — revoking a deposed writer's RDMA
access at the memories — is repurposed here from failover to *membership
change*: retiring an old configuration safely is, at bottom, revoking
its write access.  This package provides:

* :mod:`~repro.reconfig.epochs` — numbered :class:`Epoch` configurations
  and the typed command vocabulary (split/merge shards, move leadership,
  add/remove replicas) folded deterministically on every replica;
* :mod:`~repro.reconfig.config_log` — the :class:`ConfigLog`, itself a
  Protected-Memory-Paxos replicated log, committing those commands;
* :mod:`~repro.reconfig.migrate` — the :class:`Migrator`, streaming
  moved key ranges with deterministic at-most-once identities;
* :mod:`~repro.reconfig.autoscale` — the :class:`Autoscaler` policy
  watching the metrics ledger for split/merge opportunities;
* :mod:`~repro.reconfig.elastic` — :class:`ElasticKV`, the sharded KV
  service wired through all of the above.
"""

from repro.reconfig.autoscale import Autoscaler, AutoscalerConfig
from repro.reconfig.config_log import CONFIG_REGION, ConfigLog, config_regions
from repro.reconfig.elastic import TOMBSTONE, ElasticConfig, ElasticKV
from repro.reconfig.epochs import (
    ActivateEpoch,
    AddReplica,
    ConfigState,
    Epoch,
    MergeShard,
    MoveLeader,
    RemoveReplica,
    SealShard,
    SplitShard,
)
from repro.reconfig.migrate import Migrator, migration_client

__all__ = [
    "ActivateEpoch",
    "AddReplica",
    "Autoscaler",
    "AutoscalerConfig",
    "CONFIG_REGION",
    "ConfigLog",
    "ConfigState",
    "ElasticConfig",
    "ElasticKV",
    "Epoch",
    "MergeShard",
    "Migrator",
    "MoveLeader",
    "RemoveReplica",
    "SealShard",
    "SplitShard",
    "TOMBSTONE",
    "config_regions",
    "migration_client",
]
