"""The migrator: permission-fenced data movement between shard groups.

Migration rides the ordinary replication machinery — every moved key is
re-committed at its new owner as a ``put`` through the destination
group's own log, so migrated data is exactly as durable as client data.
What makes it safe under crashes is the identity scheme:

* every migration command carries the at-most-once token
  ``(("mig", epoch, source_shard), (key, value_fingerprint))`` — fully
  deterministic, so a coordinator respawned after a crash re-streams the
  same keys under the same tokens and the destination state machine
  deduplicates the replays (at-most-once apply, satellite-tested by
  crashing the source mid-stream);
* the fingerprint makes the token *value-sensitive*: re-streaming a key
  whose value advanced between passes gets a fresh token (and commits),
  while an unchanged key dedups.  The delta pass after the seal barrier
  therefore just re-streams every moved key — unchanged ones cost a
  dedup, changed ones land their frozen final value.

The streaming itself reads the *coordinator-local* replica of the source
group (its applied prefix — the completion rule guarantees it covers
everything the barrier saw) and submits to the *future* owner by pinning
the destination shard explicitly: client routing still points at the old
ring during the dual-ownership window.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import hashlib

from repro.crypto.signatures import canonical_bytes
from repro.shard.partitioner import ConsistentHashPartitioner, hash_point
from repro.smr.kv import KVCommand, KVStateMachine


def migration_client(epoch: int, source: int) -> Tuple[str, int, int]:
    """The at-most-once client identity of one (epoch, source) stream."""
    return ("mig", epoch, source)


def _fingerprint(value: Any) -> Any:
    """A deterministic, hashable digest of a stored value.

    Hashable values ARE their own fingerprint (cheap, exact).  Unhashable
    ones go through the crypto layer's canonical encoder — never
    ``repr``, whose default form embeds memory addresses and would make
    migration tokens differ between two identically-seeded runs (breaking
    the seed-replay guarantee) while equal-repr distinct values would
    collide (dropping a changed late write as "unchanged" in the delta).
    """
    try:
        hash(value)
        return value
    except TypeError:
        return hashlib.sha1(canonical_bytes(value)).hexdigest()


class Migrator:
    """Streams moved key ranges from migration sources to their new owners."""

    def __init__(
        self,
        partitioner: ConsistentHashPartitioner,
        window: int = 8,
    ) -> None:
        self.partitioner = partitioner
        #: concurrent in-flight migration puts per stream pass
        self.window = window
        #: tokens this coordinator incarnation already streamed — purely an
        #: optimisation (skips a guaranteed dedup); a respawned coordinator
        #: starts empty and re-streams, relying on destination-side dedup
        self._streamed: set = set()
        #: per-(epoch, source) committed migration puts, for the timeline
        self.moved: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def moved_keys(
        self, machine: KVStateMachine, source: int, target_version: int
    ) -> List[str]:
        """The keys in *machine*'s store that leave *source* under ring
        *target_version*, in sorted (deterministic) order."""
        shard_for = self.partitioner.shard_for
        return sorted(
            key
            for key in machine.data
            if shard_for(key, version=target_version) != source
        )

    # ------------------------------------------------------------------
    def stream(
        self,
        env,
        frontend,
        machine: KVStateMachine,
        source: int,
        epoch_number: int,
        target_version: int,
        old_version: Optional[int] = None,
        peer_machine_of: Optional[Callable[[int], Optional[KVStateMachine]]] = None,
    ) -> Generator:
        """Stream every currently-moved key of *source* to its new owner.

        Runs ``window`` transfers concurrently (each is a routed submit:
        commit at the destination log, apply, complete).  Returns the
        number of transfers *submitted* by this call — within one
        coordinator incarnation that equals the keys newly moved (the
        ``_streamed`` memo skips known identities, so a delta pass only
        re-sends keys whose value changed), but a respawned coordinator
        starts with an empty memo and re-submits everything: those
        replays count here and are absorbed by the destination's dedup
        (its ``duplicates`` counter is the ground truth for re-applies).

        The delta pass (``old_version`` + ``peer_machine_of`` given)
        additionally sweeps *deletions*: a key an earlier pass copied to
        its new owner and a client then deleted at the source would
        otherwise resurrect at cutover.  The sweep is derived from
        replicated state, not coordinator memory — any destination-held
        key in the moved range that no longer exists at the source gets
        a migration ``delete`` — so it survives coordinator crashes the
        same way the puts do (a re-run finds the key already gone and
        streams nothing).
        """
        keys = self.moved_keys(machine, source, target_version)
        client = migration_client(epoch_number, source)
        moved = 0
        batch: List[KVCommand] = []
        store = machine.data
        # Put identities are tagged "v" and delete identities "d": the two
        # token spaces must be disjoint, or a stored value could collide
        # with the delete marker and suppress the sweep via dedup.
        for key in keys:
            value = store.get(key, None)
            if key not in store:
                continue  # deleted since the key list was taken
            request_id = ("v", key, _fingerprint(value))
            if (client, request_id) in self._streamed:
                continue
            self._streamed.add((client, request_id))
            batch.append(
                KVCommand(
                    "put", key, value=value, client=client, request_id=request_id
                )
            )
        if peer_machine_of is not None and old_version is not None:
            # one SHA-1 per peer key: both owner lookups share the point
            old_ring = self.partitioner.ring(old_version)
            new_ring = self.partitioner.ring(target_version)
            targets = set(new_ring.shards) - {source}
            for destination in sorted(targets):
                peer = peer_machine_of(destination)
                if peer is None:
                    continue
                for key in sorted(peer.data):
                    if key in store:
                        continue  # live at the source; the put path owns it
                    point = hash_point(key)
                    if old_ring.owner_of(point) != source:
                        continue  # not this source's range (native data)
                    if new_ring.owner_of(point) != destination:
                        continue
                    request_id = ("d", key)
                    if (client, request_id) in self._streamed:
                        continue
                    self._streamed.add((client, request_id))
                    batch.append(
                        KVCommand(
                            "delete", key, client=client, request_id=request_id
                        )
                    )
        # Stream in destination-shard order (stable sort keeps the
        # deterministic key order within a shard): each window chunk then
        # arrives as a contiguous run in ONE destination leader's queue,
        # which the leader's drain commits as a single Batch entry — one
        # fused phase-2 chain per memory — instead of burning a consensus
        # instance per key across interleaved shards.
        batch.sort(
            key=lambda command: self.partitioner.shard_for(
                command.key, version=target_version
            )
        )
        for start in range(0, len(batch), self.window):
            chunk = batch[start : start + self.window]
            done = env.new_gate("mig-window")
            remaining = [len(chunk)]

            def _one(command: KVCommand) -> Generator:
                shard = self.partitioner.shard_for(
                    command.key, version=target_version
                )
                yield from frontend.submit(command, shard=shard)
                remaining[0] -= 1
                if remaining[0] == 0:
                    env.signal(done)

            for command in chunk:
                yield env.spawn(f"mig-e{epoch_number}-{command.key}", _one(command))
            while remaining[0] > 0:
                yield env.gate_wait(done, timeout=None)
            moved += len(chunk)
        self.moved[(epoch_number, source)] = (
            self.moved.get((epoch_number, source), 0) + moved
        )
        return moved

    # ------------------------------------------------------------------
    def barrier(self, env, frontend, source: int, epoch_number: int) -> Generator:
        """Commit a read barrier through *source*'s log and wait for it.

        The barrier is an ordinary ``get`` pinned to the source group: by
        log order it commits after every command enqueued before it, and
        the completion rule means the *local* replica (the one the
        migrator reads) has applied that entire prefix when this returns.
        Its identity embeds the current instant, so a respawned
        coordinator's re-barrier is a fresh log entry — a dedup'd answer
        from a previous incarnation would not be an ordering point.
        """
        probe = KVCommand(
            "get",
            "__reconfig-barrier__",
            client=migration_client(epoch_number, source),
            request_id=("barrier", env.now),
        )
        yield from frontend.submit(probe, shard=source)
