"""The autoscaler: metrics-driven split/merge proposals.

A pure policy object: it watches the metrics ledger (per-shard commit
rates differentiated from ``shard_commits``, p99 latency over the recent
``shard_latencies`` window) and emits :class:`SplitShard` /
:class:`MergeShard` proposals.  It never touches the cluster — the
elastic service commits whatever it proposes through the config log, so
autoscaling decisions go through exactly the same replicated, fenced
path as operator-issued ones.

Deliberately simple thresholds (commands per kilo-delay, p99 in delays):
the interesting machinery is the reconfiguration it triggers, not the
control theory.  One proposal at a time, with a cooldown, so the system
observes a full post-migration window before deciding again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.ledger import MetricsLedger
from repro.metrics.workload import percentile
from repro.reconfig.epochs import MergeShard, SplitShard


@dataclass
class AutoscalerConfig:
    """Thresholds and pacing for the split/merge policy."""

    #: sampling period in simulated delays
    interval: float = 60.0
    #: split when any shard commits faster than this (commands/kilo-delay)
    split_above: float = 120.0
    #: or when any shard's windowed p99 exceeds this (delays)
    p99_above: float = float("inf")
    #: or when any shard's SLO burn rate (short window) exceeds this —
    #: the obs SLO plane's signal (see ``SloTracker.pressure``); inactive
    #: by default and without an attached tracker
    slo_burn_above: float = float("inf")
    #: merge the coldest shard when the whole service commits slower than
    #: this per shard (commands/kilo-delay); never merges by default
    merge_below: float = 0.0
    min_shards: int = 1
    max_shards: int = 16
    #: quiet period after any proposal before the next one
    cooldown: float = 150.0


class Autoscaler:
    """Differentiates ledger counters into rates and applies thresholds."""

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config or AutoscalerConfig()
        self._last_time: Optional[float] = None
        self._last_commits: Dict[int, int] = {}
        self._last_latency_index: Dict[int, int] = {}
        self._last_proposal_at = float("-inf")
        #: every (time, proposal) this policy emitted, for inspection
        self.proposals: List[tuple] = []

    # ------------------------------------------------------------------
    def window(self, now: float, ledger: MetricsLedger, shards) -> Dict[int, tuple]:
        """Per-shard ``(rate, p99)`` over the window since the last call."""
        out: Dict[int, tuple] = {}
        elapsed = None if self._last_time is None else now - self._last_time
        for shard in shards:
            count = ledger.shard_commits.get(shard, 0)
            delta = count - self._last_commits.get(shard, 0)
            self._last_commits[shard] = count
            rate = 0.0
            if elapsed and elapsed > 0:
                rate = 1000.0 * delta / elapsed
            window = ledger.shard_latencies.get(shard)
            if window is None:
                fresh = []
            else:
                # windows are bounded rings: address fresh samples by their
                # global append index; anything that scrolled out since the
                # last tick is gone, which is fine for a recent-p99 reading
                fresh = window.since(self._last_latency_index.get(shard, 0))
                self._last_latency_index[shard] = window.total
            p99 = percentile(fresh, 0.99) if fresh else 0.0
            out[shard] = (rate, p99)
        self._last_time = now
        return out

    def observe(
        self, now: float, ledger: MetricsLedger, shards, pending: bool,
        slo_pressure: Optional[Dict[int, float]] = None,
    ) -> List[object]:
        """One sampling tick: returns at most one split/merge proposal.

        The first tick only establishes the baseline window.  No proposal
        is made while a reconfiguration is *pending* (mid-migration load
        numbers are transients) or inside the cooldown.  *slo_pressure*
        (shard -> current burn rate, from ``SloTracker.pressure``) marks a
        shard overloaded when its burn exceeds ``slo_burn_above`` — scale
        out on objective risk, not just on raw load.
        """
        shards = list(shards)
        first = self._last_time is None
        rates = self.window(now, ledger, shards)
        cfg = self.config
        if first or pending or now - self._last_proposal_at < cfg.cooldown:
            return []
        pressure = slo_pressure or {}
        overloaded = [
            g for g in shards
            if rates[g][0] > cfg.split_above or rates[g][1] > cfg.p99_above
            or pressure.get(g, 0.0) > cfg.slo_burn_above
        ]
        if len(shards) < cfg.max_shards and overloaded:
            hot = max(overloaded, key=lambda g: rates[g])
            proposal = SplitShard(hot_shard=hot)
            self._last_proposal_at = now
            self.proposals.append((now, proposal))
            return [proposal]
        if len(shards) > cfg.min_shards:
            mean_rate = sum(rates[g][0] for g in shards) / len(shards)
            if mean_rate < cfg.merge_below:
                cold = min(shards, key=lambda g: (rates[g][0], g))
                proposal = MergeShard(cold)
                self._last_proposal_at = now
                self.proposals.append((now, proposal))
                return [proposal]
        return []
