"""The configuration log: membership changes decided by consensus.

The config log is itself a :class:`~repro.smr.log.ReplicatedLog` over
Protected Memory Paxos — one replica per pool process, one permissioned
region (``cfg``) in the same memories that hold the shard logs.  Its
committed entries are the typed commands of :mod:`repro.reconfig.epochs`;
every replica folds them in slot order through the shared
:class:`~repro.reconfig.epochs.ConfigState`, so the epoch sequence is
agreed the same way any replicated value is.

Config leadership follows the membership it describes: the lowest active
replica leads.  When an epoch moves that (the previous low replica was
removed), the incoming leader's recovered log re-prepares — the takeover
``changePermission`` at each memory revokes the old config leader, so a
deposed coordinator cannot commit configuration changes for a cluster
that has moved on (the paper's fencing argument, applied to the control
plane itself).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.mem.permissions import Permission, epoch_fence_policy
from repro.mem.regions import RegionSpec
from repro.reconfig.epochs import ConfigState
from repro.smr.log import ReplicatedLog, SmrConfig

CONFIG_REGION = "cfg"
CONFIG_TOPIC = "cfg"


def config_regions(n_processes: int, initial_leader: int) -> List[RegionSpec]:
    """The config log's single dynamic-permission region.

    Leadership grants move freely (takeover prepare), but the region is
    NOT retirable: the cluster can merge any data shard away, yet the
    control plane's own log must survive every epoch, so a tombstone
    request against ``cfg`` is an ordinary illegal change.
    """
    processes = range(n_processes)
    return [
        RegionSpec(
            region_id=CONFIG_REGION,
            prefix=(CONFIG_REGION,),
            initial_permission=Permission.exclusive_writer(initial_leader, processes),
            legal_change=epoch_fence_policy(processes, retirable=False),
        )
    ]


class ConfigLog:
    """Per-service manager of the config-log replicas and the epoch fold.

    Owns one :class:`ReplicatedLog` endpoint per pool process (spawned by
    the service alongside its shard replicas), the shared
    :class:`ConfigState`, and the fold-once guard: replicas apply slots
    in order, and the first replica to apply slot *k* folds it — later
    replicas' applications of the same slot are no-ops, as are the
    re-commits a recovered leader performs during takeover.
    """

    def __init__(
        self,
        state: ConfigState,
        leader_fn: Callable[[], int],
        on_fold: Optional[Callable[[Any, Any, bool], None]] = None,
    ) -> None:
        self.state = state
        self._leader_fn = leader_fn
        #: called as ``on_fold(command, new_epoch_or_None, accepted)``
        #: after each first-time fold — the service wires coordinator
        #: wakeups and routing flips here; ``accepted=False`` marks a
        #: command the fold rejected (side effects must not run for it)
        self._on_fold = on_fold
        self.logs: Dict[int, ReplicatedLog] = {}
        self._folded_upto = -1
        #: command objects already folded — a coordinator respawned after
        #: a crash may re-commit the same proposal object (it cannot know
        #: whether its first attempt reached the log), and a second log
        #: entry must fold as a no-op, not open a second epoch
        self._seen: set = set()

    # ------------------------------------------------------------------
    def make_replica(self, env, recovered: bool = False) -> ReplicatedLog:
        """Build this process's config-log endpoint (idempotent per pid:
        a recovered process replaces its dead incarnation's endpoint)."""
        log = ReplicatedLog(
            env,
            self._apply,
            SmrConfig(
                initial_leader=self._leader_fn(),
                region=CONFIG_REGION,
                topic=CONFIG_TOPIC,
            ),
            leader_fn=self._leader_fn,
            recovered=recovered,
        )
        self.logs[int(env.pid)] = log
        return log

    def _apply(self, slot: int, value: Any) -> None:
        if slot <= self._folded_upto:
            return  # another replica (or a re-commit) already folded it
        self._folded_upto = slot
        if id(value) in self._seen:
            return  # duplicate entry from a coordinator's retried commit
        self._seen.add(id(value))
        rejected_before = len(self.state.rejected)
        epoch = self.state.apply(value)
        if self._on_fold is not None:
            accepted = len(self.state.rejected) == rejected_before
            self._on_fold(value, epoch, accepted)

    # ------------------------------------------------------------------
    def commit(self, env, command: Any) -> Generator:
        """Drive *command* into the log from this process (the coordinator).

        Proposes at successive slots until *this* command is the decided
        value — a contested slot (another leader's entry won it) just
        moves the proposal to the next slot.  Returns once the command is
        committed and folded locally.
        """
        log = self.logs[int(env.pid)]
        while True:
            slot = log.applied_upto + 1
            decided = yield from log.propose(slot, command)
            if decided is command:
                return
