"""The elastic sharded KV: epoch-based membership over permission fences.

:class:`ElasticKV` extends the static :class:`~repro.shard.service.ShardedKV`
with the reconfiguration plane:

* a **config log** (:mod:`repro.reconfig.config_log`) — itself replicated
  over Protected Memory Paxos — commits typed membership commands, and
  every replica folds them into the same numbered epoch sequence;
* a **coordinator** task on the config leader executes each committed
  epoch:  stage ring → spawn new groups → bulk migrate → seal →
  barrier → delta migrate → activate, with permission fences at the
  memories wherever an old-epoch writer must be *provably* unable to
  write once the epoch turns over;
* a **migrator** streams moved key ranges through the destination
  groups' own logs with deterministic at-most-once identities;
* an optional **autoscaler** watches the metrics ledger and feeds
  split/merge proposals into the same pipeline.

Crash safety is by idempotence, not checkpoints: every coordinator step
either re-ACKs (permission fences, region registration, group spawns are
guarded), re-commits as a no-op (config commands dedup in the fold), or
dedups at the destination state machine (migration identities are
deterministic).  A coordinator respawned by the recovery hooks simply
re-runs the pending epoch from the top.  Recovery hooks in general
re-spawn a returning process's replicas into the *current* epoch — the
shard set and leader map at recovery time, plus any group a pending
epoch has already spawned — never the boot topology.

The cutover dance per migration source (the dual-ownership window):

1. **bulk** — stream moved keys to their new owners while clients still
   route (reads included) to the old ring;
2. **seal** — commit :class:`SealShard`: the source's drain filter stops
   committing moved-key commands (for a merge, fence the whole region to
   the tombstone instead — the changePermission storm);
3. **barrier** — commit a probe through the source log: everything the
   source ever committed for moved keys is now in the migrator's view;
4. **delta** — re-stream; unchanged keys dedup, late writes land their
   frozen final values;
5. **activate** — commit :class:`ActivateEpoch`: routing flips, stalled
   clients' resends re-route to the new owners, dedup keeps the handoff
   at-most-once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.cluster import ClusterConfig, ElasticCluster
from repro.errors import ConfigurationError
from repro.mem.operations import ChangePermissionOp
from repro.mem.permissions import Permission, epoch_fence_policy
from repro.mem.regions import RegionSpec
from repro.reconfig.autoscale import Autoscaler, AutoscalerConfig
from repro.reconfig.config_log import ConfigLog, config_regions
from repro.reconfig.epochs import (
    RK_ACTIVATE,
    RK_ADD_REPLICA,
    RK_REMOVE_REPLICA,
    RK_SEAL,
    ActivateEpoch,
    ConfigState,
    Epoch,
    SealShard,
)
from repro.reconfig.migrate import Migrator
from repro.shard.service import ShardConfig, ShardedKV, shard_region
from repro.sim.futures import count_acked
from repro.smr.log import smr_rx_regions
from repro.types import process_name


@dataclass
class ElasticConfig(ShardConfig):
    """ShardConfig plus the elastic knobs.

    ``n_processes`` is the *pool* (every process exists from boot and can
    host replicas); ``initial_replicas`` says who actually does at epoch
    0 — the rest are warm spares an :class:`AddReplica` can activate.
    """

    #: processes hosting replicas at epoch 0 (None: the whole pool)
    initial_replicas: Optional[Tuple[int, ...]] = None
    #: hard cap on concurrently active shards (autoscaler ceiling)
    max_shards: int = 16
    #: autoscaler policy; None runs manual-reconfig only
    autoscaler: Optional[AutoscalerConfig] = None
    #: post-fence drain: time for a fenced source's in-flight writes to
    #: resolve (ACK or NAK) before the delta pass reads the frozen store
    fence_settle: float = 6.0
    #: coordinator idle re-check period
    coordinator_poll: float = 10.0
    #: concurrent in-flight migration transfers per stream pass
    migration_window: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bft_shards:
            raise ConfigurationError(
                "elastic shards are crash-tolerant only: Fast & Robust groups "
                "have static, pre-declared slot regions and no recovery path "
                "to re-spawn into a new epoch — host them on a ShardedKV"
            )
        if self.max_shards < self.n_shards:
            raise ConfigurationError("max_shards must cover the boot shards")
        if self.initial_replicas is None:
            self.initial_replicas = tuple(range(self.n_processes))
        else:
            self.initial_replicas = tuple(sorted(set(int(p) for p in self.initial_replicas)))
            bad = [p for p in self.initial_replicas if not 0 <= p < self.n_processes]
            if bad:
                raise ConfigurationError(f"initial replicas outside the pool: {bad}")
            if not self.initial_replicas:
                raise ConfigurationError("need at least one initial replica")


#: the retired-region permission: nobody reads, nobody writes, forever
TOMBSTONE = Permission()


class ElasticKV(ShardedKV):
    """A sharded replicated KV whose membership is itself replicated."""

    def __init__(self, config: Optional[ElasticConfig] = None) -> None:
        cfg = config or ElasticConfig()
        self._state = ConfigState(
            cfg.n_shards, cfg.n_processes, cfg.initial_replicas,
            max_shards=cfg.max_shards,
        )
        self._cfg_log = ConfigLog(
            self._state, leader_fn=self._config_leader, on_fold=self._on_fold
        )
        #: operator/autoscaler proposals awaiting commit, in arrival order
        self._cfg_queue: deque = deque()
        self._cfg_tasks: Dict[int, List[Any]] = {}
        self._control_tasks: List[Any] = []
        self._control_env: Any = None
        self._cfg_wake: Any = None
        #: callbacks fired after each epoch cutover (new active epoch as
        #: the single argument) — the parallel driver's worker-assignment
        #: rebalance hangs off this so splits/merges reweight partitions
        #: at the same instant routing flips.
        self.on_activation: List[Callable[[Epoch], None]] = []
        super().__init__(cfg)
        self.autoscaler: Optional[Autoscaler] = (
            Autoscaler(cfg.autoscaler) if cfg.autoscaler is not None else None
        )
        for pid in range(cfg.n_processes):
            self._spawn_config_replica(pid)
        self._spawn_control_plane(self._config_leader())

    # ------------------------------------------------------------------
    # assembly hooks
    # ------------------------------------------------------------------
    def _initial_leaders(self) -> Dict[int, int]:
        return dict(self._state.active_epoch.leaders)

    def _shard_region_spec(self, shard: int, leader: Optional[int] = None) -> RegionSpec:
        """One elastic shard-log region.  Unlike the static service's
        regions, the legal-change policy is the epoch fence: grants move
        with leadership and retirement is a sticky tombstone.  A region
        born without a leader (a split's new group) starts read-only —
        the new leader's takeover prepare is the granting storm."""
        processes = range(self.config.n_processes)
        region = shard_region(shard)
        initial = (
            Permission.read_only(processes)
            if leader is None
            else Permission.exclusive_writer(leader, processes)
        )
        return RegionSpec(
            region_id=region,
            prefix=(region,),
            initial_permission=initial,
            legal_change=epoch_fence_policy(processes),
        )

    def _boot_regions(self) -> List[RegionSpec]:
        regions = [self._shard_region_spec(g, self.leader_of(g)) for g in self.shards]
        if self.config.read_paths_enabled:
            for g in self.shards:
                regions.extend(
                    smr_rx_regions(self.config.n_processes, region=shard_region(g))
                )
        regions.extend(config_regions(self.config.n_processes, self._config_leader()))
        return regions

    _cluster_class = ElasticCluster

    # ------------------------------------------------------------------
    # topology (epoch-driven)
    # ------------------------------------------------------------------
    @property
    def active_replicas(self) -> List[int]:
        return list(self._state.active_epoch.replicas)

    @property
    def epoch(self) -> Epoch:
        """The epoch client traffic currently runs in."""
        return self._state.active_epoch

    @property
    def epochs(self) -> List[Epoch]:
        return self._state.epochs

    def _config_leader(self) -> int:
        """The config log's leader: the lowest active replica."""
        return min(self._state.active_epoch.replicas)

    # ------------------------------------------------------------------
    # proposals
    # ------------------------------------------------------------------
    def propose_reconfig(self, command: Any) -> None:
        """Queue *command* for commit through the config log.

        Validated against the latest folded epoch (obvious nonsense is
        rejected here, loudly); the fold re-validates at commit time,
        because the configuration may move between propose and commit.
        """
        reason = self._state.check(command)
        if reason is not None:
            raise ConfigurationError(f"rejected {command!r}: {reason}")
        self._cfg_queue.append(command)
        env = self._control_env
        env.signal(self._cfg_wake)
        self._cfg_wake.clear()

    def schedule_reconfig(self, time: float, command: Any) -> None:
        """Propose *command* at virtual *time* (scenario scripting).

        Fire-time validation failures (the configuration moved between
        scheduling and firing — e.g. the autoscaler already merged the
        shard this command targets) are recorded as rejections, exactly
        like an invalid committed command: a stale timer must never
        unwind the kernel's run loop.
        """

        def fire() -> None:
            try:
                self.propose_reconfig(command)
            except ConfigurationError as error:
                self._state.rejected.append((command, str(error)))
                self.kernel.metrics.record_reconfig(
                    self.kernel.now, "rejected", repr(command), reason=str(error)
                )

        self.kernel.call_at(time, fire)

    # ------------------------------------------------------------------
    # fold reactions (run on whichever replica folds the slot first)
    # ------------------------------------------------------------------
    def _on_fold(self, command: Any, epoch: Optional[Epoch], accepted: bool) -> None:
        now = self.kernel.now
        ledger = self.kernel.metrics
        if epoch is not None:
            self.partitioner.stage(epoch.ring_version, epoch.shards)
            ledger.record_reconfig(
                now,
                "cfg_commit",
                f"e{epoch.number}",
                command=repr(command),
                shards=list(epoch.shards),
                replicas=[process_name(p) for p in epoch.replicas],
            )
        elif accepted and command.kind == RK_SEAL:
            ledger.record_reconfig(
                now, "seal", f"g{command.shard}", epoch=command.epoch
            )
        elif accepted and command.kind == RK_ACTIVATE:
            self._apply_activation(self._state.active_epoch)
        if self._cfg_wake is not None:
            self._control_env.signal(self._cfg_wake)
            self._cfg_wake.clear()

    def _apply_activation(self, epoch: Epoch) -> None:
        """The cutover instant: routing and leadership flip to *epoch*."""
        self.partitioner.activate(epoch.ring_version)
        self.shards = list(epoch.shards)
        self._leader_map = dict(epoch.leaders)
        self.kernel.metrics.record_reconfig(
            self.kernel.now,
            "activate",
            f"e{epoch.number}",
            shards=list(epoch.shards),
            ring_version=epoch.ring_version,
        )
        for hook in self.on_activation:
            hook(epoch)

    # ------------------------------------------------------------------
    # the drain filter (seal semantics)
    # ------------------------------------------------------------------
    def _drainable(self, shard: int, command) -> bool:
        client = command.client
        if isinstance(client, tuple) and client and client[0] == "mig":
            return True  # migration puts and barrier probes always commit
        pending = self._state.next_pending()
        if pending is not None and shard in pending.sealed:
            if self.partitioner.shard_for(command.key, version=pending.ring_version) != shard:
                return False  # sealed: this key is leaving the shard
        if self.partitioner.shard_for(command.key) != shard:
            return False  # post-cutover straggler: the resend re-routes
        return True

    # ------------------------------------------------------------------
    # config log plumbing
    # ------------------------------------------------------------------
    def _spawn_config_replica(self, pid: int, recovered: bool = False) -> None:
        env = self.cluster.env_for(pid)
        log = self._cfg_log.make_replica(env, recovered=recovered)
        tasks = self._cfg_tasks.setdefault(pid, [])
        tasks.append(self.cluster.spawn(pid, f"cfg-listen-p{pid+1}", log.listener()))
        tasks.append(self.cluster.spawn(pid, f"cfg-sync-p{pid+1}", log.sync_server()))
        if recovered and pid != self._config_leader():
            tasks.append(self.cluster.spawn(pid, f"cfg-catchup-p{pid+1}", log.catchup()))

    def _spawn_control_plane(self, pid: int) -> None:
        """(Re)place the coordinator — and autoscaler, if any — on *pid*."""
        for task in self._control_tasks:
            task.done = True
        self._control_tasks = []
        env = self.cluster.env_for(pid)
        self._control_env = env
        self._cfg_wake = env.new_gate("cfg-wake")
        # The migrator's streamed-token memo is coordinator-process state:
        # a fresh coordinator cannot know what its predecessor sent, so it
        # re-streams from the top and relies on destination-side dedup —
        # that reliance is exactly what the crash tests exercise.
        self.migrator = Migrator(self.partitioner, window=self.config.migration_window)
        self._control_tasks.append(
            self.cluster.spawn(pid, "reconfig-coordinator", self._coordinator(env))
        )
        if self.autoscaler is not None:
            self._control_tasks.append(
                self.cluster.spawn(pid, "autoscaler", self._autoscaler_task(env))
            )

    # ------------------------------------------------------------------
    # the coordinator
    # ------------------------------------------------------------------
    def _coordinator(self, env) -> Generator:
        """Commit queued proposals; execute pending epochs; hand off when
        an epoch moves config leadership elsewhere.

        Starts by reconciling the active epoch's post-activation cleanup:
        a predecessor that crashed between activation and cleanup leaves
        retired groups or removed replicas still running, and this is the
        idempotent re-run that finishes the job.
        """
        poll = self.config.coordinator_poll
        self._reconcile_cleanup()
        while True:
            if int(env.pid) != self._config_leader():
                # Deposed with the epoch that moved the leadership; make
                # sure the successor control plane actually exists before
                # standing down (a crashed predecessor may never have
                # reached the handoff in step 8).
                self._spawn_control_plane(self._config_leader())
                return
            if self._cfg_queue:
                command = self._cfg_queue[0]
                yield from self._cfg_log.commit(env, command)
                # pop only after the commit: a coordinator that crashed
                # mid-commit leaves the proposal queued, and the fold's
                # duplicate guard makes the re-commit a no-op
                if self._cfg_queue and self._cfg_queue[0] is command:
                    self._cfg_queue.popleft()
                continue
            pending = self._state.next_pending()
            if pending is not None:
                yield from self._execute_epoch(env, pending)
                continue
            yield env.gate_wait(self._cfg_wake, timeout=poll)

    def _execute_epoch(self, env, epoch: Epoch) -> Generator:
        """Drive one committed epoch to activation (idempotent throughout)."""
        cfg = self.config
        ledger = self.kernel.metrics
        number = epoch.number
        frontend = self.frontends[int(env.pid)]
        obs = env.obs
        phase = obs and obs.phase("reconfig.epoch", epoch=number)
        try:
            yield from self._execute_epoch_inner(
                env, epoch, cfg, ledger, number, frontend
            )
        finally:
            if phase:
                phase.finish()

    def _execute_epoch_inner(
        self, env, epoch: Epoch, cfg, ledger, number: int, frontend
    ) -> Generator:
        self.partitioner.stage(epoch.ring_version, epoch.shards)

        # 1. new shard groups (split): register the fenced region, spawn
        #    replicas; the new leader's takeover prepare is the grant storm.
        for shard in epoch.shards:
            if shard not in self.queues:
                self._add_shard_group(shard, epoch.leaders[shard])

        # 2. a joining replica starts catching up before cutover
        if epoch.source is not None and epoch.source.kind == RK_ADD_REPLICA:
            self._join_replica(epoch.source.pid)

        # 3. bulk migration: old owners keep serving (dual ownership)
        for source in epoch.migration_sources:
            moved = yield from self.migrator.stream(
                env, frontend, self.machines[(int(env.pid), source)],
                source, number, epoch.ring_version,
            )
            ledger.record_reconfig(
                env.now, "migrate", f"g{source}", epoch=number, phase="bulk", keys=moved
            )

        # 4. seal the sources.  A retiring shard is sealed by force — the
        #    permission storm fences its whole region to the tombstone, so
        #    its old-epoch leader's in-flight writes NAK at the memories.
        #    A fenced shard can commit no barrier, so the coordinator's
        #    replica instead pulls the committed prefix from the victim's
        #    leader explicitly: a commit broadcast lost to link chaos
        #    before the fence would otherwise never be retransmitted (no
        #    later commit can trigger the listener's gap-pull), and the
        #    delta pass must not miss an acknowledged write.
        for source in epoch.migration_sources:
            if source in epoch.retired:
                yield from self._fence_region(env, shard_region(source), TOMBSTONE)
                yield env.sleep(cfg.fence_settle)
                yield from self.logs[(int(env.pid), source)].catchup()
            elif source not in epoch.sealed:
                yield from self._cfg_log.commit(env, SealShard(number, source))

        # 5. barrier + delta: catch everything committed since the bulk
        #    pass — late puts land their frozen values, and the delete
        #    sweep reaps destination copies of keys the source dropped
        def peer_machine(destination: int):
            return self.machines.get((int(env.pid), destination))

        for source in epoch.migration_sources:
            if source not in epoch.retired:
                yield from self.migrator.barrier(env, frontend, source, number)
            delta = yield from self.migrator.stream(
                env, frontend, self.machines[(int(env.pid), source)],
                source, number, epoch.ring_version,
                old_version=self._state.active_epoch.ring_version,
                peer_machine_of=peer_machine,
            )
            ledger.record_reconfig(
                env.now, "migrate", f"g{source}", epoch=number, phase="delta", keys=delta
            )

        # 6. leadership handovers: depose the old leader, let the new one's
        #    recovered log re-prepare (the fence lands at the memories).
        for shard, old_leader in epoch.deposed:
            if shard not in epoch.retired:
                self._switch_leader(shard, old_leader, epoch.leaders[shard])

        # 7. cutover
        yield from self._cfg_log.commit(env, ActivateEpoch(number))

        # 8. post-activation cleanup
        for shard in epoch.retired:
            self._retire_group(shard)
        if epoch.source is not None and epoch.source.kind == RK_REMOVE_REPLICA:
            self._retire_replica(epoch.source.pid)
        if self._config_leader() != int(env.pid):
            # the coordinator loop notices on its next turn and hands the
            # control plane to the new config leader before standing down
            ledger.record_reconfig(
                env.now, "control_move", process_name(self._config_leader())
            )

    def _reconcile_cleanup(self) -> None:
        """Finish the ACTIVE epoch's post-activation cleanup, idempotently.

        Normally a no-op: step 8 of ``_execute_epoch`` already did this.
        It matters when a predecessor coordinator crashed between the
        activation commit and the cleanup — the epoch is active
        everywhere, yet a retired shard's leader still proposes into its
        tombstoned region and a removed replica's tasks still run.
        """
        active = self._state.active_epoch
        for shard in active.retired:
            if shard in self.queues:
                self._retire_group(shard)
        if active.source is not None and active.source.kind == RK_REMOVE_REPLICA:
            pid = active.source.pid
            if any(key[0] == pid for key in self._group_tasks):
                self._retire_replica(pid)

    # ------------------------------------------------------------------
    # epoch building blocks
    # ------------------------------------------------------------------
    def _add_shard_group(self, shard: int, leader: int) -> None:
        """Stand up one new consensus group for *shard* led by *leader*."""
        new_regions = [self._shard_region_spec(shard)]
        if self.config.read_paths_enabled:
            new_regions.extend(
                smr_rx_regions(self.config.n_processes, region=shard_region(shard))
            )
        self.cluster.add_regions(new_regions)
        self.queues[shard] = deque()
        env = self.cluster.env_for(leader)
        self._leader_envs[shard] = env
        self._install_shard_control(shard, env)
        self._leader_map[shard] = leader  # additive; routing flips at cutover
        for pid in self.active_replicas:
            self._spawn_pmp_replica(pid, shard, recovered=True)
        self.kernel.metrics.record_reconfig(
            self.kernel.now, "spawn_group", f"g{shard}", leader=process_name(leader)
        )

    def _switch_leader(self, shard: int, old: int, new: int) -> None:
        """Depose *old* as *shard*'s leader and install *new*.

        The old leader's proposer/acceptor die here; its queued commands
        are dropped (clients resend, dedup absorbs).  The new leader's
        existing replica log re-prepares — the ``changePermission`` at
        each memory is what *provably* fences the old leader out.

        Idempotent: a coordinator re-running the epoch after a crash must
        not stack a second proposer/acceptor pair onto a handover its
        predecessor already performed (two proposers would interleave on
        one shared log's slot state).
        """
        existing = self._lead_tasks.get((new, shard), ())
        if any(not task.done for task in existing):
            return  # the handover already happened (and survived)
        for task in self._lead_tasks.pop((old, shard), ()):
            task.done = True
        self.queues[shard].clear()
        read_queue = self._read_queues.get(shard)
        if read_queue is not None:
            read_queue.clear()  # the old leader's parked reads die with it
        env = self.cluster.env_for(new)
        self._leader_envs[shard] = env
        self._install_shard_control(shard, env)
        self._leader_map[shard] = new
        log = self.logs[(new, shard)]
        self._spawn_leader_role(new, shard, env, log)
        self.kernel.metrics.record_reconfig(
            self.kernel.now,
            "lead",
            f"g{shard}",
            old=process_name(old),
            new=process_name(new),
        )

    def _join_replica(self, pid: int) -> None:
        """Spawn *pid*'s replicas of every live group (catch-up included)."""
        for shard in list(self.queues):
            if (pid, shard) not in self.machines or self.logs.get((pid, shard)) is None:
                self._spawn_pmp_replica(pid, shard, recovered=True)
        self.kernel.metrics.record_reconfig(
            self.kernel.now, "join", process_name(pid)
        )

    def _retire_replica(self, pid: int) -> None:
        """Kill a removed replica's group tasks (its config replica stays:
        pool membership — and the ability to rejoin — is permanent)."""
        for key in [k for k in self._lead_tasks if k[0] == pid]:
            for task in self._lead_tasks.pop(key):
                task.done = True
        for key in [k for k in self._group_tasks if k[0] == pid]:
            for task in self._group_tasks.pop(key):
                task.done = True
            self.logs.pop(key, None)
        self.kernel.metrics.record_reconfig(
            self.kernel.now, "leave", process_name(pid)
        )

    def _retire_group(self, shard: int) -> None:
        """Tear down a merged-away shard's group everywhere.

        State machines stay readable (forensics, tests); the log region
        stays tombstoned at the memories — that permanence is the fence.
        """
        for pid in range(self.config.n_processes):
            for task in self._lead_tasks.pop((pid, shard), ()):
                task.done = True
            for task in self._group_tasks.pop((pid, shard), ()):
                task.done = True
        self.queues.pop(shard, None)
        self._gates.pop(shard, None)
        self._read_queues.pop(shard, None)
        self._read_gates.pop(shard, None)
        self._leader_envs.pop(shard, None)
        self._leader_map.pop(shard, None)
        self.kernel.metrics.record_reconfig(
            self.kernel.now, "retire", f"g{shard}"
        )

    def _fence_region(self, env, region: str, permission: Permission) -> Generator:
        """The changePermission storm: install *permission* at every
        memory, resuming on a majority (a crashed memory's fence lands
        when it revives — permission state is hardware state)."""
        futures = yield from env.invoke_on_all(
            lambda mid: ChangePermissionOp(region, permission)
        )
        yield env.wait(futures, count=env.majority_of_memories())
        self.kernel.metrics.record_reconfig(
            env.now,
            "fence",
            region,
            permission=permission.summary(),
            acked=count_acked(tuple(futures)),
        )

    # ------------------------------------------------------------------
    # autoscaling
    # ------------------------------------------------------------------
    def _autoscaler_task(self, env) -> Generator:
        policy = self.autoscaler
        while True:
            yield env.sleep(policy.config.interval)
            busy = self._state.has_pending() or bool(self._cfg_queue)
            obs = self.kernel.obs
            pressure = (
                obs.slo.pressure()
                if obs is not None and obs.slo is not None
                else None
            )
            for proposal in policy.observe(
                env.now, self.kernel.metrics, self.shards, busy, pressure
            ):
                try:
                    self.propose_reconfig(proposal)
                except ConfigurationError as error:
                    # e.g. the policy's own ceiling exceeds the cluster's
                    # max_shards — record and keep sampling, never unwind
                    self._state.rejected.append((proposal, str(error)))
                    self.kernel.metrics.record_reconfig(
                        env.now, "rejected", repr(proposal), reason=str(error)
                    )

    # ------------------------------------------------------------------
    # failure hooks: recover into the CURRENT epoch
    # ------------------------------------------------------------------
    def _respawn_process(self, pid) -> None:
        """Rebuild a recovered process against the epoch of *now*.

        Shard replicas are spawned for every live group — the active
        epoch's shards plus any group a pending epoch has already stood
        up (a migration destination mid-split must come back, or the
        in-flight transfer of this process's completions would stall).
        The boot topology the process crashed out of is irrelevant.
        """
        pid = int(pid)
        self.frontends[pid] = self._make_frontend(pid)
        if self.config.read_paths_enabled:
            self._spawn_read_reply_pump(pid)
        hosts = set(self._state.active_epoch.replicas) | set(
            self._state.latest.replicas
        )
        if pid in hosts:
            for shard in list(self.queues):
                self._spawn_pmp_replica(pid, shard, recovered=True)
        self._spawn_config_replica(pid, recovered=True)
        if pid == self._config_leader():
            self._spawn_control_plane(pid)

    # ------------------------------------------------------------------
    # goal
    # ------------------------------------------------------------------
    def _converged(self) -> bool:
        """Elastic convergence additionally requires a quiet control
        plane: no queued proposal, no committed-but-inactive epoch."""
        if self._cfg_queue or self._state.has_pending():
            return False
        return super()._converged()

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def moved_by_epoch(self) -> Dict[int, int]:
        """Migration transfers submitted per epoch (bulk + delta) from
        the ledger's reconfig timeline.  Counts what crossed the wire:
        after a coordinator crash the re-streamed identities are included
        even though the destination dedup'd them (the destination
        machines' ``duplicates`` counters hold the re-apply truth)."""
        moved: Dict[int, int] = {}
        for record in self.kernel.metrics.reconfigs_of("migrate"):
            epoch = record.detail["epoch"]
            moved[epoch] = moved.get(epoch, 0) + record.detail["keys"]
        return moved


def region_fenced_errors(service, shard: int, old_leader: int) -> List[str]:
    """Model-checking oracle: a deposed leader must be fenced out.

    The paper's permission-fence check, as data rather than an assert: on
    every live memory the old leader must lack write permission on the
    shard's region, and an actual zombie write must NAK.  Returns error
    strings, empty when the fence holds.  Crashed memories are skipped —
    they answer nothing, fenced or not.
    """
    from repro.mem.operations import WriteOp
    from repro.types import OpStatus, ProcessId

    region = shard_region(shard)
    errors: List[str] = []
    pid = ProcessId(old_leader)
    for mid, memory in enumerate(service.kernel.memories):
        if memory.crashed:
            continue
        if memory.permission_of(region).can_write(pid):
            errors.append(
                f"mu{mid + 1}: deposed leader p{old_leader + 1} still holds "
                f"write permission on {region}"
            )
            continue
        result = memory.apply(
            pid, WriteOp(region, (region, 10_000, old_leader), "zombie-write")
        )
        if result.status != OpStatus.NAK:
            errors.append(
                f"mu{mid + 1}: zombie write by deposed leader "
                f"p{old_leader + 1} was {result.status.value}, expected nak"
            )
    return errors
