"""Exception hierarchy for the reproduction library.

All library exceptions derive from :class:`ReproError` so callers can catch
everything from this package with a single clause.  Safety-violation errors
are separate from configuration errors because tests treat them differently:
a :class:`SafetyViolation` raised during a simulation is a *finding* (the
algorithm under test is broken), whereas a :class:`ConfigurationError` is a
caller bug.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A cluster or protocol was configured inconsistently."""


class SimulationError(ReproError):
    """The simulation kernel detected an internal inconsistency."""


class DeadlockError(SimulationError):
    """The event queue drained while tasks were still waiting."""


class LivelockError(SimulationError):
    """A run exceeded its ``max_events`` budget without reaching its goal.

    Raised by ``Kernel.run`` as a *diagnostic*: the message carries a
    queue-depth snapshot (per-kind pending counts, parked tasks) and, when
    an observability runtime is attached, the exception's ``flight_dump``
    holds the flight recorder's open-span dump taken at trip time.
    """

    def __init__(self, message: str, flight_dump=None) -> None:
        super().__init__(message)
        self.flight_dump = flight_dump


class OutstandingOpError(SimulationError):
    """A task issued a second outstanding operation on the same memory.

    The model (Section 3, "Executions and steps") requires each process to
    have at most one outstanding operation per memory; the kernel enforces
    this per task.
    """


class WhatIfDivergence(SimulationError):
    """Two replays of the same what-if experiment produced different traces.

    The causal profiler's entire claim rests on determinism: an override
    must change *delays*, never the schedule's identity, so replaying an
    experiment must hash identically.  Raised by
    ``WhatIfProfiler(check_determinism=True)`` when it does not — which
    means the scenario closure leaks state between runs (shared RNG,
    reused client ids, mutable latency model) or a kernel hook became
    schedule-dependent.
    """


class SafetyViolation(ReproError):
    """An agreement/validity invariant was violated during a run."""


class AgreementViolation(SafetyViolation):
    """Two correct processes decided different values."""


class ValidityViolation(SafetyViolation):
    """A decided value was not an input of any process."""


class StalenessViolation(SafetyViolation):
    """A non-consensus read returned state older than its session floor."""


class SignatureError(ReproError):
    """A signature operation was attempted with a key the caller lacks."""


class PermissionError_(ReproError):
    """Raised only by the RDMA facade for locally detectable misuse.

    The abstract memory never raises on permission problems — it returns
    ``nak`` like the hardware would — but the facade validates handles
    eagerly (e.g. using an rkey after deregistration).
    """


class ProtocolError(ReproError):
    """A protocol implementation detected an impossible local state."""
