"""A replicated key-value store over the replicated log.

The state machine applies ``KVCommand`` entries in slot order; reads go
through the log too (they are commands), so every replica answers queries
from the same committed prefix — the standard linearizable-SMR recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class KVCommand:
    """One state-machine command: put/get/delete."""

    op: str  # "put" | "get" | "delete"
    key: str
    value: Any = None
    client: Optional[int] = None
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in ("put", "get", "delete"):
            raise ValueError(f"unknown KV op {self.op!r}")


class KVStateMachine:
    """Deterministic KV state machine; replicas converge by construction."""

    def __init__(self) -> None:
        self.data: Dict[str, Any] = {}
        self.applied: List[Tuple[int, KVCommand, Any]] = []

    def apply(self, slot: int, command: Any) -> Any:
        """Apply one committed command; returns the command's result."""
        if not isinstance(command, KVCommand):
            # Unknown commands (e.g. no-ops from leader change) are skipped
            # deterministically.
            self.applied.append((slot, command, None))
            return None
        if command.op == "put":
            self.data[command.key] = command.value
            result = None
        elif command.op == "get":
            result = self.data.get(command.key)
        else:  # delete
            result = self.data.pop(command.key, None)
        self.applied.append((slot, command, result))
        return result

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the current store contents."""
        return dict(self.data)

    @property
    def applied_count(self) -> int:
        return len(self.applied)
