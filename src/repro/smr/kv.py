"""A replicated key-value store over the replicated log.

The state machine applies ``KVCommand`` entries in slot order; reads go
through the log too (they are commands), so every replica answers queries
from the same committed prefix — the standard linearizable-SMR recipe.

Slots may carry a single command or a :class:`~repro.smr.log.Batch` of
commands; a batch is applied in order, and commands that carry a
``(client, request_id)`` identity are applied at most once — a client
retry that slips into a later slot re-returns the original result instead
of re-executing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.smr.log import Batch


class KVCommand:
    """One state-machine command: put/get/delete.

    A hand-written ``__slots__`` value object (one is allocated per client
    request on the workload hot path).  ``identity`` — the at-most-once
    dedup token, or None for anonymous commands — is precomputed at
    construction: it is read on every routing, apply and completion step.
    Treat instances as immutable.
    """

    __slots__ = ("op", "key", "value", "client", "request_id", "identity")
    #: fields the crypto canonical encoder signs (identity is derived)
    _signable_fields_ = ("op", "key", "value", "client", "request_id")

    def __init__(
        self,
        op: str,  # "put" | "get" | "delete"
        key: str,
        value: Any = None,
        client: Optional[int] = None,
        request_id: Optional[int] = None,
    ) -> None:
        if op not in ("put", "get", "delete"):
            raise ValueError(f"unknown KV op {op!r}")
        self.op = op
        self.key = key
        self.value = value
        self.client = client
        self.request_id = request_id
        self.identity: Optional[Tuple[Any, Any]] = (
            (client, request_id)
            if client is not None and request_id is not None
            else None
        )

    def _fields(self) -> Tuple[Any, ...]:
        return (self.op, self.key, self.value, self.client, self.request_id)

    def __eq__(self, other: Any) -> bool:
        if type(other) is not KVCommand:
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash(self._fields())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KVCommand(op={self.op!r}, key={self.key!r}, value={self.value!r}, "
            f"client={self.client!r}, request_id={self.request_id!r})"
        )


class KVStateMachine:
    """Deterministic KV state machine; replicas converge by construction."""

    def __init__(self) -> None:
        self.data: Dict[str, Any] = {}
        self.applied: List[Tuple[int, Any, Any]] = []
        #: (client, request_id) -> first result, for at-most-once retries
        self.seen: Dict[Tuple[Any, Any], Any] = {}
        self.duplicates = 0
        self.batches_applied = 0
        #: idle-heartbeat (empty) batches, kept separate so batch-fill
        #: statistics reflect only slots that carried commands
        self.empty_batches = 0

    def apply(self, slot: int, command: Any) -> Any:
        """Apply one committed log entry; returns the entry's result.

        A :class:`Batch` entry applies its commands in order and returns
        the list of per-command results (empty list for a no-op batch).
        """
        if isinstance(command, Batch):
            self.batches_applied += 1
            if len(command) == 0:
                self.empty_batches += 1
            return [self._apply_one(slot, inner) for inner in command]
        return self._apply_one(slot, command)

    def _apply_one(self, slot: int, command: Any) -> Any:
        if not isinstance(command, KVCommand):
            # Unknown commands (e.g. no-ops from leader change) are skipped
            # deterministically.
            self.applied.append((slot, command, None))
            return None
        token = command.identity
        if token is not None and token in self.seen:
            self.duplicates += 1
            result = self.seen[token]
            self.applied.append((slot, command, result))
            return result
        if command.op == "put":
            self.data[command.key] = command.value
            result = None
        elif command.op == "get":
            result = self.data.get(command.key)
        else:  # delete
            result = self.data.pop(command.key, None)
        if token is not None:
            self.seen[token] = result
        self.applied.append((slot, command, result))
        return result

    def get(self, key: str) -> Any:
        """Read one key from the applied state (no log traffic).

        This is the serving half of the non-consensus read paths: the
        *caller* is responsible for the freshness proof (a fence probe, a
        quorum watermark, or a session floor) before trusting the value.
        """
        return self.data.get(key)

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the current store contents."""
        return dict(self.data)

    @property
    def applied_count(self) -> int:
        return len(self.applied)
