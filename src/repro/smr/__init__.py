"""State machine replication over the paper's consensus instances.

The paper notes (Section 5.1) that with many consensus instances "the
leader terminates one instance and becomes the default leader in the
next" — this package builds that multi-instance layer: a replicated log
where each slot is decided by a fresh instance of any
:class:`~repro.consensus.base.ConsensusProtocol`, plus a small replicated
key-value store driven by it.  Used by the examples and the throughput
benchmark (E10).
"""

from repro.smr.byzantine_log import (
    ByzantineLogConfig,
    ByzantineReplicatedLog,
    NOOP,
)
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import (
    Batch,
    ReplicatedLog,
    SmrConfig,
    rx_region_of,
    smr_regions,
    smr_rx_regions,
)

__all__ = [
    "Batch",
    "ByzantineLogConfig",
    "ByzantineReplicatedLog",
    "KVCommand",
    "KVStateMachine",
    "NOOP",
    "ReplicatedLog",
    "SmrConfig",
    "rx_region_of",
    "smr_regions",
    "smr_rx_regions",
]
