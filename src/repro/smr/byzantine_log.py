"""Byzantine-tolerant replicated log: Fast & Robust per slot.

The extension the paper's systems descendants (Mu, uBFT) build: order a
*sequence* of commands among ``n = 2f+1`` replicas, tolerating ``f``
Byzantine ones.  Each log slot runs one full Fast & Robust instance in its
own register namespaces (``cq{slot}``/``neb{slot}``); the broadcast-unit
signatures cover the namespace, so nothing signed for one slot can be
replayed into another.  In the common case every slot commits on the
leader's two-delay fast path.

Replicas drive slots sequentially and apply decided commands to a
deterministic state machine; `ByzantineReplicatedLog` is the pluggable
protocol, `run` the per-replica driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from repro.broadcast.nonequivocating import neb_regions
from repro.consensus.base import ConsensusProtocol
from repro.consensus.cheap_quorum import CheapQuorumConfig, cq_regions
from repro.consensus.fast_robust import FastRobust, FastRobustConfig
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv


@dataclass
class ByzantineLogConfig:
    """Configuration of the Byzantine replicated log."""

    n_slots: int = 3
    fast_robust: FastRobustConfig = field(
        default_factory=lambda: FastRobustConfig(
            cheap_quorum=CheapQuorumConfig(
                leader_timeout=25.0, unanimity_timeout=40.0
            )
        )
    )

    def namespaces(self, slot: int) -> Tuple[str, str]:
        return (f"cq{slot}", f"neb{slot}")


#: deterministic no-op command replicas propose when they have nothing queued
NOOP = ("noop",)


class ByzantineReplicatedLog(ConsensusProtocol):
    """Multi-shot weak Byzantine agreement over Fast & Robust instances.

    ``scripts`` maps pid -> list of commands that replica wants ordered;
    shorter scripts are padded with no-ops.  Each replica's ``apply_fn``
    receives ``(slot, decided_command)`` in slot order.
    """

    name = "byzantine-log"

    def __init__(
        self,
        scripts: dict,
        config: Optional[ByzantineLogConfig] = None,
        apply_factory: Optional[Callable[[], Callable[[int, Any], None]]] = None,
    ) -> None:
        self.scripts = scripts
        self.config = config or ByzantineLogConfig()
        self.apply_factory = apply_factory
        #: pid -> list of (slot, decided command), for inspection by tests
        self.applied: dict = {}

    # ------------------------------------------------------------------
    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        leader = self.config.fast_robust.cheap_quorum.leader
        regions: List[RegionSpec] = []
        for slot in range(self.config.n_slots):
            cq_ns, neb_ns = self.config.namespaces(slot)
            regions.extend(cq_regions(n_processes, leader, namespace=cq_ns))
            regions.extend(neb_regions(range(n_processes), namespace=neb_ns))
        return regions

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("byz-log", self._drive(env))]

    # ------------------------------------------------------------------
    def _command_for(self, pid: int, slot: int) -> Any:
        script = self.scripts.get(pid, [])
        return script[slot] if slot < len(script) else NOOP

    def _drive(self, env: ProcessEnv) -> Generator:
        pid = int(env.pid)
        log: List[Any] = []
        apply_fn = self.apply_factory() if self.apply_factory else None
        protocol = FastRobust(self.config.fast_robust)
        for slot in range(self.config.n_slots):
            cq_ns, neb_ns = self.config.namespaces(slot)
            decided = yield from protocol.run_instance(
                env,
                self._command_for(pid, slot),
                cq_namespace=cq_ns,
                neb_namespace=neb_ns,
                instance=slot,
            )
            log.append(decided)
            if apply_fn is not None:
                apply_fn(slot, decided)
        self.applied[pid] = list(enumerate(log))
        # The whole ordered log is the replica's overall decision: the
        # ledger's default (single-shot) agreement check then certifies
        # that all correct replicas built identical logs.
        env.decide(tuple(log))
        return tuple(log)
