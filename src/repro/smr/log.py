"""A replicated log: one consensus instance per slot.

Each slot gets its own protocol instance with registers/messages namespaced
by slot index, so instances never interfere.  The leader (slot proposer)
carries its decision into the next slot — the paper's "default leader in
the next instance" — which keeps every slot on the protocol's fast path:
with Protected Memory Paxos each committed command costs two delays.

This is deliberately a *library* layer above the consensus protocols: it
feeds inputs in, observes decisions, and applies them to a state machine
callback in slot order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.chains import ChainRunner
from repro.errors import ConfigurationError
from repro.consensus.messages import Decision
from repro.consensus.probes import (
    max_confirmed_watermark,
    probe_write_grant,
    publish_watermark,
    read_quorum_chain,
    read_quorum_watermarks,
    watermark_key,
)
from repro.consensus.protected_memory_paxos import PmpSlot
from repro.mem.operations import (
    BatchOp,
    ChangePermissionOp,
    ReadSnapshotOp,
    SnapshotOp,
    WriteOp,
)
from repro.mem.permissions import (
    Permission,
    exclusive_grab_policy,
    static_permissions,
)
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import BOTTOM, is_bottom

SMR_REGION = "smr"
SMR_TOPIC = "smr"

#: prepare-probe slot used by leader recovery: a slot index no data slot
#: ever uses, so the probe write cannot clobber a forgotten commit
_RECOVERY_PROBE_SLOT = -1


def rx_region_of(region: str) -> str:
    """The read-index sibling region of one log region.

    Holds the per-writer commit-watermark registers the one-sided quorum
    read path reads (and writes back).  It is a *separate* region because
    its permission shape differs from the log's: the log region is
    exclusive-writer (the PMP fence), while watermark write-backs must be
    open to every process — a quorum reader is not the leader.
    """
    return region + "-rx"


def smr_rx_regions(n_processes: int, region: str = SMR_REGION) -> List[RegionSpec]:
    """The read-index region for one log: open access, static permissions.

    Open writes are safe here: registers are per-writer (no cross-process
    clobbering), values are monotone committed watermarks, and nothing in
    the region ever decides consensus — it only *indexes* what the fenced
    log region already committed.
    """
    rx = rx_region_of(region)
    processes = range(n_processes)
    return [
        RegionSpec(
            region_id=rx,
            prefix=(rx,),
            initial_permission=Permission.open(processes),
            legal_change=static_permissions,
        )
    ]


class Batch:
    """An ordered group of commands committed by one consensus instance.

    Batching amortises the per-slot cost: a single two-delay Protected
    Memory Paxos instance carries ``len(batch)`` client commands, which the
    state machine then applies in order.  An empty batch is a legal no-op
    filler (leader change, heartbeat).  A ``__slots__`` value object (one
    per committed slot, and batches travel inside decision messages);
    treat instances as immutable.
    """

    __slots__ = ("commands",)
    #: fields the crypto canonical encoder signs (see repro.crypto.signatures)
    _signable_fields_ = ("commands",)

    def __init__(self, commands: Tuple[Any, ...] = ()) -> None:
        self.commands = tuple(commands)

    def __eq__(self, other: Any) -> bool:
        if type(other) is not Batch:
            return NotImplemented
        return self.commands == other.commands

    def __hash__(self) -> int:
        return hash(self.commands)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({self.commands!r})"

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def __bool__(self) -> bool:
        # An empty batch is still a real log entry (a no-op), so Batch
        # truthiness follows "is a batch", not "has commands".
        return True


@dataclass
class SmrConfig:
    """Configuration for the replicated log."""

    initial_leader: int = 0
    leader_poll: float = 2.0
    retry_backoff: float = 4.0
    #: region/topic namespace; a multi-group service gives every consensus
    #: group its own namespace so groups sharing a kernel never interfere
    region: str = SMR_REGION
    topic: str = SMR_TOPIC
    #: publish the commit watermark to the read-index region after every
    #: committed slot, majority-acked BEFORE any client sees the commit.
    #: Off by default: it adds one memory round per committed slot
    #: (amortised across the batch), and only the one-sided quorum read
    #: path needs it.  Requires ``smr_rx_regions`` to be registered.
    publish_watermark: bool = False
    #: doorbell batching: fuse the phase-2 slot write with the watermark
    #: publish into ONE chain per memory (saving a full memory round per
    #: committed slot when ``publish_watermark`` is on), run fan-outs with
    #: single-completion semantics, and let quorum readers use the fused
    #: 1-round chain read.  Writers and readers MUST agree on this flag
    #: (they share the SmrConfig object): fused writers can leave a failed
    #: chain's watermark at a minority, which only the batched readers'
    #: confirmed-majority rule tolerates.  ``False`` restores the classic
    #: separate-rounds paths exactly.
    batch_chains: bool = True


def smr_regions(
    n_processes: int, initial_leader: int = 0, region: str = SMR_REGION
) -> List[RegionSpec]:
    """One dynamic-permission region covering all slots of all instances.

    Pass a distinct *region* per consensus group to lay out several
    independent replicated logs in the same memories.
    """
    processes = range(n_processes)
    return [
        RegionSpec(
            region_id=region,
            prefix=(region,),
            initial_permission=Permission.exclusive_writer(initial_leader, processes),
            legal_change=exclusive_grab_policy(processes),
        )
    ]


@dataclass
class _SlotState:
    decided: bool = False
    value: Any = None


class ReplicatedLog:
    """A Protected-Memory-Paxos-backed replicated log endpoint.

    The log embeds a per-slot PMP-style proposer rather than instantiating
    the standalone protocol object, because leadership (and hence the
    permission skip) carries across slots: after deciding slot ``i`` the
    leader still holds exclusive write permission, so slot ``i+1`` is again
    a single two-delay write.
    """

    def __init__(
        self,
        env: ProcessEnv,
        apply_fn: Callable[[int, Any], None],
        config: Optional[SmrConfig] = None,
        leader_fn: Optional[Callable[[], int]] = None,
        recovered: bool = False,
    ) -> None:
        self.env = env
        self.apply_fn = apply_fn
        self.config = config or SmrConfig()
        self.region = self.config.region
        self.topic = self.config.topic
        #: catch-up traffic (pull requests, horizon acks) rides a sibling
        #: topic so it never competes with commit broadcasts
        self.sync_topic = self.config.topic + "-sync"
        #: who may propose; defaults to the kernel's Ω oracle, but a sharded
        #: service pins each group to its own statically assigned leader
        self._leader_fn = leader_fn if leader_fn is not None else (
            lambda: int(env.leader())
        )
        self.slots: Dict[int, _SlotState] = {}
        self.applied_upto = -1
        self.highest_seen = Ballot.zero()
        #: True once this process has grabbed permissions (or started as
        #: the initial leader), letting later slots skip the prepare phase.
        #: A *recovered* initial leader must NOT assume them: its previous
        #: incarnation (or a usurper it has forgotten) may have committed
        #: values it would silently overwrite — recovery always re-prepares.
        self.permissions_held = (
            int(env.pid) == self.config.initial_leader and not recovered
        )
        #: slot -> accepted value discovered at leadership takeover; while
        #: permissions are held nobody else can write, so the cache stays
        #: complete and proposing a cached slot must re-propose its value
        #: (otherwise a takeover could overwrite an earlier leader's commit)
        self.adopt_cache: Dict[int, Any] = {}
        self.commit_gate = env.new_gate(f"{self.region}-commit-p{int(env.pid)+1}")
        #: read-index region for watermark registers (quorum read path)
        self.rx_region = rx_region_of(self.region)
        #: highest watermark this process ever published (or started to):
        #: raised optimistically BEFORE the write leaves, so two reads
        #: interleaving their write-backs can never regress the register
        self._wm_publish_floor = -1

    # ------------------------------------------------------------------
    def _slot_key(self, slot: int, pid: int) -> tuple:
        return (self.region, slot, pid)

    def _state(self, slot: int) -> _SlotState:
        return self.slots.setdefault(slot, _SlotState())

    def _commit(self, slot: int, value: Any) -> None:
        state = self._state(slot)
        if state.decided:
            return
        state.decided = True
        state.value = value
        while self._state(self.applied_upto + 1).decided:
            self.applied_upto += 1
            self.apply_fn(self.applied_upto, self.slots[self.applied_upto].value)
        self.env.signal(self.commit_gate)
        self.commit_gate.clear()

    # ------------------------------------------------------------------
    # read paths (non-consensus)
    # ------------------------------------------------------------------
    @property
    def applied_watermark(self) -> int:
        """Highest slot applied to the local state machine, in order."""
        return self.applied_upto

    @property
    def serves_local_reads(self) -> bool:
        """May this endpoint serve permission-fenced reads from local state?

        Requires holding the grant AND having re-committed everything the
        takeover prepare adopted: between a prepare and the re-commits the
        local applied state lags values an earlier leader already
        committed, so serving it — even fenced — could be stale.

        It also requires the applied state to have caught up with this
        process's own published watermark: during the publish round of a
        commit (or a quorum read's write-back) the registers can already
        advertise a slot the local apply has not executed — a quorum
        reader may have served that slot, so answering from the lagging
        local state here would be new-then-old.  The window closes within
        the same commit step; refusing (the caller falls back) keeps the
        fenced path never-stale.
        """
        if not self.permissions_held:
            return False
        if self.adopt_cache and max(self.adopt_cache) > self.applied_upto:
            return False
        if self._wm_publish_floor > self.applied_upto:
            return False
        return True

    def fence_probe(self, timeout: Optional[float] = None) -> Generator:
        """True iff this process's exclusive write grant on the log region
        is live at a majority of memories (see ``PmpNode.grant_probe``)."""
        held = yield from probe_write_grant(self.env, self.region, timeout=timeout)
        return held

    def _publish_watermark(self, slot: int) -> Generator:
        """Majority-install ``commit watermark = slot`` in our register.

        Called by the leader after slot *slot*'s phase-2 write ACKed at a
        majority and BEFORE the commit is applied or broadcast: every
        client-visible effect of the commit therefore happens after the
        watermark is durable, which is what lets a quorum reader trust
        ``max(watermarks over any majority)`` to cover every completed
        write.  The register is kept monotone through the optimistic
        floor (concurrent quorum-read write-backs share it).
        """
        target = max(int(slot), self._wm_publish_floor)
        self._wm_publish_floor = target
        obs = self.env.obs
        phase = obs and obs.phase("log.watermark", slot=target)
        try:
            ok = yield from publish_watermark(self.env, self.rx_region, target)
        finally:
            if phase:
                phase.finish()
        return ok

    def quorum_read(self, timeout: Optional[float] = None) -> Generator:
        """One-sided quorum read: no leader involvement, ABD-style.

        Reads the commit watermark registers and any missing log entries
        directly from a majority of memories, ingests the committed
        prefix into this replica, and returns the watermark the local
        state now provably covers — or ``None`` when the read cannot be
        served one-sided (majority unreachable, region fenced away by a
        reconfiguration, or a wiped memory left the prefix unassemblable)
        and the caller must fall back to the consensus path.

        Correctness:

        * the watermark max over any majority covers every write whose
          client saw a reply (leaders majority-publish before replying);
        * every slot ``<= watermark`` was majority-written before the
          watermark advanced, so this read's majority holds each one,
          and the highest-ballot copy per slot is the committed value
          (the standard Paxos invariant: later ballots re-propose it);
        * before answering, the observed watermark is written back to a
          majority (skipped when the quorum already confirms it), so two
          sequential quorum reads can never see new-then-old.

        With ``batch_chains`` (and FIFO queue pairs) the whole read is
        ONE doorbell-batched round — see :meth:`_quorum_read_fused` for
        the adoption rules that replace the write-back.
        """
        env = self.env
        majority = env.majority_of_memories()
        obs = env.obs
        phase = obs and obs.phase("log.quorum_read", floor=self.applied_upto)
        try:
            result = yield from self._quorum_read_inner(majority, timeout)
        finally:
            if phase:
                phase.finish()
        return result

    def _quorum_read_inner(self, majority: int, timeout: Optional[float]) -> Generator:
        env = self.env
        if self.config.batch_chains and env.fifo_memory_ops:
            # Doorbell-batched read: ONE fused chain per memory carries
            # both the watermark snapshot and the entry snapshot — the
            # two sequential rounds collapse into one.  Requires FIFO
            # queue pairs (constant per-leg delays): with reordering the
            # per-view consistent-cut argument below would not bound
            # which commits an early-served entry view has seen.
            result = yield from self._quorum_read_fused(majority, timeout)
            return result
        # The watermark MUST be observed before the entries are fetched:
        # slots <= watermark were majority-written before the watermark
        # reached the memory that served it, so entry reads issued AFTER
        # that observation are guaranteed to find each committed value in
        # any majority.  Overlapping the two rounds would let an entry
        # view predate a commit the (later-served) watermark view already
        # covers — the view could then hold only a fenced-out old
        # proposer's minority residue for that slot, which would pass the
        # hole check and be served as if committed.  Sequencing also
        # skips the entry fan-out entirely in the caught-up common case.
        watermark, confirmed = yield from read_quorum_watermarks(
            env, self.rx_region, timeout=timeout
        )
        if watermark is None:
            return None
        if watermark <= self.applied_upto:
            # local state is already at least as fresh as the quorum —
            # nothing to ingest, nothing to write back
            return self.applied_upto
        write_back = None
        if not confirmed:
            if self.config.batch_chains:
                # Fused writers can leave a FAILED chain's watermark at a
                # minority of registers (the slot write ACKed, the run
                # died before a majority).  Writing that residue back
                # would promote it to a majority and let a later reader
                # "confirm" a slot no writer ever committed — so under
                # batch_chains an unconfirmed watermark is neither served
                # nor written back: fall back to the consensus path
                # before paying for an entry fetch it could never serve.
                return None
            # Classic writers publish a watermark only after its slot is
            # majority-committed, so even a minority residue describes
            # real commits — amplifying it to a majority is safe.  Ride
            # the write-back WR on the entry-fetch chain instead of
            # paying a third round afterwards: the chain applies in
            # order, so any memory whose snapshot ACKs has durably
            # installed the watermark first.  A majority of ACKs below
            # therefore certifies exactly what the separate
            # ``publish_watermark`` round used to (6 delays -> 4).
            target = max(watermark, self._wm_publish_floor)
            self._wm_publish_floor = target
            write_back = WriteOp(
                self.rx_region, watermark_key(self.rx_region, int(env.pid)), target
            )
        floor = self.applied_upto + 1
        read_op = ReadSnapshotOp(self.region, (self.region,), floor)
        fetch_op = read_op if write_back is None else BatchOp((write_back, read_op))
        entry_futures = yield from env.invoke_on_all(lambda mid: fetch_op)
        yield env.wait(entry_futures, count=majority, timeout=timeout)
        if write_back is None:
            views = [f.value for f in entry_futures if f.done and f.ok]
        else:
            views = [f.value[1] for f in entry_futures if f.done and f.ok]
        if len(views) < majority:
            return None
        best: Dict[int, tuple] = {}
        for view in views:
            for key, entry in view.items():
                if not isinstance(entry, PmpSlot) or entry.acc_prop is None:
                    continue  # ballot-publishing probes carry no value
                if is_bottom(entry.value):
                    continue
                slot = key[1]
                if not isinstance(slot, int) or not floor <= slot <= watermark:
                    continue
                current = best.get(slot)
                if current is None or entry.acc_prop > current[0]:
                    best[slot] = (entry.acc_prop, entry.value)
        for slot in range(floor, watermark + 1):
            if slot not in best and slot > self.applied_upto:
                # a hole in the committed prefix (wiped memory mid-run):
                # not one-sided-servable; the consensus path still is
                return None
        for slot in range(floor, watermark + 1):
            if slot > self.applied_upto:  # the listener may have raced ahead
                self._commit(slot, best[slot][1])
        return self.applied_upto

    def _quorum_read_fused(self, majority: int, timeout: Optional[float]) -> Generator:
        """The 1-round doorbell-batched quorum read.

        Each ACKing memory returns a *consistent cut* ``(wm_view,
        entry_view)`` — both snapshots applied at one arrival instant.
        Three rules make the single round safe where the classic path
        needed sequencing and a write-back:

        * **per-register confirmation** (``max_confirmed_watermark``):
          the max watermark is trusted only when one writer's register
          carries it at a majority of views, which proves that writer
          completed the slot under the fence;
        * **per-view qualification**: slot ``s`` is adopted only from
          views whose own watermark is ``>= s``.  A fused writer installs
          a slot and its watermark in the SAME chain and watermarks are
          monotone, so every qualifying view postdates some commit chain
          covering ``s`` — an entry view served before slot ``s``'s
          commit reached that memory can never supply a fenced-out
          proposer's residue for it;
        * **no write-back**: a confirmed watermark is already durable at
          a majority, and an unconfirmed one must not be amplified (see
          ``_quorum_read_inner``) — so the round is never followed by a
          publish.

        Holes (a committed slot no qualifying view holds — wiped memory,
        or every cut predating its chain) return ``None``: consensus
        fallback, same as the classic path.
        """
        env = self.env
        floor = self.applied_upto + 1
        pairs = yield from read_quorum_chain(
            env, self.rx_region, self.region, (self.region,), floor, timeout=timeout
        )
        if pairs is None:
            return None
        watermark, confirmed = max_confirmed_watermark(
            [wm_view for wm_view, _entries in pairs], majority
        )
        if watermark <= self.applied_upto:
            # local state is already at least as fresh as the quorum
            return self.applied_upto
        if not confirmed:
            return None
        best: Dict[int, tuple] = {}
        for wm_view, entry_view in pairs:
            own = -1
            for value in wm_view.values():
                if isinstance(value, int) and value > own:
                    own = value
            for key, entry in entry_view.items():
                if not isinstance(entry, PmpSlot) or entry.acc_prop is None:
                    continue  # ballot-publishing probes carry no value
                if is_bottom(entry.value):
                    continue
                slot = key[1]
                if not isinstance(slot, int) or not floor <= slot <= watermark:
                    continue
                if slot > own:
                    continue  # this cut predates slot's commit chain
                current = best.get(slot)
                if current is None or entry.acc_prop > current[0]:
                    best[slot] = (entry.acc_prop, entry.value)
        for slot in range(floor, watermark + 1):
            if slot not in best and slot > self.applied_upto:
                return None
        for slot in range(floor, watermark + 1):
            if slot > self.applied_upto:  # the listener may have raced ahead
                self._commit(slot, best[slot][1])
        return self.applied_upto

    # ------------------------------------------------------------------
    def listener(self) -> Generator:
        """Learn commits broadcast by the leader; pull any gap below them.

        A commit landing *above* ``applied_upto + 1`` means this replica
        missed broadcasts (a partition, a restart): it asks the leader to
        re-send the missing prefix, throttled to one pull per backoff.
        """
        env = self.env
        # One reusable receive effect: the kernel only reads its fields, so
        # the listener avoids an effect + sub-generator allocation per commit.
        recv_commit = env.recv_effect(topic=self.topic)
        last_pull = -self.config.retry_backoff
        while True:
            envelope = yield recv_commit
            if envelope is None:
                continue
            payload = envelope.payload
            if isinstance(payload, tuple) and len(payload) == 2:
                slot, decision = payload
                if isinstance(decision, Decision):
                    self._commit(slot, decision.value)
                    if slot > self.applied_upto + 1:
                        now = env.now
                        target = self._leader_fn()
                        if (
                            target != int(env.pid)
                            and now - last_pull >= self.config.retry_backoff
                        ):
                            last_pull = now
                            yield env.send(
                                target,
                                ("pull", self.applied_upto + 1),
                                topic=self.sync_topic,
                            )

    def sync_server(self) -> Generator:
        """Serve catch-up pulls: re-send the committed prefix on request.

        This is the state-transfer half of partition/crash recovery: a
        replica that missed commit broadcasts (or restarted empty) sends
        ``("pull", from_slot)`` on the sync topic; any up-to-date replica
        answers with the committed entries as ordinary ``(slot, Decision)``
        messages — the listener ingests them with zero new code paths —
        followed by an ``("upto", n)`` horizon marker on the sync topic.
        """
        env = self.env

        def is_pull(envelope) -> bool:
            payload = envelope.payload
            return isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "pull"

        recv_pull = env.recv_effect(topic=self.sync_topic, match=is_pull)
        while True:
            envelope = yield recv_pull
            if envelope is None:
                continue
            from_slot = max(0, envelope.payload[1])
            requester = envelope.src
            for slot in range(from_slot, self.applied_upto + 1):
                yield env.send(
                    requester,
                    (slot, Decision(value=self.slots[slot].value)),
                    topic=self.topic,
                )
            yield env.send(requester, ("upto", self.applied_upto), topic=self.sync_topic)

    def catchup(self) -> Generator:
        """Pull the committed prefix after a restart (follower recovery).

        Re-asks the current leader every backoff until a horizon ack shows
        this replica has applied everything the leader had committed; gaps
        that appear later are handled by the listener's pull path.
        """
        env = self.env

        def is_upto(envelope) -> bool:
            payload = envelope.payload
            return isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "upto"

        while True:
            target = self._leader_fn()
            if target == int(env.pid):
                return  # leaders recover by re-proposing (recover_leader)
            yield env.send(target, ("pull", self.applied_upto + 1), topic=self.sync_topic)
            reply = yield env.recv_effect(
                topic=self.sync_topic,
                match=is_upto,
                timeout=2 * self.config.retry_backoff,
            )
            if reply is not None and reply.payload[1] <= self.applied_upto:
                return

    def recover_leader(self) -> Generator:
        """Re-establish leadership after a restart and re-commit the past.

        Runs the full prepare (``recovered`` logs start with
        ``permissions_held`` False) — but probed at the reserved recovery
        slot, NOT at the next data slot: the prepare's ballot-publishing
        write lands on the probed slot's own key, and a restarted leader
        has forgotten which of its own keys hold committed values, so
        probing a real slot could destroy its previous incarnation's
        commit at every memory the prepare reaches.  The reserved slot can
        never hold data, the snapshot still covers the whole region, and
        ``adopt_cache`` then holds every slot any incarnation ever
        accepted; each propose re-commits those values in order —
        re-broadcasting their decisions, which is also what re-teaches a
        minority that was partitioned away while this leader was down.
        """
        env = self.env
        majority = env.majority_of_memories()
        while not self.permissions_held:
            prop_nr = self.highest_seen.next_for(env.pid)
            self.highest_seen = prop_nr
            adopted = yield from self._prepare(
                _RECOVERY_PROBE_SLOT, prop_nr, majority, Batch()
            )
            if adopted is None:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))
        while self.adopt_cache and max(self.adopt_cache) > self.applied_upto:
            yield from self.propose(self.applied_upto + 1, Batch())

    # ------------------------------------------------------------------
    def propose(self, slot: int, command: Any) -> Generator:
        """Drive consensus for *slot*; returns the decided command.

        Retries (with permission re-acquisition) until the slot commits;
        returns the committed value, which may be another leader's command
        if this process lost leadership.
        """
        env = self.env
        state = self._state(slot)
        while not state.decided:
            if self._leader_fn() != int(env.pid):
                yield env.gate_wait(self.commit_gate, timeout=self.config.leader_poll)
                continue
            yield from self._attempt(slot, command)
            if not state.decided:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))
        return state.value

    def propose_batch(self, slot: int, commands: Iterable[Any]) -> Generator:
        """Commit one :class:`Batch` of commands in *slot*; returns the
        decided value (the batch, or another leader's entry on takeover)."""
        decided = yield from self.propose(slot, Batch(tuple(commands)))
        return decided

    def _attempt(self, slot: int, command: Any) -> Generator:
        env = self.env
        majority = env.majority_of_memories()
        prop_nr = self.highest_seen.next_for(env.pid)
        self.highest_seen = prop_nr

        if self.permissions_held:
            my_value = self.adopt_cache.get(slot, command)
        else:
            my_value = yield from self._prepare(slot, prop_nr, majority, command)
            if my_value is None:
                return

        # Phase 2: one slot write per memory, all leaving at this instant,
        # leader resuming on a majority — two delays either way.  With
        # batch_chains + publish_watermark the watermark write rides the
        # SAME chain as the slot write (slot first, so a deposed leader's
        # NAK aborts the chain before the watermark can advance), saving
        # the separate publish round per committed slot.
        slot_value = PmpSlot(min_prop=prop_nr, acc_prop=prop_nr, value=my_value)
        key = self._slot_key(slot, int(env.pid))
        obs = env.obs
        phase = obs and obs.phase("log.phase2", slot=slot)
        publish = self.config.publish_watermark
        fused = publish and self.config.batch_chains
        published = False
        wm_refused = False
        if fused:
            # Floor raised BEFORE the chain leaves (same monotonicity
            # contract as _publish_watermark): a concurrent local read
            # path must refuse to serve until the apply catches up.
            target = max(int(slot), self._wm_publish_floor)
            self._wm_publish_floor = target
            chain_ops = (
                WriteOp(self.region, key, slot_value),
                WriteOp(
                    self.rx_region,
                    watermark_key(self.rx_region, int(env.pid)),
                    target,
                ),
            )
            if env.strict_outstanding:
                chains = ChainRunner(env, f"{self.region}2-{slot}")

                def phase2(mid):
                    result = yield from env.batch(mid, chain_ops)
                    return result

                yield from chains.launch(phase2)
                yield from chains.wait_for(majority)
                results = list(chains.results.values())
            else:
                chain = BatchOp(chain_ops)
                state = yield env.fanout_to_all(lambda mid: chain, need=majority)
                results = [r for r in state.results if r is not None]
            failed = any(not r.ok for r in results)
            wm_refused = any(
                not r.ok and r.value.failed_index == 1 for r in results
            )
            published = not failed
        elif env.strict_outstanding:
            # Model-conformance mode: the one-outstanding rule is enforced
            # per task per memory, and the proposer task is long-lived — a
            # same-instant straggler write from slot N would still be in
            # flight when slot N+1 invokes on that memory.  Run each write
            # in its own throwaway chain task, as the takeover path does.
            chains = ChainRunner(env, f"{self.region}2-{slot}")

            def phase2(mid):
                result = yield from env.write(mid, self.region, key, slot_value)
                return result.ok

            yield from chains.launch(phase2)
            yield from chains.wait_for(majority)
            failed = any(not ok for ok in chains.results.values())
        elif self.config.batch_chains:
            # Hot path, nothing to fuse (watermark off): single-completion
            # fan-out — one queue entry per memory out, ONE wake back, no
            # per-future waiter closures.
            write_op = WriteOp(region=self.region, key=key, value=slot_value)
            state = yield env.fanout_to_all(lambda mid: write_op, need=majority)
            failed = state.naked > 0
        else:
            # Classic path (batch_chains off): issue the writes directly
            # from the proposer task and wait on the futures.
            write_op = WriteOp(region=self.region, key=key, value=slot_value)
            futures = yield from env.invoke_on_all(lambda mid: write_op)
            yield env.wait(futures, count=majority)
            failed = any(f.done and not f.ok for f in futures)
        if phase:
            phase.finish(failed=failed)
        if failed:
            if wm_refused:
                # A chain aborted at the watermark write: the open, static
                # rx region can only refuse when it was never registered —
                # same loud assembly error as the separate publish round.
                raise ConfigurationError(
                    f"watermark publish to {self.rx_region!r} refused: "
                    "publish_watermark=True requires the smr_rx_regions "
                    "read-index region to be registered"
                )
            self.permissions_held = False  # somebody grabbed the region
            return
        if publish and not published:
            # The slot is committed (majority-acked under the fence) but
            # not yet client-visible; make the watermark durable FIRST so
            # no client can see a reply a quorum reader could miss.  The
            # open rx region can only NAK a majority when it was never
            # registered — proceeding would silently re-open the staleness
            # hole the watermark closes, so a failed publish is a loud
            # assembly error, not a degradation.
            published = yield from self._publish_watermark(slot)
            if not published:
                raise ConfigurationError(
                    f"watermark publish to {self.rx_region!r} refused at a "
                    "majority of memories: publish_watermark=True requires "
                    "the smr_rx_regions read-index region to be registered"
                )
        self._commit(slot, my_value)
        yield from env.broadcast(
            (slot, Decision(value=my_value)), topic=self.topic, include_self=False
        )

    def _prepare(self, slot: int, prop_nr: Ballot, majority: int, command: Any) -> Generator:
        env = self.env
        chains = ChainRunner(env, f"{self.region}1-{slot}")
        grab = Permission.exclusive_writer(int(env.pid), range(env.n_processes))
        probe = PmpSlot(min_prop=prop_nr, acc_prop=None, value=BOTTOM)
        probe_key = self._slot_key(slot, int(env.pid))

        if self.config.batch_chains:
            # Doorbell-batched takeover: grab + ballot-publishing probe +
            # whole-region snapshot ride ONE chain per memory — two delays
            # instead of six.  The grab policy ACKs any legitimate
            # self-grab (including a no-op re-grab), so the chain aborts
            # exactly where the classic sequence would have failed: a
            # tombstoned region NAKs at WR 0, and no usurper can
            # interleave between probe and snapshot (the chain applies
            # atomically at the memory).
            chain_ops = (
                ChangePermissionOp(self.region, grab),
                WriteOp(self.region, probe_key, probe),
                SnapshotOp(self.region, (self.region,)),
            )

            def phase1(mid):
                result = yield from env.batch(mid, chain_ops)
                if not result.ok:
                    return (False, None)
                return (True, result.value[2])

        else:

            def phase1(mid):
                yield from env.change_permission(mid, self.region, grab)
                write = yield from env.write(mid, self.region, probe_key, probe)
                if not write.ok:
                    return (False, None)
                # Takeover reads the *whole* region: every slot any
                # previous leader may have written, not just the one
                # being proposed.
                snap = yield from env.snapshot(mid, self.region, (self.region,))
                return (True, snap.value if snap.ok else None)

        obs = env.obs
        phase = obs and obs.phase("log.prepare", slot=slot)
        try:
            yield from chains.launch(phase1)
            yield from chains.wait_for(majority)
        finally:
            if phase:
                phase.finish()
        results = list(chains.results.values())
        if any(not ok for ok, _ in results):
            return None
        best_per_slot: Dict[int, tuple] = {}
        for ok, view in results:
            if view is None:
                return None
            for key, other in view.items():
                if key == self._slot_key(slot, int(env.pid)) or not isinstance(
                    other, PmpSlot
                ):
                    continue
                self.highest_seen = max(self.highest_seen, other.min_prop)
                if other.min_prop > prop_nr:
                    return None
                if other.acc_prop is not None and not is_bottom(other.value):
                    seen_slot = key[1]
                    current = best_per_slot.get(seen_slot)
                    if current is None or other.acc_prop > current[0]:
                        best_per_slot[seen_slot] = (other.acc_prop, other.value)
        self.adopt_cache = {s: v for s, (_b, v) in best_per_slot.items()}
        self.permissions_held = True
        best = best_per_slot.get(slot)
        return command if best is None else best[1]
