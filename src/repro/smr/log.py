"""A replicated log: one consensus instance per slot.

Each slot gets its own protocol instance with registers/messages namespaced
by slot index, so instances never interfere.  The leader (slot proposer)
carries its decision into the next slot — the paper's "default leader in
the next instance" — which keeps every slot on the protocol's fast path:
with Protected Memory Paxos each committed command costs two delays.

This is deliberately a *library* layer above the consensus protocols: it
feeds inputs in, observes decisions, and applies them to a state machine
callback in slot order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.chains import ChainRunner
from repro.consensus.messages import Decision
from repro.consensus.protected_memory_paxos import PmpSlot
from repro.mem.operations import WriteOp
from repro.mem.permissions import Permission, exclusive_grab_policy
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import BOTTOM, is_bottom

SMR_REGION = "smr"
SMR_TOPIC = "smr"

#: prepare-probe slot used by leader recovery: a slot index no data slot
#: ever uses, so the probe write cannot clobber a forgotten commit
_RECOVERY_PROBE_SLOT = -1


class Batch:
    """An ordered group of commands committed by one consensus instance.

    Batching amortises the per-slot cost: a single two-delay Protected
    Memory Paxos instance carries ``len(batch)`` client commands, which the
    state machine then applies in order.  An empty batch is a legal no-op
    filler (leader change, heartbeat).  A ``__slots__`` value object (one
    per committed slot, and batches travel inside decision messages);
    treat instances as immutable.
    """

    __slots__ = ("commands",)
    #: fields the crypto canonical encoder signs (see repro.crypto.signatures)
    _signable_fields_ = ("commands",)

    def __init__(self, commands: Tuple[Any, ...] = ()) -> None:
        self.commands = tuple(commands)

    def __eq__(self, other: Any) -> bool:
        if type(other) is not Batch:
            return NotImplemented
        return self.commands == other.commands

    def __hash__(self) -> int:
        return hash(self.commands)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({self.commands!r})"

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def __bool__(self) -> bool:
        # An empty batch is still a real log entry (a no-op), so Batch
        # truthiness follows "is a batch", not "has commands".
        return True


@dataclass
class SmrConfig:
    """Configuration for the replicated log."""

    initial_leader: int = 0
    leader_poll: float = 2.0
    retry_backoff: float = 4.0
    #: region/topic namespace; a multi-group service gives every consensus
    #: group its own namespace so groups sharing a kernel never interfere
    region: str = SMR_REGION
    topic: str = SMR_TOPIC


def smr_regions(
    n_processes: int, initial_leader: int = 0, region: str = SMR_REGION
) -> List[RegionSpec]:
    """One dynamic-permission region covering all slots of all instances.

    Pass a distinct *region* per consensus group to lay out several
    independent replicated logs in the same memories.
    """
    processes = range(n_processes)
    return [
        RegionSpec(
            region_id=region,
            prefix=(region,),
            initial_permission=Permission.exclusive_writer(initial_leader, processes),
            legal_change=exclusive_grab_policy(processes),
        )
    ]


@dataclass
class _SlotState:
    decided: bool = False
    value: Any = None


class ReplicatedLog:
    """A Protected-Memory-Paxos-backed replicated log endpoint.

    The log embeds a per-slot PMP-style proposer rather than instantiating
    the standalone protocol object, because leadership (and hence the
    permission skip) carries across slots: after deciding slot ``i`` the
    leader still holds exclusive write permission, so slot ``i+1`` is again
    a single two-delay write.
    """

    def __init__(
        self,
        env: ProcessEnv,
        apply_fn: Callable[[int, Any], None],
        config: Optional[SmrConfig] = None,
        leader_fn: Optional[Callable[[], int]] = None,
        recovered: bool = False,
    ) -> None:
        self.env = env
        self.apply_fn = apply_fn
        self.config = config or SmrConfig()
        self.region = self.config.region
        self.topic = self.config.topic
        #: catch-up traffic (pull requests, horizon acks) rides a sibling
        #: topic so it never competes with commit broadcasts
        self.sync_topic = self.config.topic + "-sync"
        #: who may propose; defaults to the kernel's Ω oracle, but a sharded
        #: service pins each group to its own statically assigned leader
        self._leader_fn = leader_fn if leader_fn is not None else (
            lambda: int(env.leader())
        )
        self.slots: Dict[int, _SlotState] = {}
        self.applied_upto = -1
        self.highest_seen = Ballot.zero()
        #: True once this process has grabbed permissions (or started as
        #: the initial leader), letting later slots skip the prepare phase.
        #: A *recovered* initial leader must NOT assume them: its previous
        #: incarnation (or a usurper it has forgotten) may have committed
        #: values it would silently overwrite — recovery always re-prepares.
        self.permissions_held = (
            int(env.pid) == self.config.initial_leader and not recovered
        )
        #: slot -> accepted value discovered at leadership takeover; while
        #: permissions are held nobody else can write, so the cache stays
        #: complete and proposing a cached slot must re-propose its value
        #: (otherwise a takeover could overwrite an earlier leader's commit)
        self.adopt_cache: Dict[int, Any] = {}
        self.commit_gate = env.new_gate(f"{self.region}-commit-p{int(env.pid)+1}")

    # ------------------------------------------------------------------
    def _slot_key(self, slot: int, pid: int) -> tuple:
        return (self.region, slot, pid)

    def _state(self, slot: int) -> _SlotState:
        return self.slots.setdefault(slot, _SlotState())

    def _commit(self, slot: int, value: Any) -> None:
        state = self._state(slot)
        if state.decided:
            return
        state.decided = True
        state.value = value
        while self._state(self.applied_upto + 1).decided:
            self.applied_upto += 1
            self.apply_fn(self.applied_upto, self.slots[self.applied_upto].value)
        self.env.signal(self.commit_gate)
        self.commit_gate.clear()

    # ------------------------------------------------------------------
    def listener(self) -> Generator:
        """Learn commits broadcast by the leader; pull any gap below them.

        A commit landing *above* ``applied_upto + 1`` means this replica
        missed broadcasts (a partition, a restart): it asks the leader to
        re-send the missing prefix, throttled to one pull per backoff.
        """
        env = self.env
        # One reusable receive effect: the kernel only reads its fields, so
        # the listener avoids an effect + sub-generator allocation per commit.
        recv_commit = env.recv_effect(topic=self.topic)
        last_pull = -self.config.retry_backoff
        while True:
            envelope = yield recv_commit
            if envelope is None:
                continue
            payload = envelope.payload
            if isinstance(payload, tuple) and len(payload) == 2:
                slot, decision = payload
                if isinstance(decision, Decision):
                    self._commit(slot, decision.value)
                    if slot > self.applied_upto + 1:
                        now = env.now
                        target = self._leader_fn()
                        if (
                            target != int(env.pid)
                            and now - last_pull >= self.config.retry_backoff
                        ):
                            last_pull = now
                            yield env.send(
                                target,
                                ("pull", self.applied_upto + 1),
                                topic=self.sync_topic,
                            )

    def sync_server(self) -> Generator:
        """Serve catch-up pulls: re-send the committed prefix on request.

        This is the state-transfer half of partition/crash recovery: a
        replica that missed commit broadcasts (or restarted empty) sends
        ``("pull", from_slot)`` on the sync topic; any up-to-date replica
        answers with the committed entries as ordinary ``(slot, Decision)``
        messages — the listener ingests them with zero new code paths —
        followed by an ``("upto", n)`` horizon marker on the sync topic.
        """
        env = self.env

        def is_pull(envelope) -> bool:
            payload = envelope.payload
            return isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "pull"

        recv_pull = env.recv_effect(topic=self.sync_topic, match=is_pull)
        while True:
            envelope = yield recv_pull
            if envelope is None:
                continue
            from_slot = max(0, envelope.payload[1])
            requester = envelope.src
            for slot in range(from_slot, self.applied_upto + 1):
                yield env.send(
                    requester,
                    (slot, Decision(value=self.slots[slot].value)),
                    topic=self.topic,
                )
            yield env.send(requester, ("upto", self.applied_upto), topic=self.sync_topic)

    def catchup(self) -> Generator:
        """Pull the committed prefix after a restart (follower recovery).

        Re-asks the current leader every backoff until a horizon ack shows
        this replica has applied everything the leader had committed; gaps
        that appear later are handled by the listener's pull path.
        """
        env = self.env

        def is_upto(envelope) -> bool:
            payload = envelope.payload
            return isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "upto"

        while True:
            target = self._leader_fn()
            if target == int(env.pid):
                return  # leaders recover by re-proposing (recover_leader)
            yield env.send(target, ("pull", self.applied_upto + 1), topic=self.sync_topic)
            reply = yield env.recv_effect(
                topic=self.sync_topic,
                match=is_upto,
                timeout=2 * self.config.retry_backoff,
            )
            if reply is not None and reply.payload[1] <= self.applied_upto:
                return

    def recover_leader(self) -> Generator:
        """Re-establish leadership after a restart and re-commit the past.

        Runs the full prepare (``recovered`` logs start with
        ``permissions_held`` False) — but probed at the reserved recovery
        slot, NOT at the next data slot: the prepare's ballot-publishing
        write lands on the probed slot's own key, and a restarted leader
        has forgotten which of its own keys hold committed values, so
        probing a real slot could destroy its previous incarnation's
        commit at every memory the prepare reaches.  The reserved slot can
        never hold data, the snapshot still covers the whole region, and
        ``adopt_cache`` then holds every slot any incarnation ever
        accepted; each propose re-commits those values in order —
        re-broadcasting their decisions, which is also what re-teaches a
        minority that was partitioned away while this leader was down.
        """
        env = self.env
        majority = env.majority_of_memories()
        while not self.permissions_held:
            prop_nr = self.highest_seen.next_for(env.pid)
            self.highest_seen = prop_nr
            adopted = yield from self._prepare(
                _RECOVERY_PROBE_SLOT, prop_nr, majority, Batch()
            )
            if adopted is None:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))
        while self.adopt_cache and max(self.adopt_cache) > self.applied_upto:
            yield from self.propose(self.applied_upto + 1, Batch())

    # ------------------------------------------------------------------
    def propose(self, slot: int, command: Any) -> Generator:
        """Drive consensus for *slot*; returns the decided command.

        Retries (with permission re-acquisition) until the slot commits;
        returns the committed value, which may be another leader's command
        if this process lost leadership.
        """
        env = self.env
        state = self._state(slot)
        while not state.decided:
            if self._leader_fn() != int(env.pid):
                yield env.gate_wait(self.commit_gate, timeout=self.config.leader_poll)
                continue
            yield from self._attempt(slot, command)
            if not state.decided:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))
        return state.value

    def propose_batch(self, slot: int, commands: Iterable[Any]) -> Generator:
        """Commit one :class:`Batch` of commands in *slot*; returns the
        decided value (the batch, or another leader's entry on takeover)."""
        decided = yield from self.propose(slot, Batch(tuple(commands)))
        return decided

    def _attempt(self, slot: int, command: Any) -> Generator:
        env = self.env
        majority = env.majority_of_memories()
        prop_nr = self.highest_seen.next_for(env.pid)
        self.highest_seen = prop_nr

        if self.permissions_held:
            my_value = self.adopt_cache.get(slot, command)
        else:
            my_value = yield from self._prepare(slot, prop_nr, majority, command)
            if my_value is None:
                return

        # Phase 2: one slot write per memory, all leaving at this instant,
        # leader resuming on a majority — two delays either way.
        slot_value = PmpSlot(min_prop=prop_nr, acc_prop=prop_nr, value=my_value)
        key = self._slot_key(slot, int(env.pid))
        if env.strict_outstanding:
            # Model-conformance mode: the one-outstanding rule is enforced
            # per task per memory, and the proposer task is long-lived — a
            # same-instant straggler write from slot N would still be in
            # flight when slot N+1 invokes on that memory.  Run each write
            # in its own throwaway chain task, as the takeover path does.
            chains = ChainRunner(env, f"{self.region}2-{slot}")

            def phase2(mid):
                result = yield from env.write(mid, self.region, key, slot_value)
                return result.ok

            yield from chains.launch(phase2)
            yield from chains.wait_for(majority)
            failed = any(not ok for ok in chains.results.values())
        else:
            # Hot path: issue the writes directly from the proposer task —
            # no per-memory task spawn (a single write has no sequence to
            # chain).
            write_op = WriteOp(region=self.region, key=key, value=slot_value)
            futures = yield from env.invoke_on_all(lambda mid: write_op)
            yield env.wait(futures, count=majority)
            failed = any(f.done and not f.ok for f in futures)
        if failed:
            self.permissions_held = False  # somebody grabbed the region
            return
        self._commit(slot, my_value)
        yield from env.broadcast(
            (slot, Decision(value=my_value)), topic=self.topic, include_self=False
        )

    def _prepare(self, slot: int, prop_nr: Ballot, majority: int, command: Any) -> Generator:
        env = self.env
        chains = ChainRunner(env, f"{self.region}1-{slot}")
        grab = Permission.exclusive_writer(int(env.pid), range(env.n_processes))
        probe = PmpSlot(min_prop=prop_nr, acc_prop=None, value=BOTTOM)

        def phase1(mid):
            yield from env.change_permission(mid, self.region, grab)
            write = yield from env.write(
                mid, self.region, self._slot_key(slot, int(env.pid)), probe
            )
            if not write.ok:
                return (False, None)
            # Takeover reads the *whole* region: every slot any previous
            # leader may have written, not just the one being proposed.
            snap = yield from env.snapshot(mid, self.region, (self.region,))
            return (True, snap.value if snap.ok else None)

        yield from chains.launch(phase1)
        yield from chains.wait_for(majority)
        results = list(chains.results.values())
        if any(not ok for ok, _ in results):
            return None
        best_per_slot: Dict[int, tuple] = {}
        for ok, view in results:
            if view is None:
                return None
            for key, other in view.items():
                if key == self._slot_key(slot, int(env.pid)) or not isinstance(
                    other, PmpSlot
                ):
                    continue
                self.highest_seen = max(self.highest_seen, other.min_prop)
                if other.min_prop > prop_nr:
                    return None
                if other.acc_prop is not None and not is_bottom(other.value):
                    seen_slot = key[1]
                    current = best_per_slot.get(seen_slot)
                    if current is None or other.acc_prop > current[0]:
                        best_per_slot[seen_slot] = (other.acc_prop, other.value)
        self.adopt_cache = {s: v for s, (_b, v) in best_per_slot.items()}
        self.permissions_held = True
        best = best_per_slot.get(slot)
        return command if best is None else best[1]
