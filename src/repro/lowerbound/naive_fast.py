"""A strawman 2-deciding shared-memory consensus attempt.

The algorithm from the Theorem 6.1 proof sketch: a proposer issues its
write (to its own register) and its reads (of everybody else's registers)
*concurrently* — it cannot wait between them and still finish in two delays
— and decides its own value if all reads came back empty, claiming it ran
uncontended.  In a solo execution this is correct and takes exactly two
delays; Theorem 6.1 says no such algorithm can be safe, and
:mod:`repro.lowerbound.theorem61` exhibits the violating schedule.

Each process's register lives on its own memory (``n <= m``) so the write
and the reads target disjoint memories, as the proof's disjoint read/write
object sets require.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.consensus.base import ConsensusProtocol
from repro.errors import ConfigurationError
from repro.mem.operations import SnapshotOp, WriteOp
from repro.mem.permissions import Permission
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv

REGION = "lb"


class NaiveFastConsensus(ConsensusProtocol):
    """Write-and-read-in-parallel 'consensus' (intentionally unsafe)."""

    name = "naive-fast"

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        if n_memories < n_processes:
            raise ConfigurationError("naive-fast needs one memory per process")
        return [
            RegionSpec(
                region_id=REGION,
                prefix=(REGION,),
                initial_permission=Permission.open(range(n_processes)),
            )
        ]

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("naive-fast", self._propose(env, value))]

    def _propose(self, env: ProcessEnv, value: Any) -> Generator:
        me = int(env.pid)
        futures = []
        write_future = yield env.invoke(
            me, WriteOp(region=REGION, key=(REGION, me), value=(me, value))
        )
        futures.append(write_future)
        for mid in env.memories:
            if int(mid) == me:
                continue
            future = yield env.invoke(mid, SnapshotOp(region=REGION, prefix=(REGION,)))
            futures.append(future)
        yield env.wait(futures, count=len(futures))

        seen = [(me, value)]
        for future in futures[1:]:
            if future.ok:
                seen.extend(v for v in future.value.values() if isinstance(v, tuple))
        if len(seen) == 1:
            env.decide(value)  # "uncontended": nobody else had written
        else:
            winner = min(seen)  # deterministic rule for the contended case
            env.decide(winner[1])
        return seen
