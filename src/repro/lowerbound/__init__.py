"""Executable rendition of Theorem 6.1 (Section 6).

The theorem: in shared memory with *static* permissions and no messages, no
consensus algorithm can decide in two delays.  The proof builds two
indistinguishable executions; this package builds them literally, using the
programmable-adversary latency model:

* :mod:`repro.lowerbound.naive_fast` — a strawman algorithm that *does*
  decide in two delays by issuing its write and all its reads concurrently;
* :mod:`repro.lowerbound.theorem61` — the adversary: delay the fast
  decider's writes past a second proposer's entire solo run.  The strawman
  violates agreement on cue; Disk Paxos survives (its confirming read costs
  the extra delays); Protected Memory Paxos survives because the *dynamic*
  permission grab naks the delayed write — which is exactly the paper's
  point about why RDMA's dynamic permissions matter.
"""

from repro.lowerbound.naive_fast import NaiveFastConsensus
from repro.lowerbound.theorem61 import (
    AttackReport,
    attack_disk_paxos,
    attack_naive_fast,
    attack_protected_memory_paxos,
    solo_fast_delay,
)

__all__ = [
    "AttackReport",
    "NaiveFastConsensus",
    "attack_disk_paxos",
    "attack_naive_fast",
    "attack_protected_memory_paxos",
    "solo_fast_delay",
]
