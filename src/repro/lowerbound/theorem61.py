"""The Theorem 6.1 adversary.

The proof's schedule, concretely: let ``p0`` be a 2-deciding proposer.  In
execution ``E'`` the adversary delivers all of p0's *reads* promptly but
holds its *writes* in flight; a second proposer ``p1`` starts after p0's
reads returned, runs solo to a decision, and only then do p0's writes land.
p0's responses are identical to its solo execution ``E``, so it decides the
same value it would have decided alone — violating agreement if (like the
strawman) it had no way to detect the interleaving.

Why the paper's algorithms escape:

* **Disk Paxos** is not 2-deciding: its decision is sequenced *after* a
  confirming read that necessarily observes p1 (the delayed write must land
  before the read is issued), so it aborts and retries — safety at the cost
  of two extra delays.
* **Protected Memory Paxos** keeps two delays and is still safe because
  the permission state is *dynamic*: p1's takeover revokes p0's write
  permission, so p0's delayed write returns ``nak`` and p0 knows not to
  decide — the write itself carries the contention signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.consensus.disk_paxos import DiskPaxos, DiskPaxosConfig
from repro.consensus.omega import leader_schedule
from repro.consensus.protected_memory_paxos import PmpConfig, ProtectedMemoryPaxos
from repro.core.cluster import Cluster, ClusterConfig
from repro.lowerbound.naive_fast import NaiveFastConsensus
from repro.sim.latency import AdversarialLatency


@dataclass
class AttackReport:
    """Outcome of one adversarial schedule."""

    algorithm: str
    agreement_violated: bool
    violations: List[str]
    decisions: Dict[int, Any]
    fast_path_write_naked: bool = False
    final_time: float = 0.0
    detail: str = ""


def _delay_writes_of_p0(write_delay: float):
    """Latency override: p0's memory *requests* crawl, everything else is
    nominal.  (Delaying requests holds the write in flight; p0's reads are
    to different memories in the strawman, or delayed symmetrically for the
    real protocols, which only stretches their solo prefix.)"""

    def override(kind: str, actor, peer, now: float) -> Optional[float]:
        if kind == "mem_req" and int(actor) == 0:
            return write_delay
        return None

    return override


def _delay_only_own_memory(write_delay: float):
    """Strawman-specific override: delay p0's ops on its *own* memory (its
    write target); reads of other memories stay fast — the exact read/write
    split of the proof."""

    def override(kind: str, actor, peer, now: float) -> Optional[float]:
        if kind == "mem_req" and int(actor) == 0 and int(peer) == 0:
            return write_delay
        return None

    return override


def solo_fast_delay(n_memories: int = 2) -> float:
    """Execution E: the strawman running alone decides in two delays."""
    cluster = Cluster(
        NaiveFastConsensus(),
        ClusterConfig(n_processes=1, n_memories=n_memories, deadline=100),
    )
    result = cluster.run(["solo"])
    return result.earliest_decision_delay


def attack_naive_fast(write_delay: float = 200.0) -> AttackReport:
    """Execution E': the strawman violates agreement on cue."""
    config = ClusterConfig(
        n_processes=2,
        n_memories=2,
        latency=AdversarialLatency(_delay_only_own_memory(write_delay)),
        strict_safety=False,  # we *want* to observe the violation
        deadline=write_delay * 3,
    )
    cluster = Cluster(NaiveFastConsensus(), config)
    cluster.run(["value-A", "value-B"])
    metrics = cluster.kernel.metrics
    decisions = {int(p): r.value for p, r in metrics.decisions.items()}
    return AttackReport(
        algorithm="naive-fast (strawman)",
        agreement_violated=bool(metrics.violations),
        violations=list(metrics.violations),
        decisions=decisions,
        final_time=cluster.kernel.now,
        detail="p0's solo-indistinguishable responses made it decide its own value",
    )


def attack_protected_memory_paxos(write_delay: float = 200.0) -> AttackReport:
    """Same adversary against PMP: the delayed write NAKs — no violation."""
    config = ClusterConfig(
        n_processes=2,
        n_memories=3,
        latency=AdversarialLatency(_delay_writes_of_p0(write_delay)),
        strict_safety=True,  # any violation raises: the attack must fail
        omega=leader_schedule([(0.0, 0), (1.0, 1)]),
        deadline=write_delay * 5,
    )
    cluster = Cluster(ProtectedMemoryPaxos(PmpConfig()), config)
    cluster.run(["value-A", "value-B"])
    # Run on past the decisions so p0's held-back write finally lands and
    # we can observe the permission system nak it.
    cluster.kernel.run(until=write_delay * 2)
    metrics = cluster.kernel.metrics
    naked = any(memory.counts.naks > 0 for memory in cluster.kernel.memories)
    return AttackReport(
        algorithm="protected-memory-paxos",
        agreement_violated=bool(metrics.violations),
        violations=list(metrics.violations),
        decisions={int(p): r.value for p, r in metrics.decisions.items()},
        fast_path_write_naked=naked,
        final_time=cluster.kernel.now,
        detail="p1's permission grab made p0's in-flight write nak",
    )


def attack_disk_paxos(write_delay: float = 200.0) -> AttackReport:
    """Same adversary against Disk Paxos: the confirming read saves it."""
    config = ClusterConfig(
        n_processes=2,
        n_memories=3,
        latency=AdversarialLatency(_delay_writes_of_p0(write_delay)),
        strict_safety=True,
        omega=leader_schedule([(0.0, 0), (1.0, 1)]),
        deadline=write_delay * 5,
    )
    cluster = Cluster(DiskPaxos(DiskPaxosConfig()), config)
    result = cluster.run(["value-A", "value-B"])
    metrics = cluster.kernel.metrics
    return AttackReport(
        algorithm="disk-paxos",
        agreement_violated=bool(metrics.violations),
        violations=list(metrics.violations),
        decisions={int(p): r.value for p, r in metrics.decisions.items()},
        final_time=cluster.kernel.now,
        detail="p0's read-back observed p1's higher ballot and restarted",
    )
