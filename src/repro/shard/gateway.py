"""Cross-cell client access: gateways, remote clients, and cell routing.

Under the parallel driver (:mod:`repro.sim.parallel`) a service lives
whole inside one cell — replicas, memories, consensus traffic and all —
and clients live in *other* cells.  This module supplies the two halves
of that split plus the glue:

* a **gateway** task on each service cell: receives fabric-posted
  requests on :data:`GATEWAY_TOPIC`, deduplicates them (remote clients
  resend on timeout, and the frontend's in-flight table refuses
  duplicate identities loudly), proxies each through the service's own
  :class:`~repro.shard.router.ShardFrontend`, and posts the result back
  to the requesting cell;
* a **remote client**: the closed-loop YCSB client shape of
  :mod:`repro.shard.workload`, but speaking the fabric instead of a
  local frontend — per-client reply topics, timeout-driven resend,
  latencies recorded in its own cell;
* a **cell router**: a consistent-hash ring over cell ids (reusing the
  shard partitioner's machinery) mapping each key to the service cell
  that owns it, with :func:`cell_weights` exposing the per-cell arc
  share for the worker-assignment rebalance hook.

All fabric payloads are plain tuples of primitives, so fork-mode workers
can pickle them across the coordinator pipes without ceremony.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.shard.partitioner import HashRing, arc_fractions
from repro.smr.kv import KVCommand

#: topic the gateway task listens on in a service cell
GATEWAY_TOPIC = "gw-req"


def gateway_reply_topic(client_id: int) -> str:
    """Per-client reply topic in the client's own cell."""
    return f"gw-res-c{client_id}"


# ----------------------------------------------------------------------
# cell routing
# ----------------------------------------------------------------------
class CellRouter:
    """Key -> owning service cell, via a consistent ring over cell ids.

    The ring's "shards" are service-cell ids; vnode placement makes the
    split deliberately uneven (exactly like real shard rings), which is
    what the worker assignment's arc weighting exists to absorb.
    """

    def __init__(self, service_cells: List[int], vnodes: int = 64) -> None:
        self.ring = HashRing(0, service_cells, vnodes, salt="cell|")
        self._cache: Dict[str, int] = {}

    def cell_for(self, key: str) -> int:
        cell = self._cache.get(key)
        if cell is None:
            cell = self.ring.shard_for(key)
            if len(self._cache) < 4096:
                self._cache[key] = cell
        return cell

    def weights(self, shard_counts: Optional[Dict[int, int]] = None) -> Dict[int, float]:
        """Per-cell scheduling weight: ring arc share, optionally scaled
        by the cell's live shard count (an elastic split inside a cell
        grows its simulation work without moving any ring arc)."""
        arcs = arc_fractions(self.ring)
        if shard_counts is None:
            return arcs
        return {
            cell: arc * max(1, shard_counts.get(cell, 1))
            for cell, arc in arcs.items()
        }


# ----------------------------------------------------------------------
# the service-cell side
# ----------------------------------------------------------------------
def spawn_gateway(service, port, pid: int = 0) -> Dict[str, Any]:
    """Install a gateway task for *service* on replica *pid*.

    Requests arrive as ``("req", src_cell, src_pid, client_id,
    request_id, op, key, value)`` fabric envelopes.  At-most-once:
    completed requests are remembered and re-answered from the done
    table (a resend whose original reply was merely slow in the fabric),
    in-flight ones are dropped (the original proxy will answer; handing
    a duplicate identity to the frontend would raise).  Each fresh
    request gets its own proxy task so slow shards never head-of-line
    block the intake loop.

    Returns the gateway's state dict (diagnostics and tests).
    """
    env = service.cluster.env_for(pid)
    state: Dict[str, Any] = {"done": {}, "in_flight": set(), "requests": 0, "replies": 0}

    def proxy(src_cell, src_pid, client_id, request_id, op, key, value):
        command = KVCommand(op, key, value=value, client=client_id, request_id=request_id)
        frontend = service.frontends[pid]
        if op == "get":
            result = yield from frontend.get(command)
        else:
            result = yield from frontend.submit(command)
        identity = (client_id, request_id)
        state["done"][identity] = result
        state["in_flight"].discard(identity)
        state["replies"] += 1
        port.post(
            src_cell, src_pid, gateway_reply_topic(client_id),
            ("res", client_id, request_id, result),
        )

    def gateway():
        recv_request = env.recv_effect(topic=GATEWAY_TOPIC)
        while True:
            envelope = yield recv_request
            if envelope is None:
                continue
            _tag, src_cell, src_pid, client_id, request_id, op, key, value = (
                envelope.payload
            )
            state["requests"] += 1
            identity = (client_id, request_id)
            if identity in state["done"]:
                port.post(
                    src_cell, src_pid, gateway_reply_topic(client_id),
                    ("res", client_id, request_id, state["done"][identity]),
                )
                continue
            if identity in state["in_flight"]:
                continue  # the original proxy will reply
            state["in_flight"].add(identity)
            yield env.spawn(
                f"gw-c{client_id}-r{request_id}",
                proxy(src_cell, src_pid, client_id, request_id, op, key, value),
            )

    service.cluster.spawn(pid, f"gateway-p{pid + 1}", gateway())
    return state


def kv_state_digest(service) -> str:
    """Deterministic digest of the service's final committed KV state
    (per-shard leader snapshots, sorted) — what the cross-worker
    determinism contract compares beyond trace hashes."""
    import hashlib

    digest = hashlib.sha256()
    for shard in sorted(service.shards):
        snapshot = service.snapshot(shard)
        for key in sorted(snapshot):
            digest.update(f"{shard}|{key}|{snapshot[key]!r};".encode())
    return digest.hexdigest()


def service_cell_factory(
    cell_id: int,
    make_service: Callable[[], Any],
    gateway_pid: int = 0,
    label: Optional[str] = None,
):
    """Factory for a cell hosting one whole service behind a gateway.

    ``make_service()`` runs inside the owning worker (fork mode builds
    it in the child).  The cell's goal is replica convergence — true
    before traffic starts and after it fully drains, so global
    termination is gated by the client cells' completion goals.
    """
    from repro.sim.parallel import Cell

    def factory(port):
        service = make_service()
        service.cluster.install_faults()
        spawn_gateway(service, port, pid=gateway_pid)
        return Cell(
            cell_id,
            service.kernel,
            goal=service._converged,
            label=label or f"svc-{cell_id}",
            summarize=lambda: {
                "kv_digest": kv_state_digest(service),
                "shards": sorted(service.shards),
                "commits": dict(service.kernel.metrics.shard_commits),
            },
        )

    return factory


def client_cell_factory(
    cell_id: int,
    clients_fn: Callable[[], List["RemoteClient"]],
    n_processes: int = 4,
    seed: int = 0,
    label: Optional[str] = None,
):
    """Factory for a bare cell hosting remote closed-loop clients; the
    goal is every client having recorded all its operations."""
    from repro.sim.parallel import Cell

    def factory(port):
        clients = clients_fn()
        total = sum(client.n_ops for client in clients)
        kernel, recorder = build_client_cell(
            port, cell_id, clients, n_processes=n_processes, seed=seed
        )
        return Cell(
            cell_id,
            kernel,
            goal=lambda: recorder.completed >= total,
            label=label or f"clients-{cell_id}",
            summarize=lambda: {
                "completed": recorder.completed,
                "resends": recorder.resends,
                "mean_latency": (
                    sum(recorder.latencies) / len(recorder.latencies)
                    if recorder.latencies else 0.0
                ),
            },
        )

    return factory


# ----------------------------------------------------------------------
# the client-cell side
# ----------------------------------------------------------------------
class RemoteRecorder:
    """Client-cell completion accounting (the recorder shape the local
    workload engine uses, minus shard attribution — the client cell does
    not know the destination service's internal ring)."""

    def __init__(self) -> None:
        self.completed = 0
        self.latencies: List[float] = []
        self.resends = 0

    def record(self, latency: float) -> None:
        self.completed += 1
        self.latencies.append(latency)


class RemoteClient:
    """One closed-loop client driving a remote service through the fabric.

    Mirrors :class:`~repro.shard.workload.ClosedLoopClient`: draw an
    operation from the mix, send, wait for the matching reply, repeat —
    with a resend timer because the fabric (like any network) gives no
    delivery callback.  Op/key draws come from the client cell's own
    kernel RNG, so the request stream is a pure function of the cell
    seed: identical for every worker count.
    """

    def __init__(
        self,
        client_id: int,
        n_ops: int,
        keys,
        mix,
        route: Callable[[str], int],
        pid: int = 0,
        gateway_pid: int = 0,
        retry_timeout: float = 400.0,
    ) -> None:
        self.client_id = int(client_id)
        self.n_ops = int(n_ops)
        self.keys = keys
        self.mix = mix
        self.route = route
        self.pid = int(pid)
        self.gateway_pid = int(gateway_pid)
        self.retry_timeout = float(retry_timeout)

    def task(self, env, port, recorder: RemoteRecorder):
        rng = env.rng
        topic = gateway_reply_topic(self.client_id)
        for request_id in range(self.n_ops):
            op = self.mix.next_op(rng)
            key = self.keys.next_key(rng)
            value = f"c{self.client_id}-r{request_id}" if op == "put" else None
            dst_cell = self.route(key)
            request = (
                "req", port.cell_id, int(env.pid), self.client_id,
                request_id, op, key, value,
            )
            started = env.now
            port.post(dst_cell, self.gateway_pid, GATEWAY_TOPIC, request)
            while True:
                envelope = yield from env.recv(
                    topic=topic,
                    match=lambda e, rid=request_id: e.payload[2] == rid,
                    timeout=self.retry_timeout,
                )
                if envelope is not None:
                    break
                recorder.resends += 1
                port.post(dst_cell, self.gateway_pid, GATEWAY_TOPIC, request)
            recorder.record(env.now - started)


def build_client_cell(
    port,
    cell_id: int,
    clients: List[RemoteClient],
    n_processes: int = 4,
    seed: int = 0,
) -> Tuple[Any, RemoteRecorder]:
    """A bare kernel hosting *clients* — no memories, no service.

    Returns ``(kernel, recorder)``; wrap in a
    :class:`~repro.sim.parallel.Cell` with goal "every client finished".
    """
    from repro.mem.layout import MemoryLayout
    from repro.sim.environment import ProcessEnv
    from repro.sim.kernel import Kernel, SimConfig
    from repro.types import ProcessId

    kernel = Kernel(
        SimConfig(n_processes=n_processes, n_memories=0, seed=seed),
        MemoryLayout([]),
    )
    envs = {p: ProcessEnv(kernel, ProcessId(p)) for p in range(n_processes)}
    recorder = RemoteRecorder()
    for index, client in enumerate(clients):
        pid = client.pid if client.pid is not None else index % n_processes
        kernel.spawn(
            pid % n_processes,
            f"rc-{client.client_id}",
            client.task(envs[pid % n_processes], port, recorder),
        )
    return kernel, recorder
