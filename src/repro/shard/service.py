"""The sharded replicated KV service: N consensus groups, one kernel.

This is the scaling layer the paper's systems descendants (Mu, DARE,
APUS) build above a single replicated log.  State is partitioned across
``n_shards`` independent SMR groups by consistent hashing; every process
hosts one replica of every group, each group pins its own leader
(``shard % n_processes``) so proposal work spreads across processes, and
each leader drains its request queue into :class:`~repro.smr.log.Batch`
entries so a single two-delay Protected Memory Paxos instance commits up
to ``batch_max`` client commands.

Crash-tolerant shards run :class:`~repro.smr.log.ReplicatedLog`
(Protected Memory Paxos per slot).  Shards listed in
``ShardConfig.bft_shards`` instead run Fast & Robust per slot — the
Byzantine backend of :mod:`repro.smr.byzantine_log` — with the same
batching and routing on top; their slot regions are declared up front,
so each BFT shard carries a ``bft_max_slots`` cap.

The service owns assembly (regions for every group union-ed into one
:class:`~repro.core.cluster.MultiGroupCluster`), the per-process
:class:`~repro.shard.router.ShardFrontend`, and the workload run loop
that drives client tasks to completion and aggregates per-shard metrics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.broadcast.nonequivocating import neb_regions
from repro.consensus.cheap_quorum import CheapQuorumConfig, cq_regions
from repro.consensus.fast_robust import FastRobust, FastRobustConfig
from repro.core.cluster import ClusterConfig, MultiGroupCluster
from repro.errors import ConfigurationError
from repro.mem.regions import RegionSpec
from repro.metrics.workload import ShardStats, WorkloadReport
from repro.shard.partitioner import ConsistentHashPartitioner
from repro.shard.router import (
    READ_CONSENSUS,
    READ_MODES,
    ReadPaths,
    ShardFrontend,
    read_reply_topic,
    read_topic,
    request_topic,
)
from repro.sim.latency import LatencyModel, NominalLatency
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import Batch, ReplicatedLog, SmrConfig, smr_regions, smr_rx_regions


def shard_region(shard: int) -> str:
    """Region/topic namespace of one crash-tolerant shard's log."""
    return f"smr-g{shard}"


@dataclass
class ShardConfig:
    """Everything needed to stand up one sharded replicated KV service."""

    n_shards: int = 4
    n_processes: int = 3
    n_memories: int = 3
    #: max commands one consensus instance carries (1 = seed behaviour)
    batch_max: int = 8
    #: virtual nodes per shard on the consistent-hash ring
    vnodes: int = 64
    seed: int = 0
    latency: LatencyModel = field(default_factory=NominalLatency)
    deadline: float = 50_000.0
    trace: bool = False
    #: client resend interval; dedup makes resends idempotent
    retry_timeout: float = 200.0
    #: how often an idle shard leader re-checks its request queue
    idle_poll: float = 2.0
    #: shard ids served by the Byzantine Fast & Robust backend
    bft_shards: Tuple[int, ...] = ()
    #: per-BFT-shard slot cap (slot regions are declared up front)
    bft_max_slots: int = 8
    bft_leader_timeout: float = 50.0
    #: fault timeline (FaultScript) or static plan (FaultPlan) to install;
    #: process crash/recover events target shards through their leader —
    #: one shard can churn while the untouched shards keep serving
    faults: Optional[object] = None
    #: default routing of client ``get``s: ``consensus`` (reads are
    #: commands — seed behaviour), ``leader`` (permission-fenced reads
    #: from the leader's applied state), ``quorum`` (one-sided majority
    #: reads, no leader involvement) or ``local`` (session-consistent
    #: reads from the submitting process's own replica).  Anything but
    #: ``consensus`` stands up the read plane — read-index regions,
    #: watermark publication, per-shard read servers and reply pumps —
    #: and lets clients override the mode per request.
    read_mode: str = READ_CONSENSUS
    #: one-sided quorum read attempts before falling back to consensus
    read_attempts: int = 3
    #: doorbell batching in every group's log (see ``SmrConfig.batch_chains``):
    #: fused phase-2 slot+watermark chains, single-completion fan-outs and
    #: 1-round fused quorum reads.  One flag for the whole service — fused
    #: writers require the batched readers' confirmation rule, so writers
    #: and readers must flip together.
    batch_chains: bool = True
    #: declarative SLOs (:class:`repro.obs.slo.Objective`) evaluated on the
    #: obs runtime's virtual-time ticker.  Only active when an obs runtime
    #: is attached before ``run_workload`` — without one the service keeps
    #: its zero-observability cost and the objectives are inert.
    slo: Tuple[Any, ...] = ()
    #: burn-rate evaluation period (virtual units) when ``slo`` arms the
    #: sampling ticker itself
    slo_interval: float = 25.0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError("need at least one shard")
        if self.batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1")
        bad = [g for g in self.bft_shards if not 0 <= g < self.n_shards]
        if bad:
            raise ConfigurationError(f"bft_shards out of range: {bad}")
        if self.read_mode not in READ_MODES:
            raise ConfigurationError(
                f"unknown read_mode {self.read_mode!r}; pick one of {READ_MODES}"
            )
        if self.read_mode != READ_CONSENSUS and self.bft_shards:
            raise ConfigurationError(
                "non-consensus read paths are crash-tolerant only: a "
                "Byzantine shard's fence/watermark registers could be lied "
                "about by its leader — route BFT reads through consensus"
            )
        if self.read_attempts < 1:
            raise ConfigurationError("read_attempts must be >= 1")
        if self.slo_interval <= 0:
            raise ConfigurationError("slo_interval must be > 0")
        for objective in self.slo:
            shard = getattr(objective, "shard", None)
            if shard is not None and not 0 <= shard < self.n_shards:
                raise ConfigurationError(
                    f"objective {objective.name!r} scopes shard {shard}, "
                    f"but the service has {self.n_shards}"
                )

    @property
    def read_paths_enabled(self) -> bool:
        """True when the non-consensus read plane is stood up."""
        return self.read_mode != READ_CONSENSUS


def _is_migration_client(client: Any) -> bool:
    """Migration identities are ``("mig", epoch, source)`` tuples."""
    return isinstance(client, tuple) and bool(client) and client[0] == "mig"


def _migration_applies(machine: KVStateMachine) -> Tuple[int, int]:
    """``(distinct_tokens, total_applies)`` of migration traffic on
    *machine* — what workload accounting subtracts so reports count
    client commands, not the transfers an elastic epoch streamed."""
    tokens = sum(1 for token in machine.seen if _is_migration_client(token[0]))
    applies = sum(
        1
        for _slot, command, _result in machine.applied
        if isinstance(command, KVCommand) and _is_migration_client(command.client)
    )
    return (tokens, applies)


class _Recorder:
    """Collects per-request completions as client tasks finish them.

    Stats entries are created lazily: an elastic run can add shards while
    the workload is in flight, and completions are attributed to the key's
    owner in the routing ring at completion time.
    """

    def __init__(self, service: "ShardedKV") -> None:
        self._service = service
        self.completed = 0
        self.stats: Dict[int, ShardStats] = {
            g: ShardStats(shard=g) for g in service.shards
        }

    def record(self, command: KVCommand, result: Any, latency: float) -> None:
        shard = self._service.partitioner.shard_for(command.key)
        stats = self.stats.get(shard)
        if stats is None:
            stats = self.stats[shard] = ShardStats(shard=shard)
        stats.latencies.append(latency)
        # achieved read/write mix, counted per COMPLETION: what the shard
        # actually served, not what the workload intended to send
        if command.op == "get":
            kind = "read"
            stats.reads += 1
            stats.read_latencies.append(latency)
        else:
            kind = "write"
            stats.writes += 1
        now = self._service.kernel.now
        self._service.kernel.metrics.record_shard_latency(shard, now, latency, kind)
        self.completed += 1


class ShardedKV:
    """A multi-group replicated KV service inside one simulation kernel."""

    def __init__(self, config: Optional[ShardConfig] = None) -> None:
        self.config = cfg = config or ShardConfig()
        self.partitioner = ConsistentHashPartitioner(cfg.n_shards, vnodes=cfg.vnodes)
        #: active shard ids, in id order.  Static here; the elastic
        #: subclass rewrites it (and the leader map) at epoch activation.
        self.shards: List[int] = list(range(cfg.n_shards))
        self._leader_map: Dict[int, int] = self._initial_leaders()

        self.cluster = self._make_cluster(self._boot_regions())
        self.kernel = self.cluster.kernel
        # Per-shard fault targeting: when a process crashes its led shards
        # stall (queued commands die with it) and when it recovers, fresh
        # replica state is rebuilt per shard — crash-tolerant shards only;
        # a BFT replica that crashes stays down (Fast & Robust has no
        # recovery protocol, and its slot regions are single-use).
        self.kernel.failures.on_crash(self._on_process_crash)
        self.kernel.failures.on_recover(self._respawn_process)
        #: processes that crashed at least once — their (unrecoverable) BFT
        #: replicas are exempt from the convergence goal
        self._ever_crashed: set = set()

        #: leader-side pending commands, one queue per shard
        self.queues: Dict[int, Deque[KVCommand]] = {g: deque() for g in self.shards}
        #: enqueue-time trace context per command identity — how a client
        #: request's causal chain crosses the leader's queue handoff (the
        #: draining proposer parents its batch span under the first
        #: command's context).  Only populated while an observability
        #: runtime is attached; popped at drain time.
        self._cmd_ctx: Dict[Tuple[Any, Any], Any] = {}
        self.machines: Dict[Tuple[int, int], KVStateMachine] = {}
        self.logs: Dict[Tuple[int, int], ReplicatedLog] = {}
        self.frontends: Dict[int, ShardFrontend] = {}
        self._gates: Dict[int, Any] = {}
        #: leader-side pending fenced reads (and their wake gates), one
        #: queue per shard — populated only when the read plane is up
        self._read_queues: Dict[int, Deque[Tuple[KVCommand, int]]] = {}
        self._read_gates: Dict[int, Any] = {}
        self._used_client_ids: set = set()
        #: task handles per (pid, shard) replica / per (pid, shard) leader
        #: role, so reconfiguration can retire a group or depose a leader
        self._group_tasks: Dict[Tuple[int, int], List[Any]] = {}
        self._lead_tasks: Dict[Tuple[int, int], List[Any]] = {}

        for pid in range(cfg.n_processes):
            self.frontends[pid] = self._make_frontend(pid)
            if cfg.read_paths_enabled:
                self._spawn_read_reply_pump(pid)
        #: per-shard (leader env, pending gate), resolved once per epoch —
        #: the submit path runs per client request and skips env_for lookups
        self._leader_envs: Dict[int, Any] = {}
        for g in self.shards:
            leader_env = self.cluster.env_for(self.leader_of(g))
            self._leader_envs[g] = leader_env
            self._install_shard_control(g, leader_env)
        self._spawn_replicas()

    # ------------------------------------------------------------------
    # assembly hooks (overridden by the elastic service)
    # ------------------------------------------------------------------
    def _initial_leaders(self) -> Dict[int, int]:
        """Boot leader map: groups round-robin across processes."""
        return {g: g % self.config.n_processes for g in self.shards}

    def _boot_regions(self) -> List[RegionSpec]:
        """The memory regions every boot shard's backend needs."""
        cfg = self.config
        regions: List[RegionSpec] = []
        for g in self.shards:
            leader = self.leader_of(g)
            if g in cfg.bft_shards:
                for slot in range(cfg.bft_max_slots):
                    regions.extend(
                        cq_regions(cfg.n_processes, leader, namespace=self._cq_ns(g, slot))
                    )
                    regions.extend(
                        neb_regions(range(cfg.n_processes), namespace=self._neb_ns(g, slot))
                    )
            else:
                regions.extend(
                    smr_regions(cfg.n_processes, leader, region=shard_region(g))
                )
                if cfg.read_paths_enabled:
                    regions.extend(
                        smr_rx_regions(cfg.n_processes, region=shard_region(g))
                    )
        return regions

    #: cluster runner class; the elastic service swaps in ElasticCluster
    _cluster_class = MultiGroupCluster

    def _make_frontend(self, pid: int) -> ShardFrontend:
        """One process's request router (boot and crash-recovery rebuilds)."""
        cfg = self.config
        read_paths = None
        if cfg.read_paths_enabled:
            read_paths = ReadPaths(
                default_mode=cfg.read_mode,
                leader_read_submit=self._submit_leader_read,
                quorum_read=self._quorum_read,
                local_read=self._local_read,
                readable=self._shard_readable,
                ledger=self.kernel.metrics,
                attempts=cfg.read_attempts,
            )
        return ShardFrontend(
            self.cluster.env_for(pid),
            shard_for=self.partitioner.shard_for,
            leader_of=self.leader_of,
            local_submit=self._local_submit,
            retry_timeout=cfg.retry_timeout,
            read_paths=read_paths,
        )

    def _install_shard_control(self, shard: int, leader_env) -> None:
        """(Re)create one shard's leader-side wake gates on *leader_env* —
        the write-pending gate always, plus the read queue/gate pair when
        the read plane is up.  Called at boot and by every leadership
        move or group addition (the elastic service included)."""
        self._gates[shard] = leader_env.new_gate(f"g{shard}-pending")
        if self.config.read_paths_enabled:
            self._read_queues[shard] = deque()
            self._read_gates[shard] = leader_env.new_gate(f"g{shard}-reads")

    def _make_cluster(self, regions: Sequence[RegionSpec]) -> MultiGroupCluster:
        cfg = self.config
        return self._cluster_class(
            ClusterConfig(
                n_processes=cfg.n_processes,
                n_memories=cfg.n_memories,
                latency=cfg.latency,
                seed=cfg.seed,
                trace=cfg.trace,
                deadline=cfg.deadline,
            ),
            regions,
            faults=cfg.faults,
        )

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def active_replicas(self) -> List[int]:
        """Processes hosting shard replicas (all of them, when static)."""
        return list(range(self.config.n_processes))

    def leader_of(self, shard: int) -> int:
        """The shard's current leader (static round-robin by default;
        rewritten per epoch by the elastic service)."""
        return self._leader_map[shard]

    def shards_led_by(self, pid: int) -> List[int]:
        """The shards whose leader runs on *pid* (fault-targeting helper:
        crashing *pid* churns exactly these shards)."""
        return [g for g in self.shards if self.leader_of(g) == pid]

    def _cq_ns(self, shard: int, slot: int) -> str:
        return f"g{shard}cq{slot}"

    def _neb_ns(self, shard: int, slot: int) -> str:
        return f"g{shard}neb{slot}"

    def machine(self, pid: int, shard: int) -> KVStateMachine:
        return self.machines[(pid, shard)]

    def snapshot(self, shard: int) -> Dict[str, Any]:
        """The shard leader's current committed store."""
        return self.machines[(self.leader_of(shard), shard)].snapshot()

    def replica_divergence(self) -> List[str]:
        """Model-checking oracle: replicas must agree slot for slot.

        For every shard, every pair of replicas must have applied the same
        command with the same result at every log slot both have reached —
        replicas may trail (shorter applied prefix) but never disagree.
        Returns human-readable error strings, empty when consistent.
        """
        errors: List[str] = []
        for shard in self.shards:
            applied = {
                pid: {
                    slot: (command, result)
                    for slot, command, result in self.machines[(pid, shard)].applied
                }
                for pid in self.active_replicas
                if (pid, shard) in self.machines
            }
            pids = sorted(applied)
            for i, pa in enumerate(pids):
                for pb in pids[i + 1:]:
                    for slot in applied[pa].keys() & applied[pb].keys():
                        if applied[pa][slot] != applied[pb][slot]:
                            errors.append(
                                f"shard {shard} slot {slot}: p{pa + 1} applied "
                                f"{applied[pa][slot]!r} but p{pb + 1} applied "
                                f"{applied[pb][slot]!r}"
                            )
        return errors

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _spawn_replicas(self) -> None:
        cfg = self.config
        for g in self.shards:
            leader = self.leader_of(g)
            for pid in self.active_replicas:
                if g in cfg.bft_shards:
                    env = self.cluster.env_for(pid)
                    machine = KVStateMachine()
                    self.machines[(pid, g)] = machine
                    self.cluster.spawn(
                        pid, f"g{g}-bft-p{pid+1}", self._bft_driver(g, env, machine)
                    )
                    if pid == leader:
                        self.cluster.spawn(pid, f"g{g}-accept", self._acceptor(g, env))
                else:
                    self._spawn_pmp_replica(pid, g)

    def _spawn_pmp_replica(self, pid: int, shard: int, recovered: bool = False) -> None:
        """Assemble one crash-tolerant replica of *shard* on *pid*: state
        machine, log, and the task set its role needs.  Serves both boot
        (``_spawn_replicas``) and crash recovery (``_respawn_process``,
        with ``recovered=True``: the log re-prepares instead of assuming
        permissions, and followers pull the committed prefix)."""
        leader = self.leader_of(shard)
        env = self.cluster.env_for(pid)
        machine = KVStateMachine()
        self.machines[(pid, shard)] = machine
        log = ReplicatedLog(
            env,
            self._make_apply(pid, shard, machine),
            SmrConfig(
                initial_leader=leader,
                region=shard_region(shard),
                topic=shard_region(shard),
                publish_watermark=self.config.read_paths_enabled,
                batch_chains=self.config.batch_chains,
            ),
            leader_fn=lambda g=shard: self.leader_of(g),
            recovered=recovered,
        )
        self.logs[(pid, shard)] = log
        replica_tasks = self._group_tasks.setdefault((pid, shard), [])
        replica_tasks.append(
            self.cluster.spawn(pid, f"g{shard}-listen-p{pid+1}", log.listener())
        )
        replica_tasks.append(
            self.cluster.spawn(pid, f"g{shard}-sync-p{pid+1}", log.sync_server())
        )
        if pid == leader:
            self._spawn_leader_role(pid, shard, env, log)
        elif recovered:
            replica_tasks.append(
                self.cluster.spawn(pid, f"g{shard}-catchup-p{pid+1}", log.catchup())
            )

    def _spawn_leader_role(self, pid: int, shard: int, env, log: ReplicatedLog) -> None:
        """Spawn the leader-side tasks of *shard* on *pid* (proposer +
        request intake), tracked separately so a leadership move can
        depose them without killing the replica underneath."""
        lead_tasks = self._lead_tasks.setdefault((pid, shard), [])
        lead_tasks.append(
            self.cluster.spawn(pid, f"g{shard}-propose", self._proposer(shard, env, log))
        )
        lead_tasks.append(
            self.cluster.spawn(pid, f"g{shard}-accept", self._acceptor(shard, env))
        )
        if self.config.read_paths_enabled:
            lead_tasks.append(
                self.cluster.spawn(
                    pid, f"g{shard}-rd-accept", self._read_acceptor(shard, env)
                )
            )
            lead_tasks.append(
                self.cluster.spawn(
                    pid, f"g{shard}-rd-serve", self._read_server(shard, env, log)
                )
            )

    def _make_apply(self, pid: int, shard: int, machine: KVStateMachine):
        """Apply committed entries and answer this process's waiting clients.

        Frontends are looked up per apply, not captured: a recovered
        process's rebuilt frontend must answer, not its dead predecessor.
        (Per-shard commit crediting happens on the leader's propose path,
        not here — followers must not pay bookkeeping on the apply hot
        path just to find out they are not the leader.)
        """

        def apply_fn(slot: int, value: Any) -> None:
            results = machine.apply(slot, value)
            frontend = self.frontends[pid]
            if isinstance(value, Batch):
                for command, result in zip(value.commands, results):
                    frontend.complete(command, result, watermark=slot, shard=shard)
            else:
                frontend.complete(value, results, watermark=slot, shard=shard)

        return apply_fn

    # ------------------------------------------------------------------
    # per-shard server tasks
    # ------------------------------------------------------------------
    def _note_cmd_ctx(self, command: KVCommand) -> None:
        """Stash the enqueuing task's trace context for the drain side."""
        obs = self.kernel.obs
        if obs is not None and obs.current_task is not None:
            token = command.identity
            if token is not None:
                self._cmd_ctx[token] = obs.current_task.ctx

    def _pop_cmd_ctx(self, batch: Sequence[KVCommand]):
        """Retire the batch's stashed contexts; returns the first one."""
        parent = None
        pop = self._cmd_ctx.pop
        for command in batch:
            ctx = pop(command.identity, None)
            if parent is None:
                parent = ctx
        return parent

    def _local_submit(self, shard: int, command: KVCommand) -> None:
        """Enqueue a request arriving on the shard leader's own process."""
        if self.kernel.obs is not None:
            self._note_cmd_ctx(command)
        queue = self.queues[shard]
        queue.append(command)
        # The shard server only parks on the gate when its queue is empty,
        # so only the append that makes it non-empty can have a parked
        # waiter to wake; later appends skip the signal round-trip.
        if len(queue) == 1:
            gate = self._gates[shard]
            self._leader_envs[shard].signal(gate)
            gate.clear()

    def _acceptor(self, shard: int, env) -> Generator:
        """Leader-side intake: requests from remote frontends."""
        recv_request = env.recv_effect(topic=request_topic(shard))
        queue = self.queues[shard]
        gate = self._gates[shard]
        while True:
            envelope = yield recv_request
            if envelope is None:
                continue
            if self.kernel.obs is not None:
                self._note_cmd_ctx(envelope.payload)
            queue.append(envelope.payload)
            if len(queue) == 1:
                env.signal(gate)
                gate.clear()

    def _drainable(self, shard: int, command: KVCommand) -> bool:
        """May *shard*'s leader commit *command*?  Always, when static.

        The elastic service overrides this with the seal filter: once an
        epoch transition seals a shard, commands for keys that moved away
        are dropped here — never committed, never answered — so the
        client's resend re-routes them to the new-epoch owner and dedup
        keeps the whole affair at-most-once.
        """
        return True

    def _drain(self, shard: int) -> Tuple[KVCommand, ...]:
        queue = self.queues[shard]
        batch: List[KVCommand] = []
        while queue and len(batch) < self.config.batch_max:
            command = queue.popleft()
            if self._drainable(shard, command):
                batch.append(command)
            elif self._cmd_ctx:
                # seal-dropped: retire its stashed trace context too
                self._cmd_ctx.pop(command.identity, None)
        return tuple(batch)

    def _proposer(self, shard: int, env, log: ReplicatedLog) -> Generator:
        """Leader loop of a crash-tolerant shard: drain, batch, commit.

        A restarted leader (``recovered`` log: permissions not assumed)
        first re-runs the takeover prepare and re-commits every previously
        accepted slot before serving new traffic.
        """
        ledger = self.kernel.metrics
        if not log.permissions_held:
            yield from log.recover_leader()
        slot = log.applied_upto + 1
        while True:
            batch = self._drain(shard) if self.queues[shard] else ()
            if not batch:
                # nothing to commit — including a queue the seal filter
                # emptied (an elastic source mid-cutover): parking beats
                # burning a consensus instance on an empty batch per
                # client retry cycle
                yield env.gate_wait(self._gates[shard], timeout=self.config.idle_poll)
                continue
            obs = env.obs
            phase = obs and obs.phase_under(
                "leader.batch",
                self._pop_cmd_ctx(batch),
                shard=shard,
                slot=slot,
                size=len(batch),
            )
            try:
                decided = yield from log.propose_batch(slot, batch)
            finally:
                if phase:
                    phase.finish()
            # per-shard commit rate (what the autoscaler differentiates),
            # credited once by the committing leader — not per replica
            if type(decided) is Batch and decided.commands:
                ledger.count_shard_commit(shard, len(decided.commands))
                if obs:
                    obs.registry.counter("shard.commits", shard=shard).inc(
                        len(decided.commands)
                    )
                    obs.registry.histogram("shard.batch_fill", shard=shard).observe(
                        len(decided.commands)
                    )
            slot = log.applied_upto + 1

    def _bft_driver(self, shard: int, env, machine: KVStateMachine) -> Generator:
        """One replica of a Byzantine shard: Fast & Robust per slot.

        Followers enter each instance with a no-op and adopt the leader's
        batch on the fast path.  Followers start waiting for slot ``i`` as
        soon as slot ``i-1`` decides, so an idle leader must still commit
        a heartbeat (empty batch) within ``bft_leader_timeout`` — but no
        faster: each heartbeat burns one of the ``bft_max_slots``
        pre-declared slots, so the leader waits for work at half the
        follower timeout before giving up and proposing empty.
        """
        cfg = self.config
        leader = self.leader_of(shard)
        protocol = FastRobust(
            FastRobustConfig(
                cheap_quorum=CheapQuorumConfig(
                    leader=leader,
                    leader_timeout=cfg.bft_leader_timeout,
                    unanimity_timeout=2 * cfg.bft_leader_timeout,
                )
            )
        )
        frontend = self.frontends[int(env.pid)]
        for slot in range(cfg.bft_max_slots):
            if int(env.pid) == leader:
                if not self.queues[shard]:
                    yield env.gate_wait(
                        self._gates[shard], timeout=cfg.bft_leader_timeout / 2
                    )
                value: Any = Batch(self._drain(shard))
                if self._cmd_ctx:
                    self._pop_cmd_ctx(value.commands)
            else:
                value = Batch()  # follower no-op input; leader's batch wins
            decided = yield from protocol.run_instance(
                env,
                value,
                cq_namespace=self._cq_ns(shard, slot),
                neb_namespace=self._neb_ns(shard, slot),
                instance=(shard, slot),
            )
            results = machine.apply(slot, decided)
            if isinstance(decided, Batch):
                if decided.commands and int(env.pid) == leader:
                    self.kernel.metrics.count_shard_commit(shard, len(decided.commands))
                for command, result in zip(decided.commands, results):
                    frontend.complete(command, result, watermark=slot, shard=shard)

    # ------------------------------------------------------------------
    # the read plane (non-consensus read serving)
    # ------------------------------------------------------------------
    def _shard_readable(self, shard: int) -> bool:
        """May the read plane serve *shard*?  Live crash-tolerant groups
        only — Byzantine groups and retired/unknown ids ride consensus."""
        return shard in self.queues and shard not in self.config.bft_shards

    def _submit_leader_read(self, shard: int, command: KVCommand, src: int) -> None:
        """Enqueue one fenced read at *shard*'s leader (local or accepted).

        A shard this process no longer leads (deposed, retired) simply
        drops the request — the client's resend re-resolves the leader.
        """
        queue = self._read_queues.get(shard)
        if queue is None:
            return
        queue.append((command, src))
        if len(queue) == 1:
            gate = self._read_gates[shard]
            self._leader_envs[shard].signal(gate)
            gate.clear()

    def _read_acceptor(self, shard: int, env) -> Generator:
        """Leader-side intake of fenced reads from remote frontends."""
        recv_read = env.recv_effect(topic=read_topic(shard))
        while True:
            envelope = yield recv_read
            if envelope is None:
                continue
            self._submit_leader_read(shard, envelope.payload, int(envelope.src))

    def _reply_read(
        self, env, src: int, command: KVCommand, value: Any,
        watermark: Optional[int], ok: bool, shard: int,
    ) -> Generator:
        """Answer one fenced read: a direct completion when the requester
        is this process, a reply message to its pump otherwise."""
        if src == int(env.pid):
            self.frontends[src].complete_read(
                command.identity, value, watermark, ok, shard
            )
        else:
            yield env.send(
                src,
                (command.identity, value, watermark, ok, shard),
                topic=read_reply_topic(src),
            )

    def _read_server(self, shard: int, env, log: ReplicatedLog) -> Generator:
        """Leader loop of the fenced read path: drain, snapshot, probe, reply.

        Every read pending at drain time is answered under ONE fence
        probe — the values are taken from local applied state first, then
        a single one-sided permission probe validates that the exclusive
        write grant was still live at a majority afterwards, which makes
        each answer linearizable at the probe instant.  A failed probe
        (revocation storm, takeover, epoch fence) NAKs the whole batch:
        clients fall back to the command plane — degraded, never stale.
        """
        cfg = self.config
        queue = self._read_queues[shard]
        gate = self._read_gates[shard]
        pid = int(env.pid)
        while True:
            if not queue:
                yield env.gate_wait(gate, timeout=cfg.idle_poll)
                continue
            if not log.serves_local_reads and log.permissions_held:
                # transiently behind its own progress — a commit whose
                # watermark publish is still in flight, or takeover
                # re-commits draining the adopt cache.  The gap closes
                # through this leader's own applies (each signals the
                # commit gate), so hold the reads instead of NAKing a
                # whole batch into the consensus fallback.
                yield env.gate_wait(log.commit_gate, timeout=cfg.idle_poll)
                continue
            batch = tuple(queue)
            queue.clear()
            served = None
            obs = env.obs
            phase = obs and obs.phase("read.serve", shard=shard, size=len(batch))
            if log.serves_local_reads:
                watermark = log.applied_watermark
                machine = self.machines[(pid, shard)]
                served = [
                    (command, src, machine.get(command.key))
                    for command, src in batch
                ]
                held = yield from log.fence_probe(timeout=cfg.retry_timeout)
            else:
                # the grant is known lost (revocation observed, or a
                # recovered leader pre-prepare): refuse without probing
                held = False
            if phase:
                phase.finish(held=held)
            if obs:
                obs.registry.counter(
                    "reads.served" if held else "reads.naked", shard=shard
                ).inc(len(batch))
            if held:
                for command, src, value in served:
                    yield from self._reply_read(
                        env, src, command, value, watermark, True, shard
                    )
            else:
                for command, src in batch:
                    yield from self._reply_read(
                        env, src, command, None, None, False, shard
                    )

    def _spawn_read_reply_pump(self, pid: int) -> None:
        """(Re)start one process's read-reply pump (boot and recovery)."""
        self.cluster.spawn(pid, f"rd-pump-p{pid+1}", self._read_reply_pump(pid))

    def _read_reply_pump(self, pid: int) -> Generator:
        """Deliver remote read replies to this process's live frontend.

        The frontend is looked up per reply, not captured: after a crash
        the rebuilt frontend must be the one answered.
        """
        env = self.cluster.env_for(pid)
        recv_reply = env.recv_effect(topic=read_reply_topic(pid))
        while True:
            envelope = yield recv_reply
            if envelope is None:
                continue
            token, value, watermark, ok, shard = envelope.payload
            self.frontends[pid].complete_read(token, value, watermark, ok, shard)

    def _quorum_read(self, pid: int, shard: int, command: KVCommand) -> Generator:
        """One-sided quorum read of *command*'s key against *shard*.

        Runs entirely on the reading process: the local replica's log
        assembles the committed watermark and any missing entries from a
        majority of memories (ingesting them locally as a side effect)
        and the value is served from the caught-up local state machine.
        Returns ``(value, watermark)``, or ``None`` when the read cannot
        be served one-sided and must fall back.
        """
        log = self.logs.get((pid, shard))
        if log is None:
            return None
        watermark = yield from log.quorum_read(timeout=self.config.retry_timeout)
        if watermark is None:
            return None
        machine = self.machines.get((pid, shard))
        if machine is None:
            return None
        return machine.get(command.key), watermark

    def _local_read(
        self, pid: int, shard: int, command: KVCommand, floor: int
    ) -> Generator:
        """Session-consistent read from this process's own replica.

        Parks on the replica's commit gate until the applied watermark
        reaches the session *floor* (read-your-writes: the client's own
        completed writes are below it by construction), then serves local
        state.  The log is re-looked-up per wait so a crash-recovery
        rebuild is picked up; returns ``None`` when this process hosts no
        replica of the shard at all.
        """
        env = self.cluster.env_for(pid)
        while True:
            log = self.logs.get((pid, shard))
            if log is None:
                return None
            if log.applied_upto >= floor:
                machine = self.machines[(pid, shard)]
                return machine.get(command.key), log.applied_upto
            yield env.gate_wait(log.commit_gate, timeout=self.config.retry_timeout)

    # ------------------------------------------------------------------
    # failure hooks (per-shard fault targeting)
    # ------------------------------------------------------------------
    def _on_process_crash(self, pid) -> None:
        """A crash kills the led shards' pending queues with the leader.

        Remote frontends keep retrying their in-flight commands, so the
        lost queue entries are re-submitted once the leader's acceptor is
        respawned — at-most-once dedup in the state machine makes the
        retries idempotent.
        """
        self._ever_crashed.add(int(pid))
        for shard in self.shards_led_by(int(pid)):
            self.queues[shard].clear()
            read_queue = self._read_queues.get(shard)
            if read_queue is not None:
                read_queue.clear()

    def _respawn_process(self, pid) -> None:
        """Rebuild one recovered process's replica state, shard by shard.

        Every crash-tolerant shard gets a fresh state machine and a
        ``recovered`` log: led shards re-take leadership (prepare, adopt,
        re-commit), follower shards pull the committed prefix from their
        leader.  The process's frontend is rebuilt too — its previous
        incarnation's pending table died with its clients.  BFT shards are
        not respawned: Fast & Robust has no recovery path, and a recovered
        replica would re-enter already-consumed slot regions.
        """
        pid = int(pid)
        cfg = self.config
        self.frontends[pid] = self._make_frontend(pid)
        if cfg.read_paths_enabled:
            self._spawn_read_reply_pump(pid)
        for g in self.shards:
            if g not in cfg.bft_shards:
                self._spawn_pmp_replica(pid, g, recovered=True)

    # ------------------------------------------------------------------
    # workload driving
    # ------------------------------------------------------------------
    def _converged(self) -> bool:
        """Every live replica of every shard has applied the same prefix.

        Crashed processes are exempt while down; so are the BFT replicas
        of any process that ever crashed (Fast & Robust replicas do not
        recover — see ``_respawn_process``).
        """
        crashed = self.kernel.crashed_processes
        bft = self.config.bft_shards
        for g in self.shards:
            counts = {
                self.machines[(pid, g)].applied_count
                for pid in self.active_replicas
                if pid not in crashed
                and not (g in bft and pid in self._ever_crashed)
            }
            if len(counts) > 1:
                return False
        return True

    def run_workload(
        self,
        clients: Sequence[Any],
        deadline: Optional[float] = None,
    ) -> WorkloadReport:
        """Drive *clients* to completion; returns the aggregated report.

        Clients without a pinned ``pid`` are spread round-robin across
        processes.  The run ends when every request completed and all
        replicas converged (or at the deadline, whichever is first —
        check ``report.ok`` for shortfalls, e.g. an exhausted BFT
        shard's slot budget).  Counters are reported as deltas from the
        start of this call, so a service may run several workloads
        back to back.
        """
        recorder = _Recorder(self)
        # (client, request_id) is the at-most-once identity and the state
        # machines remember it forever, so a client id may drive at most
        # one workload per service: a reused id would silently absorb the
        # new run's commands as duplicates.  Reject it loudly instead.
        ids = [client.client_id for client in clients]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate client ids in workload: {ids}")
        reused = self._used_client_ids.intersection(ids)
        if reused:
            raise ConfigurationError(
                f"client ids {sorted(reused)} already ran on this service; "
                "later workloads need fresh ids for exactly-once semantics"
            )
        self._used_client_ids.update(ids)
        total = sum(client.n_ops for client in clients)
        started_at = self.kernel.now
        # Arm the SLO plane: objectives declared on the config become live
        # the moment an obs runtime is attached (and stay inert otherwise,
        # preserving the zero-cost-when-detached contract).
        obs = self.kernel.obs
        if obs is not None and self.config.slo:
            if obs.slo is None:
                obs.track_slo(self.config.slo)
            if not obs.sampling:
                horizon = deadline if deadline is not None else self.config.deadline
                obs.start_sampling(self.config.slo_interval, until=horizon)
        # Baselines capture the leader MACHINE, not just counters: a shard
        # merged away mid-run keeps its machine (and its committed work
        # must still be reported) even after the topology forgets it.
        baseline = {
            g: (machine, machine.applied_count, machine.duplicates,
                machine.batches_applied, machine.empty_batches,
                _migration_applies(machine))
            for g in self.shards
            for machine in (self.machines[(self.leader_of(g), g)],)
        }
        pool = self.active_replicas
        for index, client in enumerate(clients):
            pid = client.pid if client.pid is not None else pool[index % len(pool)]
            env = self.cluster.env_for(pid)
            self.cluster.spawn(
                pid,
                f"client-c{client.client_id}",
                client.task(env, self.frontends[pid], recorder),
            )

        def goal() -> bool:
            return recorder.completed >= total and self._converged()

        self.cluster.run_until(goal, deadline)

        # Close out every shard the run touched: the boot set (baselines,
        # including any shard merged away mid-run) plus shards added by a
        # mid-run split (zero baselines).  Migration transfers ride the
        # same logs but are NOT client traffic: their applies (and their
        # dedup'd replays) are subtracted so committed_commands keeps
        # meaning "distinct client commands this workload committed".
        closing = dict(baseline)
        for g in self.shards:
            if g not in closing:
                machine = self.machines[(self.leader_of(g), g)]
                closing[g] = (machine, 0, 0, 0, 0, (0, 0))
        for g, (machine, applied0, duplicates0, batches0, empty0, mig0) in (
            closing.items()
        ):
            mig_tokens, mig_applies = _migration_applies(machine)
            mig_tokens0, mig_applies0 = mig0
            mig_first = mig_tokens - mig_tokens0
            mig_dup = (mig_applies - mig_applies0) - mig_first
            stats = recorder.stats.setdefault(g, ShardStats(shard=g))
            stats.duplicates = (machine.duplicates - duplicates0) - mig_dup
            stats.committed_commands = (
                (machine.applied_count - applied0)
                - (machine.duplicates - duplicates0)
                - mig_first
            )
            # idle heartbeats (empty batches) are excluded so batch fill
            # measures how well real traffic amortised consensus instances
            stats.committed_batches = (
                (machine.batches_applied - batches0)
                - (machine.empty_batches - empty0)
            )
        return WorkloadReport(
            shards=recorder.stats,
            completed_requests=recorder.completed,
            elapsed=self.kernel.now - started_at,
            expected_requests=total,
        )
