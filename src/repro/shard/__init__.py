"""Sharded SMR service layer: multi-group replicated KV at scale.

The scaling subsystem above the paper's protocols: partition the
keyspace across N independent consensus groups (consistent hashing),
route client commands to each group's pinned leader, amortise per-slot
cost by committing :class:`~repro.smr.log.Batch` entries, and drive it
all with a YCSB-style workload engine (open/closed loops, uniform and
Zipfian key popularity).
"""

from repro.shard.partitioner import (
    ConsistentHashPartitioner,
    HashRing,
    RingDiff,
    ring_diff,
)
from repro.shard.router import (
    READ_CONSENSUS,
    READ_LEADER,
    READ_LOCAL,
    READ_MODES,
    READ_QUORUM,
    ReadSession,
    ShardFrontend,
    read_reply_topic,
    read_topic,
    request_topic,
)
from repro.shard.service import ShardConfig, ShardedKV, shard_region
from repro.shard.workload import (
    ClosedLoopClient,
    KeyDistribution,
    OpenLoopClient,
    OperationMix,
    ScriptedClient,
    UniformKeys,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    ZipfianKeys,
)

__all__ = [
    "ClosedLoopClient",
    "ConsistentHashPartitioner",
    "HashRing",
    "KeyDistribution",
    "OpenLoopClient",
    "OperationMix",
    "READ_CONSENSUS",
    "READ_LEADER",
    "READ_LOCAL",
    "READ_MODES",
    "READ_QUORUM",
    "ReadSession",
    "RingDiff",
    "ScriptedClient",
    "ShardConfig",
    "ShardFrontend",
    "ShardedKV",
    "UniformKeys",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "ZipfianKeys",
    "read_reply_topic",
    "read_topic",
    "request_topic",
    "ring_diff",
    "shard_region",
]
