"""The client-facing frontend: route commands to shards, match replies.

Each process hosts one :class:`ShardFrontend`.  A client submits a
``KVCommand`` carrying a ``(client, request_id)`` identity; the frontend
hashes the key to its owning shard and routes it down one of two planes:

* the **command plane** (:meth:`ShardFrontend.submit`) — every write, and
  reads in ``consensus`` mode: hand the command to the shard's leader (a
  direct enqueue when the leader is local, a request message otherwise)
  and park until the *local* replica of the owning shard applies it — the
  standard "client attached to a replica" SMR completion rule;
* the **read plane** (:meth:`ShardFrontend.get`) — non-consensus reads,
  routed by mode: ``leader`` sends the get to the shard leader, which
  serves it from local applied state under a one-sided permission-fence
  probe; ``quorum`` reads the commit watermark and entries directly from
  a majority of memories with no leader involvement; ``local`` serves
  from this process's own replica once it has caught up to the client's
  session floor.  Every read-plane refusal (fence lost, quorum
  unassemblable, region fenced away mid-reconfiguration) falls back to
  the consensus plane — reads degrade to slower, never to stale.

Replies are matched purely by identity, so retries are safe: the state
machine deduplicates ``(client, request_id)`` and re-returns the original
result, and a late second completion for an already-answered request is
dropped here.  Completions carry the **applied watermark** (the log slot
the local replica had applied when it answered); a :class:`ReadSession`
accumulates those per shard as the client's consistency floor —
read-your-writes and monotonic reads for the session, and the runtime
staleness tripwire for the linearizable modes (a reply below the session
floor is recorded as a staleness violation, which must never happen).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.environment import ProcessEnv
from repro.smr.kv import KVCommand
from repro.types import ProcessId

#: the four read modes a get can be routed by
READ_CONSENSUS = "consensus"  #: commit the get through the log (seed behaviour)
READ_LEADER = "leader"        #: leader-local state under a permission fence
READ_QUORUM = "quorum"        #: one-sided majority read, no leader involvement
READ_LOCAL = "local"          #: own replica at the client's session floor

READ_MODES = (READ_CONSENSUS, READ_LEADER, READ_QUORUM, READ_LOCAL)


def request_topic(shard: int) -> str:
    """The message topic a shard's leader accepts client commands on."""
    return f"shard-req-g{shard}"


def read_topic(shard: int) -> str:
    """The message topic a shard's leader accepts fenced reads on."""
    return f"shard-read-g{shard}"


def read_reply_topic(pid: int) -> str:
    """The topic a process's reply pump receives remote read replies on."""
    return f"shard-rdres-p{int(pid) + 1}"


class ReadSession:
    """Per-client consistency floors: shard -> highest watermark seen.

    Carried by the client across requests; every completion (write or
    read) raises the floor of the shard that served it.  ``local``-mode
    reads wait for the local replica to reach the floor (read-your-writes
    without any leader or quorum traffic); the linearizable modes use it
    as a tripwire — they must always come back at or above it.
    """

    __slots__ = ("floors",)

    def __init__(self) -> None:
        self.floors: Dict[int, int] = {}

    def floor(self, shard: int) -> int:
        """The lowest applied watermark this session may accept of *shard*."""
        return self.floors.get(shard, -1)

    def note(self, shard: int, watermark: Optional[int]) -> None:
        """Raise the shard's floor to *watermark* (floors never regress)."""
        if watermark is not None and watermark > self.floors.get(shard, -1):
            self.floors[shard] = watermark


class ReadPaths:
    """The service callbacks the frontend's read plane drives.

    Built by the sharded service when read paths are enabled; ``None`` on
    a frontend means every get rides the command plane (seed behaviour).
    """

    __slots__ = (
        "default_mode",
        "leader_read_submit",
        "quorum_read",
        "local_read",
        "readable",
        "ledger",
        "attempts",
    )

    def __init__(
        self,
        default_mode: str,
        leader_read_submit: Callable[[int, KVCommand, int], None],
        quorum_read: Callable[[int, int, KVCommand], Generator],
        local_read: Callable[[int, int, KVCommand, int], Generator],
        readable: Callable[[int], bool],
        ledger: Any,
        attempts: int = 3,
    ) -> None:
        self.default_mode = default_mode
        self.leader_read_submit = leader_read_submit
        self.quorum_read = quorum_read
        self.local_read = local_read
        self.readable = readable
        self.ledger = ledger
        self.attempts = attempts


class _Pending:
    """One in-flight request on this process."""

    __slots__ = ("gate", "done", "failed", "result", "watermark", "shard")

    def __init__(self, gate: Any) -> None:
        self.gate = gate
        self.done = False
        #: a read server explicitly refused (fence lost): fall back now
        self.failed = False
        self.result: Any = None
        self.watermark: Optional[int] = None
        self.shard: Optional[int] = None


class ShardFrontend:
    """Per-process request router for a sharded replicated service."""

    def __init__(
        self,
        env: ProcessEnv,
        shard_for: Callable[[str], int],
        leader_of: Callable[[int], int],
        local_submit: Callable[[int, KVCommand], None],
        retry_timeout: float = 100.0,
        read_paths: Optional[ReadPaths] = None,
    ) -> None:
        self.env = env
        self.shard_for = shard_for
        self.leader_of = leader_of
        self.local_submit = local_submit
        self.retry_timeout = retry_timeout
        self.read_paths = read_paths
        self.pending: Dict[Tuple[Any, Any], _Pending] = {}
        self.retries = 0
        self._topics: Dict[int, str] = {}  # shard -> request topic (cached)
        self._read_topics: Dict[int, str] = {}  # shard -> read topic (cached)

    # ------------------------------------------------------------------
    # the command plane
    # ------------------------------------------------------------------
    def submit(
        self,
        command: KVCommand,
        shard: Optional[int] = None,
        session: Optional[ReadSession] = None,
    ) -> Generator:
        """Route *command* to its shard and park until it is applied here.

        Returns the command's state-machine result.  Resends after
        ``retry_timeout`` delays without an answer; dedup at the state
        machine makes resends idempotent.

        Both the owning shard and its leader are re-resolved on every
        retry: that is what carries in-flight requests across an elastic
        cutover — a command stalled against a shard that sealed (or a
        leader that was deposed) lands on the new-epoch owner on its next
        resend, and dedup keeps the whole affair at-most-once.

        Pass *shard* to pin the command to an explicit group, bypassing
        key routing — the migrator streams moved keys to their *future*
        owner (and commits barrier probes at the old one) while client
        routing still points at the old ring.  Pass *session* to raise
        the client's consistency floor with the completion's watermark.
        """
        obs = self.env.obs
        phase = obs and obs.phase("client.submit", key=command.key, op=command.op)
        entry = self._register(command)
        try:
            yield from self._route_loop(command, entry, pinned=shard)
        finally:
            if phase:
                phase.finish(shard=entry.shard)
        del self.pending[command.identity]
        if session is not None and entry.shard is not None:
            session.note(entry.shard, entry.watermark)
        return entry.result

    # ------------------------------------------------------------------
    # shared routing machinery
    # ------------------------------------------------------------------
    def _register(self, command: KVCommand) -> _Pending:
        token = command.identity
        if token is None:
            raise ValueError(
                "routed commands need client and request_id for reply matching"
            )
        if token in self.pending:
            raise ValueError(f"request {token} already in flight")
        entry = _Pending(gate=self.env.new_gate("reply"))
        self.pending[token] = entry
        return entry

    def _route_loop(
        self,
        command: KVCommand,
        entry: _Pending,
        pinned: Optional[int] = None,
        read_plane: bool = False,
    ) -> Generator:
        """The retry loop both planes share: (re)resolve the owning shard
        and its leader each attempt — which is what carries in-flight
        requests across an elastic cutover — hand the command over (a
        direct enqueue when the leader is local, a message otherwise) and
        park on the entry's gate until an answer lands or the resend
        timer fires.  On the read plane a fence NAK (``entry.failed``)
        also exits, so the caller can fall back; the command plane
        ignores the flag — a stray late NAK must never abort a submit.
        """
        env = self.env
        obs = env.obs
        first = True
        attempt = 0
        while not entry.done and not (read_plane and entry.failed):
            if not first:
                self.retries += 1
                if obs:
                    obs.registry.counter(
                        "router.retries", pid=int(env.pid)
                    ).inc()
            first = False
            attempt += 1
            shard = pinned if pinned is not None else self.shard_for(command.key)
            leader = self.leader_of(shard)
            phase = obs and obs.phase(
                "router.attempt", shard=shard, leader=leader, n=attempt
            )
            try:
                if read_plane:
                    if leader == int(env.pid):
                        self.read_paths.leader_read_submit(shard, command, leader)
                    else:
                        topic = self._read_topics.get(shard)
                        if topic is None:
                            topic = self._read_topics[shard] = read_topic(shard)
                        yield env.send(leader, command, topic=topic)
                elif leader == int(env.pid):
                    self.local_submit(shard, command)
                else:
                    topic = self._topics.get(shard)
                    if topic is None:
                        topic = self._topics[shard] = request_topic(shard)
                    # ProcessId is a NewType over int: skip the wrap on the
                    # per-request path (hash/eq are identical).
                    yield env.send(leader, command, topic=topic)
                yield env.gate_wait(entry.gate, timeout=self.retry_timeout)
            finally:
                if phase:
                    phase.finish(answered=entry.done)

    # ------------------------------------------------------------------
    # the read plane
    # ------------------------------------------------------------------
    def get(
        self,
        command: KVCommand,
        mode: Optional[str] = None,
        session: Optional[ReadSession] = None,
    ) -> Generator:
        """Serve a read by *mode* (service default when None).

        Non-``get`` commands, disabled read paths, ``consensus`` mode and
        unreadable shards (e.g. a Byzantine-backed group) all ride the
        command plane unchanged.  Every other path answers without a
        consensus instance and falls back to the command plane rather
        than ever returning state below the session floor.
        """
        if mode is not None and mode not in READ_MODES:
            raise ValueError(f"unknown read mode {mode!r}; pick one of {READ_MODES}")
        rp = self.read_paths
        if rp is None:
            if mode is not None and mode != READ_CONSENSUS:
                # a silent downgrade to consensus would let a mode-comparison
                # benchmark (or a misassembled service) measure the wrong
                # path without noticing — refuse loudly instead
                raise ConfigurationError(
                    f"read mode {mode!r} requested but this service's read "
                    "plane is disabled (ShardConfig.read_mode='consensus')"
                )
            result = yield from self.submit(command, session=session)
            return result
        if mode is None:
            mode = rp.default_mode
        if (
            command.op != "get"
            or mode == READ_CONSENSUS
            or not rp.readable(self.shard_for(command.key))
        ):
            result = yield from self.submit(command, session=session)
            return result
        # the consistency floor is captured at ISSUE time: a reply must
        # cover everything that completed before this read began, while
        # overlapping reads of one session (an open-loop client) may
        # legally complete out of watermark order
        floors = dict(session.floors) if session is not None else None
        obs = self.env.obs
        phase = obs and obs.phase("client.get", key=command.key, mode=mode)
        try:
            if mode == READ_LEADER:
                result = yield from self._leader_get(command, rp, session, floors)
            elif mode == READ_QUORUM:
                result = yield from self._quorum_get(command, rp, session, floors)
            else:  # READ_LOCAL
                result = yield from self._local_get(command, rp, session, floors)
        finally:
            if phase:
                phase.finish()
        return result

    def _finish_read(
        self,
        rp: ReadPaths,
        session: Optional[ReadSession],
        floors: Optional[Dict[int, int]],
        shard: int,
        mode: str,
        watermark: Optional[int],
    ) -> None:
        """Per-read bookkeeping: the staleness tripwire, floor, counters.

        *floors* is the session's floor map as of the read's issue
        instant — completions that raced ahead of this (concurrent) read
        raised the live floors legally and must not trip the wire.
        """
        if session is not None:
            floor = floors.get(shard, -1) if floors is not None else -1
            if watermark is not None and watermark < floor:
                rp.ledger.record_stale_read(
                    f"{mode} read of shard g{shard} answered at watermark "
                    f"{watermark} below the session's issue-time floor {floor}"
                )
            session.note(shard, watermark)
        rp.ledger.count_read(shard, mode)

    def _fall_back(
        self,
        command: KVCommand,
        rp: ReadPaths,
        session: Optional[ReadSession],
        shard: int,
        mode: str,
    ) -> Generator:
        """The read plane refused: answer through the command plane."""
        rp.ledger.count_read_fallback(shard, mode)
        obs = self.env.obs
        if obs:
            obs.registry.counter("reads.fallback", shard=shard, mode=mode).inc()
        result = yield from self.submit(command, session=session)
        return result

    def _leader_get(
        self,
        command: KVCommand,
        rp: ReadPaths,
        session: Optional[ReadSession],
        floors: Optional[Dict[int, int]],
    ) -> Generator:
        """Permission-fenced leader read: ask the shard leader to serve
        from its applied state under a live exclusive-write grant.

        A NAK reply (the leader's fence probe failed — revocation storm,
        takeover in progress, deposed by an epoch) falls back to the
        command plane immediately; silence (crash, partition) retries
        with the shard and leader re-resolved, exactly like a command.
        """
        entry = self._register(command)
        yield from self._route_loop(command, entry, read_plane=True)
        del self.pending[command.identity]
        if entry.done:
            served = (
                entry.shard
                if entry.shard is not None
                else self.shard_for(command.key)
            )
            self._finish_read(
                rp, session, floors, served, READ_LEADER, entry.watermark
            )
            return entry.result
        result = yield from self._fall_back(
            command, rp, session, self.shard_for(command.key), READ_LEADER
        )
        return result

    def _quorum_get(
        self,
        command: KVCommand,
        rp: ReadPaths,
        session: Optional[ReadSession],
        floors: Optional[Dict[int, int]],
    ) -> Generator:
        """One-sided quorum read against the owning shard's memories."""
        env = self.env
        for attempt in range(rp.attempts):
            shard = self.shard_for(command.key)  # re-resolve across cutovers
            outcome = yield from rp.quorum_read(int(env.pid), shard, command)
            if outcome is not None:
                value, watermark = outcome
                self._finish_read(
                    rp, session, floors, shard, READ_QUORUM, watermark
                )
                return value
            if attempt + 1 < rp.attempts:
                yield env.sleep(self.retry_timeout * (attempt + 1) / rp.attempts)
        result = yield from self._fall_back(command, rp, session, shard, READ_QUORUM)
        return result

    def _local_get(
        self,
        command: KVCommand,
        rp: ReadPaths,
        session: Optional[ReadSession],
        floors: Optional[Dict[int, int]],
    ) -> Generator:
        """Session-consistent local read from this process's own replica."""
        env = self.env
        shard = self.shard_for(command.key)
        floor = floors.get(shard, -1) if floors is not None else -1
        outcome = yield from rp.local_read(int(env.pid), shard, command, floor)
        if outcome is None:  # not a replica of that shard here
            result = yield from self._fall_back(
                command, rp, session, shard, READ_LOCAL
            )
            return result
        value, watermark = outcome
        self._finish_read(rp, session, floors, shard, READ_LOCAL, watermark)
        return value

    # ------------------------------------------------------------------
    # completion (called by the service as replies materialise)
    # ------------------------------------------------------------------
    def complete(
        self,
        command: Any,
        result: Any,
        watermark: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> None:
        """Reply matching: called as the local replica applies commands.

        *watermark* is the applied slot the local replica reached with
        this command — what raises the client's session floor.
        """
        if not isinstance(command, KVCommand):
            return
        token = command.identity
        if token is None:
            return
        entry = self.pending.get(token)
        if entry is None or entry.done:
            return  # not ours, or a duplicate application of an answered request
        entry.done = True
        entry.result = result
        entry.watermark = watermark
        entry.shard = shard
        self.env.signal(entry.gate)

    def complete_read(
        self,
        token: Tuple[Any, Any],
        result: Any,
        watermark: Optional[int],
        ok: bool,
        shard: int,
    ) -> None:
        """A leader read came back: an answer (ok) or a fence NAK (not).

        A NAK only flags the pending entry — the parked client falls back
        to the command plane itself, so a late NAK can never complete a
        request with a refusal.
        """
        entry = self.pending.get(token)
        if entry is None or entry.done:
            return
        if ok:
            entry.done = True
            entry.result = result
            entry.watermark = watermark
            entry.shard = shard
        else:
            entry.failed = True
        self.env.signal(entry.gate)
