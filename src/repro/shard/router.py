"""The client-facing frontend: route commands to shard leaders, match replies.

Each process hosts one :class:`ShardFrontend`.  A client submits a
``KVCommand`` carrying a ``(client, request_id)`` identity; the frontend
hashes the key to its owning shard, hands the command to that shard's
leader (a direct enqueue when the leader is local, a request message
otherwise), and parks the client until the *local* replica of the owning
shard applies the command — the standard "client attached to a replica"
SMR completion rule, which makes the result visible in the submitting
process's own committed prefix.

Replies are matched purely by identity, so retries are safe: the state
machine deduplicates ``(client, request_id)`` and re-returns the original
result, and a late second completion for an already-answered request is
dropped here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.sim.environment import ProcessEnv
from repro.smr.kv import KVCommand
from repro.types import ProcessId


def request_topic(shard: int) -> str:
    """The message topic a shard's leader accepts client requests on."""
    return f"shard-req-g{shard}"


class _Pending:
    """One in-flight request on this process."""

    __slots__ = ("gate", "done", "result")

    def __init__(self, gate: Any) -> None:
        self.gate = gate
        self.done = False
        self.result: Any = None


class ShardFrontend:
    """Per-process request router for a sharded replicated service."""

    def __init__(
        self,
        env: ProcessEnv,
        shard_for: Callable[[str], int],
        leader_of: Callable[[int], int],
        local_submit: Callable[[int, KVCommand], None],
        retry_timeout: float = 100.0,
    ) -> None:
        self.env = env
        self.shard_for = shard_for
        self.leader_of = leader_of
        self.local_submit = local_submit
        self.retry_timeout = retry_timeout
        self.pending: Dict[Tuple[Any, Any], _Pending] = {}
        self.retries = 0
        self._topics: Dict[int, str] = {}  # shard -> request topic (cached)

    # ------------------------------------------------------------------
    def submit(self, command: KVCommand, shard: Optional[int] = None) -> Generator:
        """Route *command* to its shard and park until it is applied here.

        Returns the command's state-machine result.  Resends after
        ``retry_timeout`` delays without an answer; dedup at the state
        machine makes resends idempotent.

        Both the owning shard and its leader are re-resolved on every
        retry: that is what carries in-flight requests across an elastic
        cutover — a command stalled against a shard that sealed (or a
        leader that was deposed) lands on the new-epoch owner on its next
        resend, and dedup keeps the double submission at-most-once.

        Pass *shard* to pin the command to an explicit group, bypassing
        key routing — the migrator streams moved keys to their *future*
        owner (and commits barrier probes at the old one) while client
        routing still points at the old ring.
        """
        token = command.identity
        if token is None:
            raise ValueError(
                "routed commands need client and request_id for reply matching"
            )
        if token in self.pending:
            raise ValueError(f"request {token} already in flight")
        env = self.env
        pinned = shard
        entry = _Pending(gate=env.new_gate("reply"))
        self.pending[token] = entry
        first = True
        while not entry.done:
            if not first:
                self.retries += 1
            first = False
            shard = pinned if pinned is not None else self.shard_for(command.key)
            leader = self.leader_of(shard)
            if leader == int(env.pid):
                self.local_submit(shard, command)
            else:
                topic = self._topics.get(shard)
                if topic is None:
                    topic = self._topics[shard] = request_topic(shard)
                # ProcessId is a NewType over int: skip the wrap on the
                # per-request path (hash/eq are identical).
                yield env.send(leader, command, topic=topic)
            yield env.gate_wait(entry.gate, timeout=self.retry_timeout)
        del self.pending[token]
        return entry.result

    # ------------------------------------------------------------------
    def complete(self, command: Any, result: Any) -> None:
        """Reply matching: called as the local replica applies commands."""
        if not isinstance(command, KVCommand):
            return
        token = command.identity
        if token is None:
            return
        entry = self.pending.get(token)
        if entry is None or entry.done:
            return  # not ours, or a duplicate application of an answered request
        entry.done = True
        entry.result = result
        self.env.signal(entry.gate)
