"""Consistent-hash key partitioning across consensus groups.

Keys map to shards via a hash ring with virtual nodes: each shard owns
many points on a 160-bit circle, and a key belongs to the first shard
point at or after the key's own hash.  Two properties matter here:

* **determinism** — the ring is built from SHA-1, never Python's salted
  ``hash``, so every process (and every run with the same config) routes
  a key identically; replicas of different processes must agree on
  ownership without communicating.
* **stability** — adding a shard moves only ~1/n of the keyspace, the
  classic consistent-hashing win that later re-sharding work relies on.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Dict, Iterable, List, Tuple


def _point(label: str) -> int:
    """A deterministic position on the 160-bit hash circle."""
    return int.from_bytes(hashlib.sha1(label.encode("utf-8")).digest(), "big")


class ConsistentHashPartitioner:
    """Maps string keys to shard ids ``0..n_shards-1`` via a hash ring."""

    def __init__(self, n_shards: int, vnodes: int = 64, salt: str = "") -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.n_shards = n_shards
        self.vnodes = vnodes
        self.salt = salt
        ring: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(vnodes):
                ring.append((_point(f"{salt}shard-{shard}#{replica}"), shard))
        ring.sort()
        self._points = [point for point, _shard in ring]
        self._owners = [shard for _point, shard in ring]
        #: key -> shard memo; workload keyspaces are bounded and hot keys
        #: repeat (Zipfian), so the per-request SHA-1 is paid once per key
        self._cache: Dict[str, int] = {}

    def shard_for(self, key: str) -> int:
        """The shard owning *key*: first ring point at or after its hash."""
        shard = self._cache.get(key)
        if shard is None:
            index = bisect.bisect_left(self._points, _point(key))
            if index == len(self._points):
                index = 0  # wrap around the circle
            shard = self._cache[key] = self._owners[index]
        return shard

    def distribution(self, keys: Iterable[str]) -> Counter:
        """How many of *keys* each shard owns (diagnostics and tests)."""
        counts: Counter = Counter({shard: 0 for shard in range(self.n_shards)})
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
