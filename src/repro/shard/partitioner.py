"""Consistent-hash key partitioning across consensus groups, with epochs.

Keys map to shards via a hash ring with virtual nodes: each shard owns
many points on a 160-bit circle, and a key belongs to the first shard
point at or after the key's own hash.  Three properties matter here:

* **determinism** — the ring is built from SHA-1, never Python's salted
  ``hash``, so every process (and every run with the same config) routes
  a key identically; replicas of different processes must agree on
  ownership without communicating.
* **stability** — adding a shard moves only ~1/n of the keyspace, the
  classic consistent-hashing win the reconfiguration subsystem relies
  on: a split steals a slice from every existing shard and a merge
  spills the victim's keys across the survivors, but no key ever moves
  between two shards that were not themselves added or removed.
* **versioning** — rings are immutable and numbered.  Reconfiguration
  *stages* the next epoch's ring (so migration can route to the future
  owners while clients still route to the old ones — the dual-ownership
  window) and *activates* it at cutover.  :class:`RingDiff` describes
  exactly which arcs of the circle changed owner between two versions.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: size of the SHA-1 hash circle (all ring arithmetic is modulo this)
CIRCLE = 1 << 160


def hash_point(label: str) -> int:
    """A deterministic position on the 160-bit hash circle."""
    return int.from_bytes(hashlib.sha1(label.encode("utf-8")).digest(), "big")


#: module-internal alias (the public name is :func:`hash_point`)
_point = hash_point


class HashRing:
    """One immutable, numbered placement of shard ids on the circle.

    Shard ids are stable across epochs (a split allocates a fresh id, a
    merge retires one), so a surviving shard's virtual nodes sit at the
    same points in every version — that is what bounds key movement.
    """

    __slots__ = ("version", "shards", "_points", "_owners")

    def __init__(
        self, version: int, shards: Iterable[int], vnodes: int, salt: str
    ) -> None:
        self.version = version
        self.shards: Tuple[int, ...] = tuple(sorted(set(int(s) for s in shards)))
        if not self.shards:
            raise ConfigurationError("a ring needs at least one shard")
        ring: List[Tuple[int, int]] = []
        for shard in self.shards:
            for replica in range(vnodes):
                ring.append((_point(f"{salt}shard-{shard}#{replica}"), shard))
        ring.sort()
        self._points = [point for point, _shard in ring]
        self._owners = [shard for _point, shard in ring]

    def owner_of(self, point: int) -> int:
        """The shard owning circle position *point* (first point at or
        after it, wrapping)."""
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def shard_for(self, key: str) -> int:
        return self.owner_of(_point(key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(v{self.version}, shards={self.shards})"


class RingDiff:
    """The arcs of the circle whose owner changed between two rings.

    ``intervals`` are half-open arcs ``(lo, hi, old_owner, new_owner)``
    covering hashes ``lo < h <= hi`` (wrapping when ``hi <= lo``): every
    key hashing into one of them moves ``old_owner -> new_owner`` at
    activation, and every key outside them stays put.  The migrator
    streams exactly these ranges; the property tests check nothing else
    moved.
    """

    __slots__ = ("old_version", "new_version", "intervals")

    def __init__(
        self,
        old_version: int,
        new_version: int,
        intervals: Tuple[Tuple[int, int, int, int], ...],
    ) -> None:
        self.old_version = old_version
        self.new_version = new_version
        self.intervals = intervals

    @property
    def moved_fraction(self) -> float:
        """Fraction of the hash circle (≈ of a uniform keyspace) that
        changes owner."""
        total = sum((hi - lo) % CIRCLE for lo, hi, _o, _n in self.intervals)
        return total / CIRCLE

    def movement_of(self, key: str) -> Optional[Tuple[int, int]]:
        """``(old_owner, new_owner)`` if *key* moves, else None."""
        point = _point(key)
        for lo, hi, old_owner, new_owner in self.intervals:
            if lo < hi:
                inside = lo < point <= hi
            else:  # wrapping arc
                inside = point > lo or point <= hi
            if inside:
                return (old_owner, new_owner)
        return None

    def pairs(self) -> set:
        """The distinct ``(old_owner, new_owner)`` movements in this diff."""
        return {(old, new) for _lo, _hi, old, new in self.intervals}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingDiff(v{self.old_version}->v{self.new_version}, "
            f"{len(self.intervals)} arcs, {self.moved_fraction:.3f} moved)"
        )


def ring_diff(old: HashRing, new: HashRing) -> RingDiff:
    """Compute which arcs change owner going from ring *old* to *new*.

    The union of both rings' points partitions the circle into arcs on
    which both ownership functions are constant; comparing the owners at
    each arc's upper boundary classifies the whole arc.
    """
    bounds = sorted(set(old._points) | set(new._points))
    intervals: List[Tuple[int, int, int, int]] = []
    prev = bounds[-1]  # the first arc wraps: (last_bound, first_bound]
    for bound in bounds:
        old_owner = old.owner_of(bound)
        new_owner = new.owner_of(bound)
        if old_owner != new_owner:
            intervals.append((prev, bound, old_owner, new_owner))
        prev = bound
    return RingDiff(old.version, new.version, tuple(intervals))


def arc_fractions(ring: HashRing) -> Dict[int, float]:
    """Fraction of the hash circle each shard of *ring* owns.

    Under uniform key hashing this is the expected share of traffic the
    shard absorbs, which is what the parallel driver's load balancer
    wants as a weight — vnode placement is deliberately uneven, so
    ``1/n_shards`` would misweight small rings badly.
    """
    points, owners = ring._points, ring._owners
    totals: Dict[int, int] = {shard: 0 for shard in ring.shards}
    prev = points[-1]  # first arc wraps: (last_point, first_point]
    for point, owner in zip(points, owners):
        totals[owner] += (point - prev) % CIRCLE
        prev = point
    return {shard: arc / CIRCLE for shard, arc in totals.items()}


class WorkerAssignment:
    """Deterministic cell -> worker placement for the parallel driver.

    Cells (independent sub-simulations — see :mod:`repro.sim.parallel`)
    are weighted and packed onto ``n_workers`` bins with longest-
    processing-time-first greedy packing: heaviest cell onto the
    currently lightest worker, ties broken by (worker index, cell id) so
    the layout is a pure function of the weights.  Weights come from the
    global routing ring when one is supplied — a cell's share is the arc
    fraction its shards own, so a split that moves keyspace into a cell
    also moves scheduling weight toward its worker at ``rebalance()``.
    """

    def __init__(self, cell_ids: Sequence[int], n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.cell_ids: Tuple[int, ...] = tuple(sorted(set(int(c) for c in cell_ids)))
        if not self.cell_ids:
            raise ValueError("need at least one cell")
        self.n_workers = min(n_workers, len(self.cell_ids))
        self.weights: Dict[int, float] = {cell: 1.0 for cell in self.cell_ids}
        self.workers: List[List[int]] = []
        self.worker_of: Dict[int, int] = {}
        self.rebalances = 0
        self._pack()

    def _pack(self) -> None:
        loads = [0.0] * self.n_workers
        bins: List[List[int]] = [[] for _ in range(self.n_workers)]
        # heaviest first; cell id breaks weight ties deterministically
        order = sorted(self.cell_ids, key=lambda c: (-self.weights[c], c))
        for cell in order:
            worker = min(range(self.n_workers), key=lambda w: (loads[w], w))
            bins[worker].append(cell)
            loads[worker] += self.weights[cell]
        for bucket in bins:
            bucket.sort()
        self.workers = bins
        self.worker_of = {
            cell: w for w, bucket in enumerate(bins) for cell in bucket
        }
        self.loads = loads

    def set_weights(self, weights: Dict[int, float]) -> None:
        """Install per-cell weights (missing cells keep weight 0)."""
        self.weights = {cell: float(weights.get(cell, 0.0)) for cell in self.cell_ids}
        self._pack()

    def rebalance(self, ring: HashRing, shard_cell: Dict[int, int]) -> None:
        """Reweight from routing ring arcs and repack.

        *shard_cell* maps each shard id of *ring* to the cell hosting it;
        a cell's weight is the total arc fraction of its shards.  Called
        from an epoch-activation hook so splits/merges shift load between
        workers at the cutover instant.
        """
        arcs = arc_fractions(ring)
        weights = {cell: 0.0 for cell in self.cell_ids}
        for shard, arc in arcs.items():
            cell = shard_cell.get(shard)
            if cell is not None and cell in weights:
                weights[cell] += arc
        self.set_weights(weights)
        self.rebalances += 1

    def imbalance(self) -> float:
        """max worker load / mean worker load (1.0 = perfectly even)."""
        total = sum(self.loads)
        if total <= 0:
            return 1.0
        mean = total / self.n_workers
        return max(self.loads) / mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cells = ", ".join(f"w{w}:{bucket}" for w, bucket in enumerate(self.workers))
        return f"WorkerAssignment({cells})"


class ConsistentHashPartitioner:
    """Maps string keys to shard ids via versioned hash rings.

    Boot installs ring version 0 over shards ``0..n_shards-1``.  The
    reconfiguration subsystem then drives the epoch lifecycle:
    ``stage(shards)`` builds the next version (visible to explicit
    ``version=`` lookups — the migrator's view of the future) and
    ``activate(version)`` flips client routing to it at cutover.
    """

    def __init__(
        self,
        n_shards: int,
        vnodes: int = 64,
        salt: str = "",
        cache_max: int = 4096,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.vnodes = vnodes
        self.salt = salt
        self.cache_max = cache_max
        ring = HashRing(0, range(n_shards), vnodes, salt)
        self._rings: Dict[int, HashRing] = {0: ring}
        self._current = ring
        #: key -> shard memo for the CURRENT ring only; workload keyspaces
        #: are bounded and hot keys repeat (Zipfian), so the per-request
        #: SHA-1 is paid once per key.  Keyed by ring version (stale owners
        #: must never survive a ring change) and bounded: once full, cold
        #: keys pay the hash instead of growing the memo without limit.
        self._cache: Dict[str, int] = {}
        self._cache_version = 0

    # ------------------------------------------------------------------
    # current-ring view (the router's hot path)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Version of the ring client traffic routes by."""
        return self._current.version

    @property
    def shards(self) -> Tuple[int, ...]:
        """Shard ids owning keys in the current ring."""
        return self._current.shards

    @property
    def n_shards(self) -> int:
        return len(self._current.shards)

    def shard_for(self, key: str, version: Optional[int] = None) -> int:
        """The shard owning *key* — in the routing ring, or in an explicit
        *version* (staged rings included: the migrator asks the future)."""
        if version is not None and version != self._current.version:
            return self._rings[version].shard_for(key)
        if self._cache_version != self._current.version:
            self._cache.clear()
            self._cache_version = self._current.version
        shard = self._cache.get(key)
        if shard is None:
            shard = self._current.shard_for(key)
            if len(self._cache) < self.cache_max:
                self._cache[key] = shard
        return shard

    def distribution(self, keys: Iterable[str], version: Optional[int] = None) -> Counter:
        """How many of *keys* each shard owns (diagnostics and tests)."""
        ring = self._current if version is None else self._rings[version]
        counts: Counter = Counter({shard: 0 for shard in ring.shards})
        for key in keys:
            counts[ring.shard_for(key)] += 1
        return counts

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def ring(self, version: Optional[int] = None) -> HashRing:
        return self._current if version is None else self._rings[version]

    def stage(self, version: int, shards: Sequence[int]) -> RingDiff:
        """Register ring *version* over *shards* without flipping routing.

        Returns the diff from the current routing ring; idempotent for a
        version already staged with the same shard set (the coordinator
        re-stages after a crash)."""
        existing = self._rings.get(version)
        if existing is not None:
            if existing.shards != tuple(sorted(set(int(s) for s in shards))):
                raise ConfigurationError(
                    f"ring v{version} already staged with different shards"
                )
            return ring_diff(self._current, existing)
        if version <= max(self._rings):
            raise ConfigurationError(
                f"ring v{version} would not be the newest (have v{max(self._rings)})"
            )
        ring = HashRing(version, shards, self.vnodes, self.salt)
        self._rings[version] = ring
        return ring_diff(self._current, ring)

    def activate(self, version: int) -> None:
        """Flip client routing to staged ring *version* (the cutover)."""
        ring = self._rings.get(version)
        if ring is None:
            raise ConfigurationError(f"ring v{version} was never staged")
        self._current = ring

    def diff(self, old_version: int, new_version: int) -> RingDiff:
        """The movement description between two registered versions."""
        return ring_diff(self._rings[old_version], self._rings[new_version])
