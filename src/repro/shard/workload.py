"""Workload engine: key distributions, operation mixes, client loops.

YCSB-style traffic generation for the sharded service.  Key popularity is
either uniform or Zipfian (the YCSB scrambled-zipfian constant
``theta = 0.99`` by default), operation mixes are read/update fractions
with the standard A/B/C presets, and clients come in two flavours:

* **closed-loop** — a fixed population of clients, each with one request
  outstanding; throughput is set by service latency (the classic
  interactive-client model);
* **open-loop** — requests arrive on a timer regardless of completions,
  modelling exogenous arrival rates that can saturate a shard.

All randomness flows through the kernel's seeded RNG, so a workload is
fully reproducible from the service seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Protocol, Sequence, Tuple

from repro.shard.router import ReadSession
from repro.smr.kv import KVCommand


class KeyDistribution(Protocol):
    """Anything that can draw the next key name from an RNG."""

    def next_key(self, rng) -> str: ...


@dataclass(frozen=True)
class UniformKeys:
    """Every key equally likely."""

    n_keys: int
    prefix: str = "key"

    def next_key(self, rng) -> str:
        return f"{self.prefix}{rng.randrange(self.n_keys)}"


class ZipfianKeys:
    """YCSB's Zipfian generator: item ``i`` drawn with weight ``1/i**theta``.

    Uses the Gray et al. rejection-free formula (the one YCSB ships): two
    constants precomputed from the harmonic-like sum ``zeta(n, theta)``
    turn one uniform draw into a Zipf-distributed rank.  Rank 0 is the
    hottest key.
    """

    def __init__(self, n_keys: int, theta: float = 0.99, prefix: str = "key") -> None:
        if n_keys < 2:
            raise ValueError("Zipfian needs at least two keys")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n_keys = n_keys
        self.theta = theta
        self.prefix = prefix
        self._zetan = sum(1.0 / (i**theta) for i in range(1, n_keys + 1))
        zeta2 = 1.0 + 0.5**theta
        self._alpha = 1.0 / (1.0 - theta)
        denominator = 1.0 - zeta2 / self._zetan
        # n_keys == 2 makes zeta(n) == zeta(2), a 0/0 limit: the first two
        # branches of next_rank then cover every draw, so eta is never used
        self._eta = (
            0.0
            if denominator == 0.0
            else (1.0 - (2.0 / n_keys) ** (1.0 - theta)) / denominator
        )
        #: rank -> key string; Zipfian draws concentrate on few ranks, so
        #: the per-request f-string is built once per distinct key
        self._key_names: dict = {}

    def next_rank(self, rng) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n_keys * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next_key(self, rng) -> str:
        rank = self.next_rank(rng)
        key = self._key_names.get(rank)
        if key is None:
            key = self._key_names[rank] = f"{self.prefix}{rank}"
        return key


@dataclass(frozen=True)
class OperationMix:
    """Read/update fractions (reads are ``get``, updates are ``put``)."""

    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be within [0, 1]")

    def next_op(self, rng) -> str:
        return "get" if rng.random() < self.read_fraction else "put"


#: the standard YCSB core mixes
YCSB_A = OperationMix(read_fraction=0.5)  # update heavy
YCSB_B = OperationMix(read_fraction=0.95)  # read mostly
YCSB_C = OperationMix(read_fraction=1.0)  # read only


def _command(client_id: int, request_id: int, op: str, key: str) -> KVCommand:
    value = f"c{client_id}-r{request_id}" if op == "put" else None
    return KVCommand(op, key, value=value, client=client_id, request_id=request_id)


@dataclass
class ClosedLoopClient:
    """One interactive client: submit, wait for the reply, repeat.

    Each client carries its own :class:`~repro.shard.router.ReadSession`
    (per-shard consistency floors raised by every reply), and routes its
    ``get``s through the frontend's read plane — by the service's default
    read mode, or by this client's ``read_mode`` override.
    """

    client_id: int
    n_ops: int
    keys: KeyDistribution
    mix: OperationMix = YCSB_A
    think_time: float = 0.0
    #: process to run on; None lets the service spread clients round-robin
    pid: Optional[int] = None
    #: per-client read routing override; None follows the service default
    read_mode: Optional[str] = None

    def task(self, env, frontend, recorder) -> Generator:
        session = ReadSession()
        for request_id in range(self.n_ops):
            op = self.mix.next_op(env.rng)
            key = self.keys.next_key(env.rng)
            command = _command(self.client_id, request_id, op, key)
            started = env.now
            if op == "get":
                result = yield from frontend.get(
                    command, mode=self.read_mode, session=session
                )
            else:
                result = yield from frontend.submit(command, session=session)
            recorder.record(command, result, env.now - started)
            if self.think_time > 0.0:
                yield env.sleep(self.think_time)


@dataclass
class ScriptedClient:
    """Replays a fixed ``(op, key, value)`` script in order.

    Deterministic by construction — the parity tests replay the same
    script through the sharded service and the bare replicated log and
    compare outcomes command for command.
    """

    client_id: int
    script: Sequence[Tuple[str, str, Any]]
    pid: Optional[int] = None
    #: per-client read routing override; None follows the service default
    read_mode: Optional[str] = None

    @property
    def n_ops(self) -> int:
        return len(self.script)

    def task(self, env, frontend, recorder) -> Generator:
        session = ReadSession()
        for request_id, (op, key, value) in enumerate(self.script):
            command = KVCommand(
                op, key, value=value, client=self.client_id, request_id=request_id
            )
            started = env.now
            if op == "get":
                result = yield from frontend.get(
                    command, mode=self.read_mode, session=session
                )
            else:
                result = yield from frontend.submit(command, session=session)
            recorder.record(command, result, env.now - started)


@dataclass
class OpenLoopClient:
    """Arrival-rate client: one request every ``interarrival`` delays,
    regardless of how many are still in flight."""

    client_id: int
    n_ops: int
    keys: KeyDistribution
    mix: OperationMix = YCSB_A
    interarrival: float = 1.0
    #: draw exponential gaps (Poisson arrivals) instead of a fixed spacing
    poisson: bool = False
    pid: Optional[int] = None
    #: per-client read routing override; None follows the service default
    read_mode: Optional[str] = None

    def _one(self, env, frontend, recorder, command, session) -> Generator:
        started = env.now
        if command.op == "get":
            result = yield from frontend.get(
                command, mode=self.read_mode, session=session
            )
        else:
            result = yield from frontend.submit(command, session=session)
        recorder.record(command, result, env.now - started)

    def task(self, env, frontend, recorder) -> Generator:
        # one session for the whole open loop: floors are raised as the
        # (possibly overlapping) requests complete
        session = ReadSession()
        for request_id in range(self.n_ops):
            op = self.mix.next_op(env.rng)
            key = self.keys.next_key(env.rng)
            command = _command(self.client_id, request_id, op, key)
            yield env.spawn(
                f"c{self.client_id}-r{request_id}",
                self._one(env, frontend, recorder, command, session),
            )
            gap = self.interarrival
            if self.poisson:
                gap = env.rng.expovariate(1.0 / self.interarrival)
            yield env.sleep(gap)
