"""Byzantine strategies.

A strategy is a drop-in replacement for a protocol's task list on a faulty
process.  Strategies get the same :class:`ProcessEnv` as honest code —
the kernel, memories and signature authority enforce everything they must
not be able to do (forge, spoof, write without permission); everything
else is fair game.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from repro.broadcast.nonequivocating import NAMESPACE as NEB_NS
from repro.broadcast.nonequivocating import make_unit
from repro.consensus.ballots import Ballot
from repro.consensus.cheap_quorum import LEADER_PREFIX, LEADER_REGION
from repro.consensus.messages import Accept, Accepted, Decision, Prepare, Promise
from repro.mem.operations import WriteOp
from repro.mem.permissions import Permission
from repro.sim.environment import ProcessEnv


class ByzantineStrategy:
    """Base: what tasks a Byzantine process runs instead of the protocol."""

    name = "byzantine"

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        raise NotImplementedError


class SilentByzantine(ByzantineStrategy):
    """Does nothing at all — indistinguishable from an initial crash."""

    name = "silent"

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        def idle() -> Generator:
            while True:
                yield env.sleep(1000.0)

        return [("byz-silent", idle())]


class EquivocatingBroadcaster(ByzantineStrategy):
    """Attacks non-equivocating broadcast: writes *different* signed units
    for the same sequence number to different memory replicas, trying to
    make honest processes deliver conflicting messages."""

    name = "neb-equivocator"

    def __init__(self, value_a: Any = "evil-A", value_b: Any = "evil-B") -> None:
        self.value_a = value_a
        self.value_b = value_b

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("byz-equivocator", self._run(env))]

    def _run(self, env: ProcessEnv) -> Generator:
        me = int(env.pid)
        unit_a = make_unit(env, 1, self.value_a)
        unit_b = make_unit(env, 1, self.value_b)
        region = f"{NEB_NS}:{me}"
        key = (NEB_NS, me, 1, me)
        # Split the replicas: half see A, half see B.
        futures = []
        for mid in env.memories:
            unit = unit_a if int(mid) % 2 == 0 else unit_b
            future = yield env.invoke(mid, WriteOp(region=region, key=key, value=unit))
            futures.append(future)
        yield env.wait(futures, count=len(futures))
        while True:
            yield env.sleep(1000.0)


class PaxosValueLiar(ByzantineStrategy):
    """Attacks Robust Backup: emits Paxos messages that misreport protocol
    state (an Accept without promises, a fabricated Decision).  The
    conformance validator must drop it."""

    name = "paxos-liar"

    def __init__(self, fake_value: Any = "forged-decision") -> None:
        self.fake_value = fake_value

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("byz-liar", self._run(env))]

    def _run(self, env: ProcessEnv) -> Generator:
        from repro.trusted.transport import TrustedTransport

        transport = TrustedTransport(env)  # liars do not validate others
        yield env.spawn("byz-neb", transport.neb.delivery_daemon(), daemon=True)
        ballot = Ballot(round=99, pid=int(env.pid))
        # An Accept without any promise quorum behind it:
        yield from transport.t_broadcast(Accept(ballot=ballot, value=self.fake_value))
        yield env.sleep(5.0)
        # A Decision out of thin air:
        yield from transport.t_broadcast(Decision(value=self.fake_value))
        while True:
            yield env.sleep(1000.0)


class CheapQuorumEquivocatorLeader(ByzantineStrategy):
    """A Byzantine Cheap Quorum *leader* that writes different signed values
    to different replicas of the leader region, hoping to split followers."""

    name = "cq-equivocator-leader"

    def __init__(self, value_a: Any = "split-A", value_b: Any = "split-B") -> None:
        self.value_a = value_a
        self.value_b = value_b

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("byz-cq-leader", self._run(env))]

    def _run(self, env: ProcessEnv) -> Generator:
        key = (*LEADER_PREFIX, "value")
        signed_a = env.sign(self.value_a)
        signed_b = env.sign(self.value_b)
        futures = []
        for mid in env.memories:
            signed = signed_a if int(mid) % 2 == 0 else signed_b
            future = yield env.invoke(
                mid, WriteOp(region=LEADER_REGION, key=key, value=signed)
            )
            futures.append(future)
        yield env.wait(futures, count=len(futures))
        while True:
            yield env.sleep(1000.0)


class SlotRewriter(ByzantineStrategy):
    """Broadcasts a valid value, waits for some processes to deliver it,
    then *overwrites its own slot* with a different signed value.

    This attacks the window Algorithm 2's witnessing step exists for: late
    readers must detect the earlier readers' witness copies and refuse to
    deliver the new value — otherwise two correct processes would deliver
    different messages for the same (sender, k).
    """

    name = "slot-rewriter"

    def __init__(self, first: Any = "first", second: Any = "second",
                 rewrite_after: float = 30.0) -> None:
        self.first = first
        self.second = second
        self.rewrite_after = rewrite_after

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("byz-rewriter", self._run(env))]

    def _run(self, env: ProcessEnv) -> Generator:
        me = int(env.pid)
        region = f"{NEB_NS}:{me}"
        key = (NEB_NS, me, 1, me)
        unit_first = make_unit(env, 1, self.first)
        futures = []
        for mid in env.memories:
            future = yield env.invoke(
                mid, WriteOp(region=region, key=key, value=unit_first)
            )
            futures.append(future)
        yield env.wait(futures, count=len(futures))
        yield env.sleep(self.rewrite_after)  # let early readers deliver
        unit_second = make_unit(env, 1, self.second)
        futures = []
        for mid in env.memories:
            future = yield env.invoke(
                mid, WriteOp(region=region, key=key, value=unit_second)
            )
            futures.append(future)
        yield env.wait(futures, count=len(futures))
        while True:
            yield env.sleep(1000.0)


class ProofForger(ByzantineStrategy):
    """Joins the Fast & Robust backup phase claiming top priority.

    T-broadcasts a ``SetupValue`` tagged as proof-class (Definition 3's T)
    whose certificate is garbage — a self-assembled "unanimity proof" with
    too few signers.  Honest receivers must re-verify and demote it to bare
    priority, so it can never outrank an honestly certified value.
    """

    name = "proof-forger"

    def __init__(self, forged_value: Any = "FORGED") -> None:
        self.forged_value = forged_value

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("byz-forger", self._run(env))]

    def _run(self, env: ProcessEnv) -> Generator:
        from repro.consensus.messages import SetupValue
        from repro.crypto.proofs import assemble_proof
        from repro.trusted.transport import TrustedTransport

        transport = TrustedTransport(env)
        yield env.spawn("byz-neb", transport.neb.delivery_daemon(), daemon=True)
        # A "proof" signed only by ourselves — one signer, not n.
        inner = env.sign(self.forged_value)
        copies = (env.sign(inner),)
        fake_proof = assemble_proof(env.authority, env.key, inner, copies)
        yield from transport.t_broadcast(
            SetupValue(value=self.forged_value, priority=0, payload=fake_proof)
        )
        while True:
            yield env.sleep(1000.0)


class PermissionAbuser(ByzantineStrategy):
    """Tries every illegal permission grab/change it can think of; the
    ``legalChange`` policies must turn them all into no-ops."""

    name = "permission-abuser"

    def __init__(self, region: str = LEADER_REGION) -> None:
        self.region = region

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("byz-perm", self._run(env))]

    def _run(self, env: ProcessEnv) -> Generator:
        me = int(env.pid)
        everyone = range(env.n_processes)
        grabs = [
            Permission.exclusive_writer(me, everyone),
            Permission.open(everyone),
            Permission(readwrite=frozenset({me})),
        ]
        while True:
            for grab in grabs:
                for mid in env.memories:
                    yield from env.change_permission(mid, self.region, grab)
            yield env.sleep(5.0)
