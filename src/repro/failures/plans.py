"""Fault plans: when processes and memories crash, who is Byzantine.

A :class:`FaultPlan` is declarative; :meth:`install` arms it on a kernel.
Byzantine processes are marked here (exempting them from the agreement
checker); their strategies are installed by the cluster runner, which
spawns the strategy's tasks instead of the protocol's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError


@dataclass
class FaultPlan:
    """Crash times (virtual) and Byzantine membership."""

    #: pid -> crash time
    process_crashes: Dict[int, float] = field(default_factory=dict)
    #: mid -> crash time
    memory_crashes: Dict[int, float] = field(default_factory=dict)
    #: pid -> strategy (any object the runner knows how to spawn)
    byzantine: Dict[int, object] = field(default_factory=dict)

    def crash_process(self, pid: int, at: float = 0.0) -> "FaultPlan":
        self.process_crashes[pid] = at
        return self

    def crash_memory(self, mid: int, at: float = 0.0) -> "FaultPlan":
        self.memory_crashes[mid] = at
        return self

    def make_byzantine(self, pid: int, strategy: object) -> "FaultPlan":
        self.byzantine[pid] = strategy
        return self

    @property
    def faulty_processes(self) -> set:
        return set(self.process_crashes) | set(self.byzantine)

    def validate(self, n_processes: int, n_memories: int) -> None:
        for pid in self.faulty_processes:
            if not 0 <= pid < n_processes:
                raise ConfigurationError(f"no such process p{pid + 1}")
        for mid in self.memory_crashes:
            if not 0 <= mid < n_memories:
                raise ConfigurationError(f"no such memory mu{mid + 1}")
        overlap = set(self.process_crashes) & set(self.byzantine)
        if overlap:
            raise ConfigurationError(
                f"processes {overlap} are both crashed and Byzantine"
            )

    def install(self, kernel) -> None:
        """Arm crash timers and mark Byzantine processes on *kernel*."""
        for pid, at in self.process_crashes.items():
            kernel.call_at(at, lambda p=pid: kernel.crash_process(p))
        for mid, at in self.memory_crashes.items():
            kernel.call_at(at, lambda m=mid: kernel.crash_memory(m))
        for pid in self.byzantine:
            kernel.mark_byzantine(pid)
