"""Fault plans: when processes and memories crash, who is Byzantine.

A :class:`FaultPlan` is declarative; :meth:`install` arms it on a kernel.
Byzantine processes are marked here (exempting them from the agreement
checker); their strategies are installed by the cluster runner, which
spawns the strategy's tasks instead of the protocol's.

FaultPlan is now the *static* corner of the failure plane: crash-at-time
and statically Byzantine seats only.  It compiles to the same typed fault
events as the full event-driven timeline — recovery, partitions, link
chaos, permission storms live in :class:`~repro.failures.script.FaultScript`
(``plan.to_script()`` lifts a plan into one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.faults import CrashMemory, CrashProcess


@dataclass
class FaultPlan:
    """Crash times (virtual) and Byzantine membership."""

    #: pid -> crash time
    process_crashes: Dict[int, float] = field(default_factory=dict)
    #: mid -> crash time
    memory_crashes: Dict[int, float] = field(default_factory=dict)
    #: pid -> strategy (any object the runner knows how to spawn)
    byzantine: Dict[int, object] = field(default_factory=dict)

    def crash_process(self, pid: int, at: float = 0.0) -> "FaultPlan":
        self.process_crashes[pid] = at
        return self

    def crash_memory(self, mid: int, at: float = 0.0) -> "FaultPlan":
        self.memory_crashes[mid] = at
        return self

    def make_byzantine(self, pid: int, strategy: object) -> "FaultPlan":
        self.byzantine[pid] = strategy
        return self

    @property
    def faulty_processes(self) -> set:
        return set(self.process_crashes) | set(self.byzantine)

    def validate(self, n_processes: int, n_memories: int) -> None:
        for pid in self.faulty_processes:
            if not 0 <= pid < n_processes:
                raise ConfigurationError(f"no such process p{pid + 1}")
        for mid in self.memory_crashes:
            if not 0 <= mid < n_memories:
                raise ConfigurationError(f"no such memory mu{mid + 1}")
        overlap = set(self.process_crashes) & set(self.byzantine)
        if overlap:
            raise ConfigurationError(
                f"processes {overlap} are both crashed and Byzantine"
            )

    def install(self, kernel) -> None:
        """Arm crash timers and mark Byzantine processes on *kernel*.

        Crashes are scheduled as typed fault-timer queue entries (one
        ``EV_FAULT`` event each), consistent with the kernel's closure-free
        event queue — no per-fault lambda is allocated.
        """
        for pid, at in self.process_crashes.items():
            kernel.schedule_fault(at, CrashProcess(pid))
        for mid, at in self.memory_crashes.items():
            kernel.schedule_fault(at, CrashMemory(mid))
        for pid in self.byzantine:
            kernel.mark_byzantine(pid)

    def to_script(self):
        """Lift this static plan into an equivalent event-driven
        :class:`~repro.failures.script.FaultScript` (for composing recovery
        or partitions on top of an existing plan)."""
        from repro.failures.script import FaultScript

        script = FaultScript()
        for pid, at in self.process_crashes.items():
            script.at(at).crash_process(pid)
        for mid, at in self.memory_crashes.items():
            script.at(at).crash_memory(mid)
        for pid, strategy in self.byzantine.items():
            script.make_byzantine(pid, strategy)
        return script
