"""FaultScript: an event-driven failure timeline, as a chainable DSL.

Where :class:`~repro.failures.plans.FaultPlan` could only freeze faults at
t=0 (permanent crashes, statically Byzantine seats), a FaultScript is a
*timeline*: crash AND recover, partition AND heal, link chaos with expiry,
permission-revocation storms — the changing failure landscape the paper's
dynamic-permission protocols are built to survive.

    script = (
        FaultScript()
        .at(1.0).crash_process(0).recover(at=30.0)
        .at(2.0).partition({0, 1}, {2}).heal(at=25.0)
        .at(3.0).delay_link(1, 2, factor=5.0, until=20.0)
        .at(4.0).permission_storm(pid=2, region="pmp", shots=6, spacing=1.0)
    )
    script.install(kernel)

``install`` compiles the timeline into typed fault events (one closure-free
``EV_FAULT`` queue entry each — see :mod:`repro.sim.faults`) executed by
the kernel's :class:`~repro.sim.faults.FailureController`.  The cluster
runners accept a FaultScript anywhere a FaultPlan was accepted; FaultPlan
itself is now a thin compatibility shim compiling to the same events.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.mem.permissions import Permission
from repro.sim.faults import (
    FK_CRASH_MEM,
    FK_CRASH_PROC,
    FK_LINK_CLEAR,
    FK_LINK_SET,
    FK_PARTITION,
    FK_PERM_CHANGE,
    FK_RECOVER_MEM,
    FK_RECOVER_PROC,
    ClearLinkFault,
    CrashMemory,
    CrashProcess,
    FaultEvent,
    Heal,
    LinkFault,
    Partition,
    PermissionChange,
    RecoverMemory,
    RecoverProcess,
    SetLinkFault,
)


class FaultScript:
    """A time-ordered fault timeline plus Byzantine seat assignments."""

    def __init__(self) -> None:
        #: (time, event) in append order; install preserves same-time order
        self.events: List[Tuple[float, FaultEvent]] = []
        #: pid -> strategy (spawned by the cluster runner, as for FaultPlan)
        self.byzantine: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def at(self, time: float) -> "_Moment":
        """Open the timeline at virtual *time*; chain fault verbs off it."""
        if time < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {time}")
        return _Moment(self, float(time))

    def add(self, time: float, event: FaultEvent) -> "FaultScript":
        """Append one pre-built fault event (the DSL verbs call this)."""
        self.events.append((float(time), event))
        return self

    def make_byzantine(self, pid: int, strategy: object) -> "FaultScript":
        self.byzantine[int(pid)] = strategy
        return self

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _final_down(self, crash_kind: int, recover_kind: int) -> Set[int]:
        """Subjects crashed at the end of the timeline (never recovered)."""
        state: Dict[int, bool] = {}
        for _time, event in sorted(self.events, key=lambda pair: pair[0]):
            if event.kind == crash_kind:
                state[event.pid if crash_kind == FK_CRASH_PROC else event.mid] = True
            elif event.kind == recover_kind:
                state[event.pid if recover_kind == FK_RECOVER_PROC else event.mid] = False
        return {subject for subject, down in state.items() if down}

    @property
    def faulty_processes(self) -> Set[int]:
        """Processes faulty *at the end of the run*: Byzantine seats plus
        crashes never followed by a recovery.  A crashed-then-recovered
        process is expected to rejoin — and to decide."""
        return self._final_down(FK_CRASH_PROC, FK_RECOVER_PROC) | set(self.byzantine)

    # ------------------------------------------------------------------
    # validation + installation
    # ------------------------------------------------------------------
    def validate(self, n_processes: int, n_memories: int) -> None:
        def check_pid(pid: int) -> None:
            if not 0 <= pid < n_processes:
                raise ConfigurationError(f"no such process p{pid + 1}")

        def check_mid(mid: int) -> None:
            if not 0 <= mid < n_memories:
                raise ConfigurationError(f"no such memory mu{mid + 1}")

        for _time, event in self.events:
            kind = event.kind
            if kind in (FK_CRASH_PROC, FK_RECOVER_PROC):
                check_pid(event.pid)
            elif kind in (FK_CRASH_MEM, FK_RECOVER_MEM):
                check_mid(event.mid)
            elif kind == FK_PARTITION:
                seen: Set[int] = set()
                for group in event.groups:
                    overlap = seen & group
                    if overlap:
                        raise ConfigurationError(
                            f"partition groups overlap on {sorted(overlap)}"
                        )
                    seen |= group
                    for pid in group:
                        check_pid(pid)
            elif kind in (FK_LINK_SET, FK_LINK_CLEAR):
                check_pid(event.src)
                check_pid(event.dst)
            elif kind == FK_PERM_CHANGE:
                check_pid(event.pid)
                if event.mids is not None:
                    for mid in event.mids:
                        check_mid(mid)
        for pid in self.byzantine:
            check_pid(pid)
        crashed_byzantine = self._final_down(FK_CRASH_PROC, FK_RECOVER_PROC) & set(
            self.byzantine
        )
        if crashed_byzantine:
            raise ConfigurationError(
                f"processes {crashed_byzantine} are both crashed and Byzantine"
            )

    def install(self, kernel) -> None:
        """Arm every event as a typed fault-timer entry on *kernel*."""
        for time, event in self.events:
            kernel.schedule_fault(time, event)
        for pid in self.byzantine:
            kernel.mark_byzantine(pid)


class _Moment:
    """One instant on a script's timeline; each verb appends events."""

    def __init__(self, script: FaultScript, time: float) -> None:
        self._script = script
        self._time = time

    # -- crash / recover ------------------------------------------------
    def crash_process(self, pid: int) -> "_CrashedProcess":
        self._script.add(self._time, CrashProcess(pid))
        return _CrashedProcess(self._script, pid, self._time)

    def recover_process(self, pid: int) -> FaultScript:
        return self._script.add(self._time, RecoverProcess(pid))

    def crash_memory(self, mid: int) -> "_CrashedMemory":
        self._script.add(self._time, CrashMemory(mid))
        return _CrashedMemory(self._script, mid, self._time)

    def recover_memory(self, mid: int, wipe: bool = False) -> FaultScript:
        return self._script.add(self._time, RecoverMemory(mid, wipe=wipe))

    # -- partitions ------------------------------------------------------
    def partition(self, *groups: Iterable[int]) -> "_Partitioned":
        if len(groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        self._script.add(self._time, Partition(groups))
        return _Partitioned(self._script, self._time)

    def heal(self) -> FaultScript:
        return self._script.add(self._time, Heal())

    # -- link chaos ------------------------------------------------------
    def _link(
        self,
        src: int,
        dst: int,
        fault: LinkFault,
        until: Optional[float],
        symmetric: bool,
    ) -> FaultScript:
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for a, b in pairs:
            self._script.add(self._time, SetLinkFault(a, b, fault))
            if until is not None:
                if until <= self._time:
                    raise ConfigurationError("link fault must expire after it starts")
                # expire exactly this filter: overlapping faults on the
                # same link each carry their own expiry
                self._script.add(until, ClearLinkFault(a, b, fault))
        return self._script

    def delay_link(
        self,
        src: int,
        dst: int,
        factor: float = 1.0,
        extra: float = 0.0,
        until: Optional[float] = None,
        symmetric: bool = False,
    ) -> FaultScript:
        """Inflate flight time on ``src -> dst``: ``delay*factor + extra``."""
        return self._link(
            src, dst, LinkFault(delay_factor=factor, extra_delay=extra), until, symmetric
        )

    def drop_link(
        self,
        src: int,
        dst: int,
        prob: float = 1.0,
        until: Optional[float] = None,
        symmetric: bool = False,
    ) -> FaultScript:
        """Lose each message on ``src -> dst`` with probability *prob*."""
        return self._link(src, dst, LinkFault(drop_prob=prob), until, symmetric)

    def duplicate_link(
        self,
        src: int,
        dst: int,
        prob: float = 1.0,
        until: Optional[float] = None,
        symmetric: bool = False,
    ) -> FaultScript:
        """Deliver a second copy of each message with probability *prob*."""
        return self._link(src, dst, LinkFault(duplicate_prob=prob), until, symmetric)

    # -- permission chaos ------------------------------------------------
    def permission_storm(
        self,
        pid: int,
        region: str,
        shots: int = 4,
        spacing: float = 1.0,
        mids: Optional[Iterable[int]] = None,
        permission: Optional[Permission] = None,
    ) -> FaultScript:
        """Fire *shots* adversarial ``changePermission`` bursts from *pid*
        against *region*, one every *spacing* time units, on every memory
        (or just *mids*).  ``permission=None`` requests the exclusive-grab
        shape for *pid* — legal under PMP's policy, so each shot genuinely
        steals the region and forces the leader back through its prepare
        phase."""
        if shots < 1:
            raise ConfigurationError("a storm needs at least one shot")
        if spacing < 0:
            raise ConfigurationError("storm spacing must be >= 0")
        mids_tuple = None if mids is None else tuple(mids)
        for shot in range(shots):
            self._script.add(
                self._time + shot * spacing,
                PermissionChange(pid, region, mids=mids_tuple, permission=permission),
            )
        return self._script


class _Follow:
    """Follow-up handle: adds recovery sugar, passes everything else back
    to the script so chains keep flowing (``...crash_process(0).at(9)...``)."""

    def __init__(self, script: FaultScript) -> None:
        self._script = script

    def __getattr__(self, name):
        return getattr(self._script, name)


class _CrashedProcess(_Follow):
    def __init__(self, script: FaultScript, pid: int, crashed_at: float) -> None:
        super().__init__(script)
        self._pid = pid
        self._crashed_at = crashed_at

    def recover(self, at: float) -> FaultScript:
        """Schedule this process's recovery at virtual time *at*."""
        if at <= self._crashed_at:
            raise ConfigurationError("recovery must follow the crash")
        return self._script.add(at, RecoverProcess(self._pid))


class _CrashedMemory(_Follow):
    def __init__(self, script: FaultScript, mid: int, crashed_at: float) -> None:
        super().__init__(script)
        self._mid = mid
        self._crashed_at = crashed_at

    def recover(self, at: float, wipe: bool = False) -> FaultScript:
        """Schedule this memory's revival at *at* (optionally wiped)."""
        if at <= self._crashed_at:
            raise ConfigurationError("recovery must follow the crash")
        return self._script.add(at, RecoverMemory(self._mid, wipe=wipe))


class _Partitioned(_Follow):
    def __init__(self, script: FaultScript, partitioned_at: float) -> None:
        super().__init__(script)
        self._partitioned_at = partitioned_at

    def heal(self, at: float) -> FaultScript:
        """Schedule the partition's heal at virtual time *at*."""
        if at <= self._partitioned_at:
            raise ConfigurationError("the heal must follow the partition")
        return self._script.add(at, Heal())
