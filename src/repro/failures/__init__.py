"""Failure injection: crash schedules and Byzantine strategies."""

from repro.failures.byzantine import (
    ByzantineStrategy,
    CheapQuorumEquivocatorLeader,
    EquivocatingBroadcaster,
    PaxosValueLiar,
    PermissionAbuser,
    ProofForger,
    SilentByzantine,
    SlotRewriter,
)
from repro.failures.plans import FaultPlan
from repro.failures.script import FaultScript
from repro.sim.faults import LinkFault

__all__ = [
    "ByzantineStrategy",
    "CheapQuorumEquivocatorLeader",
    "EquivocatingBroadcaster",
    "FaultPlan",
    "FaultScript",
    "LinkFault",
    "PaxosValueLiar",
    "PermissionAbuser",
    "ProofForger",
    "SilentByzantine",
    "SlotRewriter",
]
