"""Failure injection: crash schedules and Byzantine strategies."""

from repro.failures.byzantine import (
    ByzantineStrategy,
    CheapQuorumEquivocatorLeader,
    EquivocatingBroadcaster,
    PaxosValueLiar,
    PermissionAbuser,
    ProofForger,
    SilentByzantine,
    SlotRewriter,
)
from repro.failures.plans import FaultPlan

__all__ = [
    "ByzantineStrategy",
    "CheapQuorumEquivocatorLeader",
    "EquivocatingBroadcaster",
    "FaultPlan",
    "PaxosValueLiar",
    "PermissionAbuser",
    "ProofForger",
    "SilentByzantine",
    "SlotRewriter",
]
