"""Canned experiment scenarios.

Benchmarks, examples and downstream users keep re-building the same
configurations; this module names them.  Every scenario returns a fully
wired :class:`~repro.core.cluster.Cluster` so callers can still inspect the
kernel, tweak Ω, or inject extra faults before running.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.consensus.aligned_paxos import AlignedConfig, AlignedPaxos
from repro.consensus.base import ConsensusProtocol
from repro.consensus.cheap_quorum import CheapQuorumConfig
from repro.consensus.fast_robust import FastRobust, FastRobustConfig
from repro.consensus.omega import crash_aware_omega, leader_schedule
from repro.consensus.protected_memory_paxos import REGION as PMP_REGION
from repro.consensus.protected_memory_paxos import ProtectedMemoryPaxos
from repro.core.cluster import Cluster, ClusterConfig
from repro.errors import ConfigurationError
from repro.failures.byzantine import ByzantineStrategy
from repro.failures.plans import FaultPlan
from repro.failures.script import FaultScript
from repro.sim.latency import LatencyModel, NominalLatency, PartialSynchrony


def common_case(
    protocol: ConsensusProtocol,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """The paper's common-case execution: synchronous, failure-free."""
    return Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
    )


def leader_crash(
    protocol: ConsensusProtocol,
    crash_at: float = 1.0,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Initial leader crashes at *crash_at*; Ω tracks the crash."""
    faults = FaultPlan().crash_process(0, at=crash_at)
    cluster = Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
        faults,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster


def memory_minority_crash(
    protocol: ConsensusProtocol,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Crash the largest tolerable set of memories, all at t=0."""
    faults = FaultPlan()
    for mid in range((n_memories - 1) // 2):
        faults.crash_memory(mid, at=0.0)
    return Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
        faults,
    )


def byzantine_seat(
    strategy: ByzantineStrategy,
    seat: int = 2,
    n_processes: int = 3,
    n_memories: int = 3,
    honest_leader: Optional[int] = None,
    seed: int = 0,
) -> Cluster:
    """Fast & Robust with one Byzantine process running *strategy*.

    Timeouts are shortened so the fallback engages quickly; pass
    ``honest_leader`` when the strategy occupies the leader seat.
    """
    config = FastRobustConfig(
        cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
    )
    faults = FaultPlan().make_byzantine(seat, strategy)
    omega = None if honest_leader is None else (lambda now: honest_leader)
    return Cluster(
        FastRobust(config),
        ClusterConfig(
            n_processes, n_memories, seed=seed, deadline=60_000, omega=omega
        ),
        faults,
    )


def mixed_agent_crashes(
    proc_crashes: Sequence[int],
    mem_crashes: Sequence[int],
    n_processes: int = 3,
    n_memories: int = 3,
    variant: str = "protected",
    seed: int = 0,
) -> Cluster:
    """Aligned Paxos with an arbitrary process/memory crash mix at t=1."""
    faults = FaultPlan()
    for pid in proc_crashes:
        faults.crash_process(pid, at=1.0)
    for mid in mem_crashes:
        faults.crash_memory(mid, at=1.0)
    cluster = Cluster(
        AlignedPaxos(AlignedConfig(variant=variant)),
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
        faults,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster


def partition_minority(
    protocol: Optional[ConsensusProtocol] = None,
    partition_at: float = 1.0,
    heal_at: float = 25.0,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Partition the minority away, then heal; everybody still decides.

    While partitioned, the minority hears nothing: the majority's decision
    broadcasts drop on the severed links.  After the heal, Ω hands the
    minority leadership and it rejoins through the *memories* — the full
    permission-takeover read adopts the committed value (a partition severs
    process links, not RDMA access), so the minority decides the same value
    without any process ever re-sending a message.
    """
    if n_processes < 3:
        raise ConfigurationError(
            "partition_minority needs n_processes >= 3 (a 2-process system "
            "has no minority to cut off)"
        )
    protocol = protocol or ProtectedMemoryPaxos()
    minority = set(range(n_processes // 2 + 1, n_processes))
    majority = set(range(n_processes // 2 + 1))
    script = FaultScript()
    script.at(partition_at).partition(majority, minority).heal(at=heal_at)
    cluster = Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=60_000),
        script,
    )
    cluster.kernel.omega = leader_schedule([(0.0, 0), (heal_at, min(minority))])
    return cluster


def crash_recover_leader(
    protocol: Optional[ConsensusProtocol] = None,
    crash_at: float = 1.0,
    recover_at: float = 30.0,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """The initial leader crashes mid-attempt and later comes back.

    While it is down, Ω moves on and a successor finishes via the
    permission takeover.  The recovered leader restarts with empty state,
    re-runs the full prepare (recovery never skips it), adopts whatever
    was committed in its absence, and decides the same value — the
    Protected Memory Paxos permission handoff, exercised in both
    directions.
    """
    protocol = protocol or ProtectedMemoryPaxos()
    script = FaultScript()
    script.at(crash_at).crash_process(0).recover(at=recover_at)
    cluster = Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=60_000),
        script,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster


def permission_storm(
    protocol: Optional[ConsensusProtocol] = None,
    storm_at: float = 0.5,
    shots: int = 6,
    spacing: float = 1.5,
    storm_pid: int = 2,
    region: str = PMP_REGION,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """An adversary hammers ``changePermission`` while the leader commits.

    Each shot legally grabs exclusive write for *storm_pid* (the takeover
    shape PMP's ``legalChange`` must allow), NAK-ing the leader's in-flight
    writes and forcing it back through prepare — over and over, until the
    storm ends and the leader out-retries it.  Decides despite the churn;
    the fault timeline records every grab and its ACK/NAK.
    """
    protocol = protocol or ProtectedMemoryPaxos()
    script = FaultScript()
    script.at(storm_at).permission_storm(
        pid=storm_pid, region=region, shots=shots, spacing=spacing
    )
    return Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=60_000),
        script,
    )


def rolling_restart(
    protocol: Optional[ConsensusProtocol] = None,
    first_at: float = 1.0,
    period: float = 16.0,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Crash and recover every process in sequence, one down at a time.

    The maintenance-window scenario: each process is down for half a
    period, with Ω tracking the survivors.  Decisions taken before a
    restart stay decided (the ledger enforces irrevocability); restarted
    processes re-adopt them from the memories.  ``cluster.run`` stops once
    everybody decided — drive the kernel past the full window
    (``cluster.start(...); cluster.kernel.run(until=...)``) to exercise
    every restart.
    """
    protocol = protocol or ProtectedMemoryPaxos()
    script = FaultScript()
    for pid in range(n_processes):
        down = first_at + pid * period
        script.at(down).crash_process(pid).recover(at=down + period / 2)
    cluster = Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=120_000),
        script,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster


def asynchronous_period(
    protocol: ConsensusProtocol,
    gst: float = 100.0,
    chaos: float = 25.0,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Partial synchrony: chaotic until *gst*, bounded afterwards."""
    return Cluster(
        protocol,
        ClusterConfig(
            n_processes,
            n_memories,
            latency=PartialSynchrony(gst=gst, chaos=chaos),
            seed=seed,
            deadline=120_000,
        ),
    )
