"""Canned experiment scenarios.

Benchmarks, examples and downstream users keep re-building the same
configurations; this module names them.  Every scenario returns a fully
wired :class:`~repro.core.cluster.Cluster` so callers can still inspect the
kernel, tweak Ω, or inject extra faults before running.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.consensus.aligned_paxos import AlignedConfig, AlignedPaxos
from repro.consensus.base import ConsensusProtocol
from repro.consensus.cheap_quorum import CheapQuorumConfig
from repro.consensus.fast_robust import FastRobust, FastRobustConfig
from repro.consensus.omega import crash_aware_omega
from repro.consensus.protected_memory_paxos import ProtectedMemoryPaxos
from repro.core.cluster import Cluster, ClusterConfig
from repro.failures.byzantine import ByzantineStrategy
from repro.failures.plans import FaultPlan
from repro.sim.latency import LatencyModel, NominalLatency, PartialSynchrony


def common_case(
    protocol: ConsensusProtocol,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """The paper's common-case execution: synchronous, failure-free."""
    return Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
    )


def leader_crash(
    protocol: ConsensusProtocol,
    crash_at: float = 1.0,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Initial leader crashes at *crash_at*; Ω tracks the crash."""
    faults = FaultPlan().crash_process(0, at=crash_at)
    cluster = Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
        faults,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster


def memory_minority_crash(
    protocol: ConsensusProtocol,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Crash the largest tolerable set of memories, all at t=0."""
    faults = FaultPlan()
    for mid in range((n_memories - 1) // 2):
        faults.crash_memory(mid, at=0.0)
    return Cluster(
        protocol,
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
        faults,
    )


def byzantine_seat(
    strategy: ByzantineStrategy,
    seat: int = 2,
    n_processes: int = 3,
    n_memories: int = 3,
    honest_leader: Optional[int] = None,
    seed: int = 0,
) -> Cluster:
    """Fast & Robust with one Byzantine process running *strategy*.

    Timeouts are shortened so the fallback engages quickly; pass
    ``honest_leader`` when the strategy occupies the leader seat.
    """
    config = FastRobustConfig(
        cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
    )
    faults = FaultPlan().make_byzantine(seat, strategy)
    omega = None if honest_leader is None else (lambda now: honest_leader)
    return Cluster(
        FastRobust(config),
        ClusterConfig(
            n_processes, n_memories, seed=seed, deadline=60_000, omega=omega
        ),
        faults,
    )


def mixed_agent_crashes(
    proc_crashes: Sequence[int],
    mem_crashes: Sequence[int],
    n_processes: int = 3,
    n_memories: int = 3,
    variant: str = "protected",
    seed: int = 0,
) -> Cluster:
    """Aligned Paxos with an arbitrary process/memory crash mix at t=1."""
    faults = FaultPlan()
    for pid in proc_crashes:
        faults.crash_process(pid, at=1.0)
    for mid in mem_crashes:
        faults.crash_memory(mid, at=1.0)
    cluster = Cluster(
        AlignedPaxos(AlignedConfig(variant=variant)),
        ClusterConfig(n_processes, n_memories, seed=seed, deadline=30_000),
        faults,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster


def asynchronous_period(
    protocol: ConsensusProtocol,
    gst: float = 100.0,
    chaos: float = 25.0,
    n_processes: int = 3,
    n_memories: int = 3,
    seed: int = 0,
) -> Cluster:
    """Partial synchrony: chaotic until *gst*, bounded afterwards."""
    return Cluster(
        protocol,
        ClusterConfig(
            n_processes,
            n_memories,
            latency=PartialSynchrony(gst=gst, chaos=chaos),
            seed=seed,
            deadline=120_000,
        ),
    )
