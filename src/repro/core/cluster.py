"""Cluster assembly and the one-call experiment runner.

:func:`run_consensus` is the front door used by examples, tests and
benchmarks: build an M&M cluster, install a protocol and a fault plan, run
to quiescence or deadline, and return a :class:`RunResult` with decisions,
delay counts and counters.

    from repro import run_consensus, ProtectedMemoryPaxos

    result = run_consensus(
        ProtectedMemoryPaxos(), n_processes=3, n_memories=3,
        inputs=["a", "b", "c"],
    )
    assert result.agreed and result.earliest_decision_delay == 2.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Set

from repro.consensus.base import ConsensusProtocol
from repro.errors import ConfigurationError
from repro.failures.plans import FaultPlan
from repro.mem.layout import MemoryLayout
from repro.mem.regions import RegionSpec
from repro.metrics.ledger import MetricsLedger
from repro.sim.environment import ProcessEnv
from repro.sim.kernel import Kernel, SimConfig, Task
from repro.sim.latency import LatencyModel, NominalLatency
from repro.types import ProcessId


@dataclass
class ClusterConfig:
    """Everything needed to stand up one simulated M&M system."""

    n_processes: int
    n_memories: int = 3
    latency: LatencyModel = field(default_factory=NominalLatency)
    seed: int = 0
    trace: bool = False
    strict_safety: bool = True
    omega: Optional[object] = None  # OmegaFn; default: p1 forever
    deadline: float = 10_000.0


@dataclass
class RunResult:
    """Outcome of one consensus run."""

    kernel: Kernel
    inputs: List[Any]
    all_decided: bool
    final_time: float

    @property
    def metrics(self) -> MetricsLedger:
        return self.kernel.metrics

    @property
    def decisions(self) -> Dict[ProcessId, Any]:
        return {
            pid: record.value for pid, record in self.metrics.decisions.items()
        }

    @property
    def decided_values(self) -> Set[Any]:
        return self.metrics.decided_values()

    @property
    def agreed(self) -> bool:
        """Agreement over correct processes (and at least one decision)."""
        values = self.decided_values
        return len(values) == 1 and not self.metrics.violations

    @property
    def valid(self) -> bool:
        """Weak validity: every decided value was somebody's input."""
        return all(value in self.inputs for value in self.decided_values)

    @property
    def earliest_decision_delay(self) -> Optional[float]:
        return self.metrics.earliest_decision_delay()

    def delay_of(self, pid: int) -> Optional[float]:
        return self.metrics.delays_of(ProcessId(pid))

    @property
    def signatures_used(self) -> int:
        return self.metrics.total_signatures()

    def summary(self) -> str:
        """Human-readable one-screen account of the run."""
        lines = [
            f"run finished at t={self.final_time:g} "
            f"({'all decided' if self.all_decided else 'NOT all decided'})",
            f"  agreement: {'ok' if self.agreed or not self.decided_values else 'VIOLATED'}"
            + (f" ({len(self.metrics.violations)} violations)" if self.metrics.violations else ""),
            f"  validity : {'ok' if self.valid else 'VIOLATED'}",
        ]
        for pid in sorted(self.metrics.decisions):
            record = self.metrics.decisions[pid]
            delay = "?" if record.delays is None else f"{record.delays:g}"
            lines.append(
                f"  p{int(pid)+1}: decided {record.value!r} at t={record.decided_at:g} "
                f"({delay} delays)"
            )
        lines.append(
            f"  totals: {self.metrics.total_messages()} messages, "
            f"{self.metrics.total_mem_ops()} memory ops, "
            f"{self.metrics.total_signatures()} signatures"
        )
        return "\n".join(lines)


class ClusterBase:
    """Shared kernel assembly of both cluster runners.

    Owns everything :class:`Cluster` and :class:`MultiGroupCluster` used to
    duplicate: fault validation (plans *and* event-driven FaultScripts —
    both expose ``validate``/``install``/``byzantine``/``faulty_processes``),
    the ``ClusterConfig`` → :class:`SimConfig` translation, kernel
    construction from a region list, per-process environment caching, and
    idempotent fault installation.
    """

    def __init__(
        self,
        config: ClusterConfig,
        regions: Sequence[RegionSpec],
        faults: Optional[Any] = None,
    ) -> None:
        self.config = config
        self.faults = faults if faults is not None else FaultPlan()
        self.faults.validate(config.n_processes, config.n_memories)
        sim_config = SimConfig(
            n_processes=config.n_processes,
            n_memories=config.n_memories,
            latency=config.latency,
            seed=config.seed,
            trace=config.trace,
            strict_safety=config.strict_safety,
            omega=config.omega,
        )
        self.kernel = Kernel(sim_config, MemoryLayout(list(regions)))
        self.envs: Dict[int, ProcessEnv] = {}
        self._faults_installed = False

    def env_for(self, pid: int) -> ProcessEnv:
        if pid not in self.envs:
            self.envs[pid] = ProcessEnv(self.kernel, ProcessId(pid))
        return self.envs[pid]

    def install_faults(self) -> None:
        """Arm the fault timeline on the kernel (once)."""
        if not self._faults_installed:
            self.faults.install(self.kernel)
            self._faults_installed = True


class Cluster(ClusterBase):
    """A configured kernel plus protocol wiring, ready to run."""

    def __init__(
        self,
        protocol: ConsensusProtocol,
        config: ClusterConfig,
        faults: Optional[Any] = None,
    ) -> None:
        self.protocol = protocol
        super().__init__(
            config,
            protocol.regions(config.n_processes, config.n_memories),
            faults,
        )
        self._inputs: Optional[List[Any]] = None

    def start(self, inputs: Sequence[Any]) -> None:
        """Install faults and spawn every process's tasks."""
        if len(inputs) != self.config.n_processes:
            raise ConfigurationError(
                f"need {self.config.n_processes} inputs, got {len(inputs)}"
            )
        self._inputs = list(inputs)
        self.install_faults()
        self.kernel.failures.on_recover(self._respawn)
        for pid in range(self.config.n_processes):
            env = self.env_for(pid)
            strategy = self.faults.byzantine.get(pid)
            if strategy is not None:
                tasks = strategy.tasks(env, inputs[pid])
            else:
                env.mark_proposed()
                tasks = self.protocol.tasks(env, inputs[pid])
            for name, gen in tasks:
                self.kernel.spawn(pid, name, gen)

    def _respawn(self, pid: ProcessId) -> None:
        """Recovery hook: restart this process's protocol tasks.

        The restarted tasks get the process's original input; everything
        else is rebuilt from the shared memories by the protocol's recovery
        path (``recovery_tasks``), so a recovered leader re-adopts whatever
        was committed while it was down.
        """
        if self._inputs is None:
            return
        pid = int(pid)
        if pid in self.faults.byzantine:
            return  # Byzantine seats have no honest state to recover
        env = self.env_for(pid)
        env.mark_proposed()
        for name, gen in self.protocol.recovery_tasks(env, self._inputs[pid]):
            self.kernel.spawn(pid, name, gen)

    def run(self, inputs: Sequence[Any]) -> RunResult:
        """Start and run until all correct live processes decide (or deadline).

        Processes that crash *and recover* during the run are expected to
        decide too — only never-recovered crashes and Byzantine seats are
        exempt (``faults.faulty_processes`` reports end-of-run state).
        """
        self.start(inputs)
        expect: Set[ProcessId] = {
            ProcessId(p)
            for p in range(self.config.n_processes)
            if p not in self.faults.faulty_processes
        }
        done = self.kernel.run_until_decided(expect, deadline=self.config.deadline)
        return RunResult(
            kernel=self.kernel,
            inputs=list(inputs),
            all_decided=done,
            final_time=self.kernel.now,
        )


class MultiGroupCluster(ClusterBase):
    """One kernel hosting several independent protocol groups.

    The single-protocol :class:`Cluster` derives its memory layout from one
    protocol's regions; a sharded service instead lays out the union of
    every group's regions (each namespaced, so groups never interfere) and
    spawns whatever task mix it needs per process — including re-spawning
    it per process on recovery, via hooks the service registers with the
    kernel's failure controller.
    """

    def spawn(self, pid: int, name: str, gen: Generator, daemon: bool = True) -> Task:
        """Register one task of process *pid*; returns the kernel task."""
        return self.kernel.spawn(ProcessId(pid), name, gen, daemon=daemon)

    def run_until(
        self,
        goal: Callable[[], bool],
        deadline: Optional[float] = None,
    ) -> bool:
        """Install faults, run until *goal* (or deadline); True on success."""
        self.install_faults()
        self.kernel.run(
            until=self.config.deadline if deadline is None else deadline,
            stop_when=goal,
        )
        return goal()


class ElasticCluster(MultiGroupCluster):
    """A multi-group cluster whose region set GROWS at runtime.

    :class:`MultiGroupCluster` lays out the union of every group's regions
    at boot; an elastic service cannot — a shard split allocates a consensus
    group (and its permissioned log region) that did not exist when the
    kernel was built.  ``add_regions`` registers new regions on the live
    kernel (every memory installs the boot permission, crashed ones
    included), mirroring RDMA memory registration.

    Recovery composes with reconfiguration through the same hook mechanism
    the static clusters use: the elastic service registers crash/recover
    hooks that re-spawn a returning process's replicas into the *current*
    epoch — the active shard set, leader map and replica membership at
    recovery time — never the boot topology it crashed out of.
    """

    def add_regions(self, regions: Sequence[RegionSpec]) -> None:
        """Register *regions* on the running kernel (idempotent per id)."""
        self.kernel.register_regions(regions)


def run_consensus(
    protocol: ConsensusProtocol,
    n_processes: int,
    n_memories: int = 3,
    inputs: Optional[Sequence[Any]] = None,
    faults: Optional[FaultPlan] = None,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    omega: Optional[object] = None,
    deadline: float = 10_000.0,
    strict_safety: bool = True,
    trace: bool = False,
) -> RunResult:
    """Run one consensus instance and return its :class:`RunResult`.

    Pass ``omega="crash-aware"`` for the eventually-accurate failure
    detector that skips crashed processes (wired after kernel creation,
    since it needs the kernel's ground truth).
    """
    crash_aware = omega == "crash-aware"
    config = ClusterConfig(
        n_processes=n_processes,
        n_memories=n_memories,
        latency=latency or NominalLatency(),
        seed=seed,
        trace=trace,
        strict_safety=strict_safety,
        omega=None if crash_aware else omega,
        deadline=deadline,
    )
    cluster = Cluster(protocol, config, faults)
    if crash_aware:
        from repro.consensus.omega import crash_aware_omega

        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    run_inputs = list(inputs) if inputs is not None else [
        f"value-{p + 1}" for p in range(n_processes)
    ]
    return cluster.run(run_inputs)
