"""Public API: configure a cluster, run a consensus instance, inspect results."""

from repro.core.cluster import (
    Cluster,
    ClusterConfig,
    MultiGroupCluster,
    RunResult,
    run_consensus,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "MultiGroupCluster",
    "RunResult",
    "run_consensus",
]
