"""The metrics ledger: everything a run records about itself.

Delay accounting follows the paper's complexity metric (Section 3,
"Complexity of algorithms"): under the nominal latency model a message costs
one virtual time unit and a memory operation two (request + response), and
computation is instantaneous — so a process's decision time minus its
proposal time *is* its decision delay count.  ``delays_of`` exposes exactly
that difference.

The ledger is also the safety monitor: every ``decide`` is checked against
previous decisions, and agreement violations are recorded (and raised when
``strict_safety`` is on, the default).  Benchmarks that *demonstrate*
violations — the Theorem 6.1 refutation harness — run with strict safety
off and read the violation log instead.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AgreementViolation, StalenessViolation
from repro.types import ProcessId

#: default per-shard latency-window bound (samples retained per window)
DEFAULT_LATENCY_WINDOW = 4096


class LatencyWindow:
    """A bounded ring of ``(completed_at, latency)`` samples.

    Long-running services complete millions of requests; an unbounded
    sample list is a slow memory leak, so each window retains at most
    ``bound`` samples while ``total`` keeps counting everything ever
    appended.  Consumers that difference the stream across observation
    ticks (the autoscaler's p99 window) address samples by their *global*
    append index via :meth:`since` — indices that scrolled out of the ring
    are simply gone, which is correct for a percentile-of-recent-traffic
    reading.
    """

    __slots__ = ("_samples", "total", "bound")

    def __init__(self, bound: int = DEFAULT_LATENCY_WINDOW) -> None:
        if bound < 1:
            raise ValueError("latency window bound must be >= 1")
        self._samples: deque = deque(maxlen=bound)
        self.total = 0
        self.bound = bound

    def append(self, completed_at: float, latency: float) -> None:
        self._samples.append((completed_at, latency))
        self.total += 1

    def __iter__(self):
        return iter(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyWindow {len(self)}/{self.bound} retained, {self.total} total>"

    def latencies(self) -> List[float]:
        """The retained latency values, oldest first."""
        return [latency for _t, latency in self._samples]

    def since(self, index: int) -> List[float]:
        """Latencies of samples with global append index ``>= index``.

        Samples that already scrolled out of the ring are not
        resurrected: the result starts at the older of *index* and the
        ring's retention horizon.
        """
        dropped = self.total - len(self._samples)
        start = max(0, index - dropped)
        if start <= 0:
            return self.latencies()
        return [latency for _t, latency in list(self._samples)[start:]]


@dataclass
class DecisionRecord:
    """One process's irrevocable decision."""

    pid: ProcessId
    value: Any
    decided_at: float
    proposed_at: Optional[float]
    #: how many values this process had signed when it decided — the
    #: paper's "one signature" fast-path claim is measured against this
    signatures_at_decision: int = 0

    @property
    def delays(self) -> Optional[float]:
        """Decision latency in network delays (nominal latency model)."""
        if self.proposed_at is None:
            return None
        return self.decided_at - self.proposed_at


@dataclass
class FaultRecord:
    """One executed fault event on the run's timeline.

    ``kind`` is the controller's vocabulary (``crash_proc``,
    ``recover_proc``, ``crash_mem``, ``recover_mem``, ``partition``,
    ``heal``, ``link_chaos``, ``link_clear``, ``perm_change``); ``subject``
    names the affected process/memory/link, and ``detail`` carries
    kind-specific extras (e.g. the requested permission shape and whether
    the memory ACKed it).
    """

    time: float
    kind: str
    subject: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class MetricsLedger:
    """Counters and records accumulated by one simulation."""

    strict_safety: bool = True
    decisions: Dict[ProcessId, DecisionRecord] = field(default_factory=dict)
    #: multi-shot decisions: instance -> pid -> record
    instance_decisions: Dict[Any, Dict[ProcessId, DecisionRecord]] = field(
        default_factory=dict
    )
    proposals: Dict[ProcessId, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    messages_sent: Counter = field(default_factory=Counter)
    mem_ops: Counter = field(default_factory=Counter)
    signatures: Counter = field(default_factory=Counter)
    #: processes whose decisions are exempt from the agreement check
    #: (declared Byzantine by the failure plan)
    byzantine: set = field(default_factory=set)
    #: every fault event the failure controller executed, in time order —
    #: benchmarks join this against decision/commit times to plot recovery
    #: latency under a scripted churn schedule
    fault_timeline: List[FaultRecord] = field(default_factory=list)
    #: every reconfiguration step the elastic coordinator executed
    #: (``cfg_commit``, ``fence``, ``migrate``, ``seal``, ``activate``, ...)
    #: — the epoch timeline benchmarks join against throughput and p99
    reconfig_timeline: List[FaultRecord] = field(default_factory=list)
    #: every SLO state transition the obs SLO plane recorded
    #: (``slo_breach`` / ``slo_recover``, subject = objective name, detail
    #: carries the burn rates) — deterministic in virtual time, so chaos
    #: scenarios can assert exact breach instants
    slo_timeline: List[FaultRecord] = field(default_factory=list)
    #: shard -> committed commands, fed by the shard leader's apply path;
    #: the autoscaler differentiates this into per-shard commit rates
    shard_commits: Counter = field(default_factory=Counter)
    #: retention bound applied to every latency window below (ring size)
    latency_window_bound: int = DEFAULT_LATENCY_WINDOW
    #: shard -> bounded (completed_at, latency) ring over ALL completions —
    #: the autoscaler's p99 window and the benchmarks' before/after series
    shard_latencies: Dict[int, LatencyWindow] = field(default_factory=dict)
    #: shard -> bounded (completed_at, latency) ring over reads only —
    #: the read-path benchmarks' p50/p99 source
    shard_read_latencies: Dict[int, LatencyWindow] = field(default_factory=dict)
    #: (shard, mode) -> reads served by that path (leader/quorum/local/consensus)
    reads_served: Counter = field(default_factory=Counter)
    #: (shard, mode) -> reads a path refused (fence lost, quorum unassembled,
    #: region fenced away mid-reconfig) and handed to the consensus fallback
    read_fallbacks: Counter = field(default_factory=Counter)
    #: every detected stale read — the acceptance criterion is that this
    #: stays EMPTY: a revocation storm or epoch cutover must force a
    #: fallback, never a stale answer
    stale_reads: List[str] = field(default_factory=list)
    #: callbacks run (with the violation description) the moment a safety
    #: violation is detected, BEFORE strict_safety raises — the flight
    #: recorder's tripwire, firing while the evidence is still live
    violation_hooks: List[Any] = field(default_factory=list)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_proposal(self, pid: ProcessId, now: float) -> None:
        """Remember when *pid* first proposed (baseline for delay counts)."""
        self.proposals.setdefault(pid, now)

    def record_decision(
        self, pid: ProcessId, value: Any, now: float, instance: Any = None
    ) -> None:
        """Record a decision and enforce irrevocability + agreement.

        ``instance`` separates decisions of multi-shot protocols (one per
        replicated-log slot); agreement is checked within each instance.
        ``instance=None`` is the default single-shot decision slot.
        Decisions of Byzantine processes are logged but never checked — the
        agreement property quantifies over correct processes only.
        """
        book = (
            self.decisions
            if instance is None
            else self.instance_decisions.setdefault(instance, {})
        )
        previous = book.get(pid)
        if previous is not None:
            if previous.value != value and pid not in self.byzantine:
                self._violation(
                    f"process p{int(pid)+1} decided {previous.value!r} then "
                    f"{value!r} (instance={instance!r})"
                )
            return
        record = DecisionRecord(
            pid=pid,
            value=value,
            decided_at=now,
            proposed_at=self.proposals.get(pid),
            signatures_at_decision=self.signatures[pid],
        )
        book[pid] = record
        self._check_agreement(book, record, instance)

    def _check_agreement(self, book, record: DecisionRecord, instance: Any) -> None:
        if record.pid in self.byzantine:
            return
        for other in book.values():
            if other.pid in self.byzantine or other.pid == record.pid:
                continue
            if other.value != record.value:
                self._violation(
                    f"agreement violated (instance={instance!r}): "
                    f"p{int(other.pid)+1} decided {other.value!r} but "
                    f"p{int(record.pid)+1} decided {record.value!r}"
                )

    def _violation(self, description: str) -> None:
        self.violations.append(description)
        for hook in self.violation_hooks:
            hook(description)
        if self.strict_safety:
            raise AgreementViolation(description)

    def record_fault(self, time: float, kind: str, subject: str, **detail: Any) -> None:
        """Append one executed fault event to the timeline."""
        self.fault_timeline.append(FaultRecord(time, kind, subject, detail))

    def record_reconfig(self, time: float, kind: str, subject: str, **detail: Any) -> None:
        """Append one reconfiguration step to the epoch timeline."""
        self.reconfig_timeline.append(FaultRecord(time, kind, subject, detail))

    def reconfigs_of(self, kind: str) -> List[FaultRecord]:
        """All reconfiguration records of one *kind*, in execution order."""
        return [record for record in self.reconfig_timeline if record.kind == kind]

    def record_slo(self, time: float, kind: str, subject: str, **detail: Any) -> None:
        """Append one SLO state transition to the timeline."""
        self.slo_timeline.append(FaultRecord(time, kind, subject, detail))

    def slos_of(self, kind: str) -> List[FaultRecord]:
        """All SLO records of one *kind* (``slo_breach``/``slo_recover``)."""
        return [record for record in self.slo_timeline if record.kind == kind]

    def count_shard_commit(self, shard: int, commands: int = 1) -> None:
        """Credit *commands* committed entries to *shard* (leader apply)."""
        self.shard_commits[shard] += commands

    def _window(self, book: Dict[int, LatencyWindow], shard: int) -> LatencyWindow:
        window = book.get(shard)
        if window is None:
            window = book[shard] = LatencyWindow(self.latency_window_bound)
        return window

    def record_shard_latency(
        self, shard: int, now: float, latency: float, kind: str = "write"
    ) -> None:
        """Record one completed request's round-trip latency for *shard*.

        ``kind`` splits the read path from the command path: reads are
        additionally recorded in ``shard_read_latencies`` so read p50/p99
        can be reported without re-classifying the combined stream.
        """
        self._window(self.shard_latencies, shard).append(now, latency)
        if kind == "read":
            self._window(self.shard_read_latencies, shard).append(now, latency)

    # ------------------------------------------------------------------
    # read-path accounting
    # ------------------------------------------------------------------
    def count_read(self, shard: int, mode: str) -> None:
        """Credit one read served to *shard* via *mode*."""
        self.reads_served[shard, mode] += 1

    def count_read_fallback(self, shard: int, mode: str) -> None:
        """One read *mode* refused to answer and fell back to consensus."""
        self.read_fallbacks[shard, mode] += 1

    def record_stale_read(self, description: str) -> None:
        """A read returned state older than its session floor — a bug.

        Like agreement violations: recorded always, raised under
        ``strict_safety`` so the offending run fails loudly.
        """
        self.stale_reads.append(description)
        for hook in self.violation_hooks:
            hook(description)
        if self.strict_safety:
            raise StalenessViolation(description)

    @property
    def staleness_violations(self) -> int:
        """The must-stay-zero counter the read-path acceptance gates on."""
        return len(self.stale_reads)

    def total_reads_served(self, mode: Optional[str] = None) -> int:
        return sum(
            count
            for (_shard, m), count in self.reads_served.items()
            if mode is None or m == mode
        )

    def total_read_fallbacks(self) -> int:
        return sum(self.read_fallbacks.values())

    def faults_of(self, kind: str) -> List[FaultRecord]:
        """All timeline entries of one fault *kind*, in execution order."""
        return [record for record in self.fault_timeline if record.kind == kind]

    def downtime_spans(self, subject: str) -> List[tuple]:
        """``(down_at, up_at)`` spans for one subject (``up_at`` None while
        still down at the end of the run) — the x-axis of recovery plots."""
        spans: List[tuple] = []
        down: Optional[float] = None
        for record in self.fault_timeline:
            if record.subject != subject:
                continue
            if record.kind in ("crash_proc", "crash_mem") and down is None:
                down = record.time
            elif record.kind in ("recover_proc", "recover_mem") and down is not None:
                spans.append((down, record.time))
                down = None
        if down is not None:
            spans.append((down, None))
        return spans

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count_message(self, pid: ProcessId) -> None:
        self.messages_sent[pid] += 1

    def count_mem_op(self, pid: ProcessId, kind: str) -> None:
        self.mem_ops[pid, kind] += 1

    def count_signature(self, pid: ProcessId) -> None:
        self.signatures[pid] += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def decided_values(self, exclude_byzantine: bool = True) -> set:
        """The set of values decided by (correct) processes."""
        return {
            rec.value
            for rec in self.decisions.values()
            if not (exclude_byzantine and rec.pid in self.byzantine)
        }

    def delays_of(self, pid: ProcessId) -> Optional[float]:
        """Decision delay of *pid* in the paper's delay units, or None."""
        record = self.decisions.get(pid)
        return None if record is None else record.delays

    def earliest_decision_delay(self) -> Optional[float]:
        """Delay of the earliest decision — the paper's "k-deciding" k."""
        delays = [
            rec.delays
            for rec in self.decisions.values()
            if rec.delays is not None and rec.pid not in self.byzantine
        ]
        return min(delays) if delays else None

    def total_signatures(self) -> int:
        return sum(self.signatures.values())

    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    def total_mem_ops(self) -> int:
        return sum(self.mem_ops.values())
