"""Measurement: decision delays, signature counts, safety-violation capture,
and per-shard workload aggregation for the sharded service layer."""

from repro.metrics.ledger import DecisionRecord, MetricsLedger
from repro.metrics.reporting import format_table
from repro.metrics.workload import (
    LatencySummary,
    ShardStats,
    WorkloadReport,
    percentile,
)

__all__ = [
    "DecisionRecord",
    "LatencySummary",
    "MetricsLedger",
    "ShardStats",
    "WorkloadReport",
    "format_table",
    "percentile",
]
