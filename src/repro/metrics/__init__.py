"""Measurement: decision delays, signature counts, safety-violation capture,
and per-shard workload aggregation for the sharded service layer."""

from repro.metrics.ledger import DecisionRecord, LatencyWindow, MetricsLedger
from repro.metrics.reporting import format_table
from repro.metrics.workload import (
    LatencySummary,
    ShardStats,
    WorkloadReport,
    percentile,
)

__all__ = [
    "DecisionRecord",
    "LatencySummary",
    "LatencyWindow",
    "MetricsLedger",
    "ShardStats",
    "WorkloadReport",
    "format_table",
    "percentile",
]
