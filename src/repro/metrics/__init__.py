"""Measurement: decision delays, signature counts, safety-violation capture."""

from repro.metrics.ledger import DecisionRecord, MetricsLedger
from repro.metrics.reporting import format_table

__all__ = ["DecisionRecord", "MetricsLedger", "format_table"]
