"""ASCII table formatting for benchmark output.

Benchmarks print paper-shaped tables (the rows the paper reports, plus our
measured column); this module renders them without third-party dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a monospace table with a header rule.

    >>> print(format_table(["algo", "delays"], [["PMP", 2.0]]))
    algo | delays
    -----+-------
    PMP  | 2.0
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(list(headers)), rule]
    lines.extend(fmt_row(row) for row in materialised)
    return "\n".join(lines)


def format_check(label: str, ok: bool) -> str:
    """One-line pass/fail marker used in benchmark summaries."""
    return f"[{'PASS' if ok else 'FAIL'}] {label}"
