"""ASCII table formatting and the combined run report.

Benchmarks print paper-shaped tables (the rows the paper reports, plus our
measured column); this module renders them without third-party dependencies.
:func:`run_report` assembles one human-readable account of a whole run —
the workload's throughput/latency numbers, the fault timeline the failure
controller executed, the reconfiguration steps the elastic coordinator
drove, and (when an observability runtime was attached) the metrics
registry and per-task profile.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a monospace table with a header rule.

    >>> print(format_table(["algo", "delays"], [["PMP", 2.0]]))
    algo | delays
    -----+-------
    PMP  | 2.0
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(list(headers)), rule]
    lines.extend(fmt_row(row) for row in materialised)
    return "\n".join(lines)


def format_check(label: str, ok: bool) -> str:
    """One-line pass/fail marker used in benchmark summaries."""
    return f"[{'PASS' if ok else 'FAIL'}] {label}"


def _timeline_table(title: str, records: Sequence[Any]) -> List[str]:
    """Render one FaultRecord timeline (fault or reconfig) as a section."""
    lines = [title, "-" * len(title)]
    if not records:
        lines.append("(none)")
        return lines
    rows = []
    for record in records:
        detail = " ".join(f"{k}={v}" for k, v in record.detail.items())
        rows.append([f"{record.time:g}", record.kind, record.subject, detail])
    lines.append(format_table(["time", "event", "subject", "detail"], rows))
    return lines


def run_report(
    workload: Optional[Any] = None,
    ledger: Optional[Any] = None,
    obs: Optional[Any] = None,
    title: str = "run report",
) -> str:
    """One human-readable account of a whole run.

    Pass whichever pieces the run produced: *workload* (a
    :class:`~repro.metrics.workload.WorkloadReport`) contributes the
    throughput/latency section, *ledger* (the kernel's
    :class:`~repro.metrics.ledger.MetricsLedger`) contributes the fault
    and reconfiguration timelines plus the safety verdict, and *obs* (an
    attached :class:`~repro.obs.runtime.ObsRuntime`) contributes the
    metrics-registry snapshot and the per-task wall-clock profile.
    """
    lines: List[str] = [title, "=" * len(title)]

    if workload is not None:
        lines += ["", "workload", "--------", workload.summary()]
        if workload.shards:
            lines.append(workload.per_shard_table())

    if ledger is not None:
        lines.append("")
        lines += _timeline_table("fault timeline", ledger.fault_timeline)
        lines.append("")
        lines += _timeline_table("reconfiguration timeline", ledger.reconfig_timeline)
        if ledger.slo_timeline:
            lines.append("")
            lines += _timeline_table("slo timeline", ledger.slo_timeline)
        lines += [
            "",
            "safety",
            "------",
            format_check(
                f"agreement ({len(ledger.violations)} violations)",
                not ledger.violations,
            ),
            format_check(
                f"read freshness ({ledger.staleness_violations} stale reads)",
                ledger.staleness_violations == 0,
            ),
        ]

    if obs is not None:
        if obs.slo is not None:
            breached = obs.slo.breached()
            verdict = format_check(
                f"slo objectives ({obs.slo.total_breaches()} breaches, "
                f"{len(breached)} in breach now)",
                not breached,
            )
            lines += ["", "slo plane", "---------", obs.slo.summary(), verdict]
        snapshot = obs.registry.snapshot()
        lines += ["", "metrics registry", "----------------"]
        if snapshot:
            rows = [[name, snapshot[name]] for name in sorted(snapshot)]
            lines.append(format_table(["metric", "value"], rows))
        else:
            lines.append("(no instruments)")
        spans = len(obs.finished) + obs.dropped
        lines.append(f"spans recorded: {spans} ({obs.dropped} dropped)")
        if obs.flight.dumps:
            lines.append(
                f"flight recorder: {len(obs.flight.dumps)} dump(s), "
                f"last tripped by {obs.flight.last_dump['reason']!r}"
            )
        if obs.profiler is not None and obs.profiler.profiles:
            lines += ["", "task profile (host wall clock)", obs.profiler.report()]

    return "\n".join(lines)


def parallel_report(report: dict, title: str = "parallel run report") -> str:
    """Render a :meth:`~repro.sim.parallel.ParallelKernel.run_report` dict.

    One row per cell (virtual clock, scheduler events, schedule-invariant
    sim events, fabric traffic, trace-hash prefix) plus the aggregated
    totals and the coordinator's barrier/worker accounting — the
    parallel-run face of :func:`run_report`.
    """
    lines: List[str] = [title, "=" * len(title)]
    rows = []
    for cell_id in sorted(report["cells"]):
        cell = report["cells"][cell_id]
        rows.append([
            cell_id,
            cell["label"],
            f"{cell['now']:g}",
            cell["events"],
            cell["sim_events"],
            f"{cell['posted']}/{cell['injected']}",
            cell["run_hash"][:12],
        ])
    lines += [
        "",
        format_table(
            ["cell", "label", "t", "events", "sim-events", "out/in", "hash"], rows
        ),
    ]
    totals = report["totals"]
    lines += [
        "",
        f"totals: {totals['events']} events, {totals['sim_events']} sim-events, "
        f"{totals['messages']} messages, {totals['crossed']} crossed the fabric",
        f"combined hash: {report['combined_hash'][:16]}",
    ]
    run = report.get("run")
    if run:
        lines += [
            "",
            f"workers={run['workers']} mode={run['mode']} rounds={run['rounds']} "
            f"lookahead={run['lookahead']:g} virtual_time={run['virtual_time']:g}",
        ]
        if run.get("projected_speedup") is not None:
            lines.append(
                f"critical-path projection: {run['projected_speedup']:.2f}x "
                f"(busy {run['total_busy']:.3f}s, critical {run['critical_path']:.3f}s, "
                f"coordinator {run['coordinator_wall']:.3f}s)"
            )
    return "\n".join(lines)
