"""Per-shard workload accounting: throughput, latency, batch occupancy.

The sharded service records one sample per completed client request
(which shard served it, how many virtual delays the round trip took) and
one record per committed batch.  This module aggregates those raw samples
into the per-shard and whole-service numbers the benchmarks and the
acceptance tests read: committed commands per simulated delay, latency
percentiles, mean batch fill.

Percentiles here are nearest-rank and dependency-free on purpose: this
module sits under the core service layer, which must not require numpy
(:mod:`repro.metrics.analysis` is the numpy-based toolkit for the
distribution benchmarks and uses interpolated percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.reporting import format_table


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (which must be non-empty)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary of a latency sample set (in simulated delays)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def of(samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencySummary(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 0.50),
            p95=percentile(samples, 0.95),
            p99=percentile(samples, 0.99),
            max=max(samples),
        )


@dataclass
class ShardStats:
    """Raw per-shard accumulators, filled in by the service as it runs."""

    shard: int
    committed_commands: int = 0
    committed_batches: int = 0
    duplicates: int = 0
    latencies: List[float] = field(default_factory=list)
    #: ACHIEVED operation mix — counted per completion, not per request
    #: issued, so a benchmark whose reads stall (and silently retry into a
    #: different mix than requested) cannot misreport itself
    reads: int = 0
    writes: int = 0
    read_latencies: List[float] = field(default_factory=list)

    @property
    def mean_batch_fill(self) -> float:
        if self.committed_batches == 0:
            return 0.0
        return self.committed_commands / self.committed_batches

    @property
    def achieved_read_fraction(self) -> float:
        """Reads / completions actually served by this shard."""
        completed = self.reads + self.writes
        return self.reads / completed if completed else 0.0

    def latency_summary(self) -> LatencySummary:
        return LatencySummary.of(self.latencies)

    def read_latency_summary(self) -> LatencySummary:
        return LatencySummary.of(self.read_latencies)


@dataclass
class WorkloadReport:
    """Aggregated outcome of one workload run over a sharded service."""

    shards: Dict[int, ShardStats]
    completed_requests: int
    elapsed: float  # virtual delays from first submit to last apply
    #: how many requests the workload submitted in total; a report with
    #: ``completed_requests < expected_requests`` hit the deadline with
    #: work outstanding (e.g. an exhausted BFT shard's slot budget)
    expected_requests: int = 0

    @property
    def ok(self) -> bool:
        """True when every submitted request completed before the deadline."""
        return self.completed_requests >= self.expected_requests

    @property
    def committed_commands(self) -> int:
        return sum(s.committed_commands for s in self.shards.values())

    @property
    def committed_batches(self) -> int:
        return sum(s.committed_batches for s in self.shards.values())

    @property
    def commands_per_delay(self) -> float:
        """The headline throughput metric: committed commands per unit of
        simulated time (network delay)."""
        if self.elapsed <= 0:
            return 0.0
        return self.committed_commands / self.elapsed

    @property
    def mean_batch_fill(self) -> float:
        if self.committed_batches == 0:
            return 0.0
        return self.committed_commands / self.committed_batches

    @property
    def completed_reads(self) -> int:
        return sum(s.reads for s in self.shards.values())

    @property
    def completed_writes(self) -> int:
        return sum(s.writes for s in self.shards.values())

    @property
    def achieved_read_fraction(self) -> float:
        """Reads / completions the service actually served (whole run)."""
        completed = self.completed_reads + self.completed_writes
        return self.completed_reads / completed if completed else 0.0

    @property
    def reads_per_delay(self) -> float:
        """Read throughput in completed gets per unit of simulated time."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed_reads / self.elapsed

    def latency_summary(self) -> LatencySummary:
        merged: List[float] = []
        for stats in self.shards.values():
            merged.extend(stats.latencies)
        return LatencySummary.of(merged)

    def read_latency_summary(self) -> LatencySummary:
        merged: List[float] = []
        for stats in self.shards.values():
            merged.extend(stats.read_latencies)
        return LatencySummary.of(merged)

    def per_shard_table(self) -> str:
        """Render the per-shard breakdown as a monospace table."""
        rows = []
        for shard in sorted(self.shards):
            stats = self.shards[shard]
            latency = stats.latency_summary()
            rows.append(
                [
                    f"g{shard}",
                    stats.committed_commands,
                    stats.committed_batches,
                    f"{stats.mean_batch_fill:.1f}",
                    stats.reads,
                    f"{stats.achieved_read_fraction:.2f}",
                    f"{latency.mean:.1f}",
                    f"{latency.p99:.1f}",
                ]
            )
        return format_table(
            ["shard", "commands", "batches", "fill", "reads", "rmix",
             "mean lat", "p99 lat"],
            rows,
        )

    def summary(self) -> str:
        latency = self.latency_summary()
        shortfall = (
            ""
            if self.ok
            else f" [INCOMPLETE: {self.expected_requests - self.completed_requests}"
            f" of {self.expected_requests} requests never completed]"
        )
        return (
            f"{self.completed_requests} requests in {self.elapsed:g} delays{shortfall} "
            f"({self.commands_per_delay:.2f} commands/delay, "
            f"batch fill {self.mean_batch_fill:.1f}, "
            f"latency mean {latency.mean:.1f} p99 {latency.p99:.1f})"
        )
