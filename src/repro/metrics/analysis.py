"""Multi-seed sweeps and distribution summaries.

The paper's delay counts are single-schedule statements; systems readers
also want distributions ("what does the fast path look like under jitter?").
This module runs a protocol across seeds and summarizes decision-delay
distributions with numpy — used by the latency-distribution benchmark and
available to downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.consensus.base import ConsensusProtocol
from repro.core.cluster import run_consensus
from repro.sim.latency import LatencyModel


@dataclass(frozen=True)
class DelayStats:
    """Summary of a decision-delay sample."""

    n_samples: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float
    undecided: int

    def row(self) -> List[str]:
        return [
            str(self.n_samples),
            f"{self.mean:.2f}",
            f"{self.p50:.2f}",
            f"{self.p90:.2f}",
            f"{self.p99:.2f}",
            f"{self.minimum:.2f}",
            f"{self.maximum:.2f}",
        ]


def summarize(samples: Sequence[float], undecided: int = 0) -> DelayStats:
    """Distribution summary of *samples* (must be non-empty)."""
    if not samples:
        raise ValueError("no samples to summarize")
    array = np.asarray(samples, dtype=float)
    return DelayStats(
        n_samples=len(samples),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        undecided=undecided,
    )


def sweep_decision_delays(
    protocol_factory: Callable[[], ConsensusProtocol],
    seeds: Sequence[int],
    latency_factory: Optional[Callable[[], LatencyModel]] = None,
    n_processes: int = 3,
    n_memories: int = 3,
    deadline: float = 30_000.0,
) -> DelayStats:
    """Earliest-decision delay across *seeds*; undecided runs are counted
    separately (they carry no delay sample)."""
    samples: List[float] = []
    undecided = 0
    for seed in seeds:
        result = run_consensus(
            protocol_factory(),
            n_processes,
            n_memories,
            latency=latency_factory() if latency_factory else None,
            seed=seed,
            deadline=deadline,
        )
        delay = result.earliest_decision_delay
        if delay is None:
            undecided += 1
        else:
            samples.append(delay)
    return summarize(samples, undecided=undecided)
