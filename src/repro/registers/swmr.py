"""Replicated registers: majority quorums over the memory array.

The construction (from Attiya–Bar-Noy–Dolev adapted to fail-prone memories
by Afek et al. / Jayanti et al., as cited in Section 4.1) gives *regular*
register semantics: a read concurrent with a write may return either the
old or the new value, and the paper's algorithms are written for exactly
that guarantee.

Writes report NAK when any responding replica refused the write — that is
how a Cheap Quorum leader whose permission was revoked on some replica
learns to panic rather than decide (see Lemma 4.6's proof: deciding
requires a clean ACK majority, which intersects any revoker's majority).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List

from repro.mem.operations import ReadOp, SnapshotOp, WriteOp
from repro.mem.permissions import Permission
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import BOTTOM, OpStatus, RegionId, RegisterKey, is_bottom


def swmr_regions(
    namespace: str, owners: Iterable[int], all_processes: Iterable[int]
) -> List[RegionSpec]:
    """One SWMR region per owner: ``R = P \\ {p}, RW = {p}`` (static).

    Register keys under region ``f"{namespace}:{p}"`` are all keys starting
    with ``(namespace, p)``.
    """
    processes = list(all_processes)
    return [
        RegionSpec(
            region_id=f"{namespace}:{owner}",
            prefix=(namespace, owner),
            initial_permission=Permission.swmr(owner, processes),
        )
        for owner in owners
    ]


def _merge_reads(values: List[Any]) -> Any:
    """The paper's read rule: exactly one distinct non-⊥ value, else ⊥."""
    distinct = []
    for value in values:
        if is_bottom(value):
            continue
        if all(value != seen for seen in distinct):
            distinct.append(value)
    if len(distinct) == 1:
        return distinct[0]
    return BOTTOM


class ReplicatedRegister:
    """One logical register replicated across every memory of the cluster."""

    def __init__(self, region: RegionId, key: RegisterKey) -> None:
        self.region = region
        self.key = tuple(key)

    def write(self, env: ProcessEnv, value: Any) -> Generator:
        """Write to all memories, wait for a majority; returns ``OpStatus``.

        ACK only when a majority responded and *none* of the responses so
        far was a NAK; a single NAK means some replica refused (permission
        revoked there) and the logical write reports failure.
        """
        futures = yield from env.invoke_on_all(
            lambda mid: WriteOp(region=self.region, key=self.key, value=value)
        )
        yield env.wait(futures, count=env.majority_of_memories())
        resolved = [f for f in futures if f.done]
        if any(not f.ok for f in resolved):
            return OpStatus.NAK
        return OpStatus.ACK

    def read(self, env: ProcessEnv) -> Generator:
        """Read all memories, wait for a majority; returns the merged value."""
        futures = yield from env.invoke_on_all(
            lambda mid: ReadOp(region=self.region, key=self.key)
        )
        yield env.wait(futures, count=env.majority_of_memories())
        values = [f.value for f in futures if f.ok]
        return _merge_reads(values)


def read_many(env: ProcessEnv, registers: List["ReplicatedRegister"]) -> Generator:
    """Read several replicated registers in parallel (still two delays).

    Returns ``{register.key: merged value}``.  Used where an algorithm polls
    one register per process and the registers live in different regions
    (e.g. Cheap Quorum reading ``Value[q]`` for every q), so a single-region
    snapshot cannot cover them.
    """
    per_register = []
    all_futures = []
    for register in registers:
        futures = yield from env.invoke_on_all(
            lambda mid, r=register: ReadOp(region=r.region, key=r.key)
        )
        per_register.append((register, futures))
        all_futures.extend(futures)
    majority = env.majority_of_memories()
    # Wait until *every* register individually has a majority of responses
    # (a global count could be satisfied lopsidedly by fast memories).
    while True:
        if all(
            sum(1 for f in futures if f.done) >= majority
            for _, futures in per_register
        ):
            break
        done_now = sum(1 for f in all_futures if f.done)
        yield env.wait(all_futures, count=min(done_now + 1, len(all_futures)))
    view: Dict[RegisterKey, Any] = {}
    for register, futures in per_register:
        values = [f.value for f in futures if f.ok]
        view[register.key] = _merge_reads(values)
    return view


class ReplicatedSlotArray:
    """A replicated *snapshot* over every register under one key prefix.

    Used wherever the paper reads a whole slot array (Protected Memory
    Paxos line 15, Cheap Quorum's polling of ``Value[*]``/``Proof[*]``);
    one snapshot costs one memory operation per memory, all in parallel,
    i.e. two delays.
    """

    def __init__(self, region: RegionId, prefix: RegisterKey) -> None:
        self.region = region
        self.prefix = tuple(prefix)

    def snapshot(self, env: ProcessEnv) -> Generator:
        """Merged per-key view of the array; absent keys read as ⊥."""
        futures = yield from env.invoke_on_all(
            lambda mid: SnapshotOp(region=self.region, prefix=self.prefix)
        )
        yield env.wait(futures, count=env.majority_of_memories())
        merged: Dict[RegisterKey, List[Any]] = {}
        for future in futures:
            if not future.ok:
                continue
            for key, value in future.value.items():
                merged.setdefault(key, []).append(value)
        return {key: _merge_reads(values) for key, values in merged.items()}
