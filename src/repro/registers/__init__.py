"""Fault-tolerant SWMR regular registers over fail-prone memories.

Section 4.1 of the paper: "To implement an SWMR register, a process writes
or reads all memories, and waits for a majority to respond.  When reading,
if p sees exactly one distinct non-⊥ value v across the memories, it
returns v; otherwise, it returns ⊥."  With ``m >= 2f_M + 1`` memories this
masks up to ``f_M`` memory crashes, and both operations still complete in
two delays (all per-memory operations run in parallel).
"""

from repro.registers.swmr import ReplicatedRegister, ReplicatedSlotArray, swmr_regions

__all__ = ["ReplicatedRegister", "ReplicatedSlotArray", "swmr_regions"]
