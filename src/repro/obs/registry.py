"""Typed metrics registry: counters, gauges and histograms with labels.

Instruments are interned by ``(name, labels)`` — asking for the same
instrument twice returns the same object, so call sites can either cache
the handle (hot paths do) or look it up ad hoc.  Gauges additionally keep
a bounded time series of ``(virtual_time, value)`` samples, fed by the
virtual-time ticker (:meth:`~repro.obs.runtime.ObsRuntime.start_sampling`)
so "queue depth over the run" is a plottable series, not one final number.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

#: samples retained per gauge series / histogram reservoir
DEFAULT_SERIES_BOUND = 4096

LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level, with a bounded sample series.

    The series is a ring like the ledger's ``LatencyWindow``: at most
    ``bound`` samples are retained (newest win) while ``total`` counts
    every sample ever taken, so ``dropped`` says how much of a long
    SLO-window run scrolled out — a gauge never grows without limit.
    """

    __slots__ = ("name", "labels", "value", "series", "total", "bound")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, Any], ...],
        bound: int = DEFAULT_SERIES_BOUND,
    ) -> None:
        if bound < 1:
            raise ValueError("gauge series bound must be >= 1")
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self.series: deque = deque(maxlen=bound)
        self.total = 0
        self.bound = bound

    @property
    def dropped(self) -> int:
        """Samples that scrolled out of the bounded series ring."""
        return self.total - len(self.series)

    def set(self, value: float) -> None:
        self.value = value

    def sample(self, now: float, value: float) -> None:
        """Set *value* and append it to the time series (ticker path)."""
        self.value = value
        self.series.append((now, value))
        self.total += 1


class Histogram:
    """Aggregated observations plus a bounded reservoir for percentiles."""

    __slots__ = ("name", "labels", "count", "total", "min", "max", "_reservoir")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, Any], ...],
        bound: int = DEFAULT_SERIES_BOUND,
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: deque = deque(maxlen=bound)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._reservoir.append(value)

    @property
    def mean(self) -> Optional[float]:
        return None if self.count == 0 else self.total / self.count

    def percentile(self, q: float) -> Optional[float]:
        """Percentile over the retained reservoir (recent traffic)."""
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[index]


def _label_key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return name, tuple(sorted(labels.items()))


class MetricsRegistry:
    """Interned counters/gauges/histograms, addressable by name + labels."""

    def __init__(self, series_bound: int = DEFAULT_SERIES_BOUND) -> None:
        self.series_bound = series_bound
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _label_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _label_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1], self.series_bound)
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _label_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], self.series_bound)
        return instrument

    # ------------------------------------------------------------------
    def counters(self) -> List[Counter]:
        return list(self._counters.values())

    def gauges(self) -> List[Gauge]:
        return list(self._gauges.values())

    def histograms(self) -> List[Histogram]:
        return list(self._histograms.values())

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-friendly dict of every instrument's current reading."""

        def tag(name: str, labels: Tuple[Tuple[str, Any], ...]) -> str:
            if not labels:
                return name
            rendered = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{rendered}}}"

        out: Dict[str, Any] = {}
        for c in self._counters.values():
            out[tag(c.name, c.labels)] = c.value
        for g in self._gauges.values():
            out[tag(g.name, g.labels)] = g.value
        for h in self._histograms.values():
            out[tag(h.name, h.labels)] = {
                "count": h.count,
                "mean": h.mean,
                "min": h.min,
                "max": h.max,
                "p99": h.percentile(99),
            }
        return out
