"""Declarative SLOs evaluated on virtual-time burn-rate windows.

The service layer records every completion into the ledger's per-shard
latency windows; this module turns those raw samples into *objectives* —
"99% of shard-0 commits inside 40 delays", "99.9% of quorum reads served
without a consensus fallback" — and evaluates them the way an SRE pager
would: as **error-budget burn rates** over short and long windows of
*virtual* time.  With a target of ``t`` the error budget is ``1 - t``; a
burn rate of 1.0 means the budget is being consumed exactly at the
allowed pace, and an alert (a *breach* here) fires only when both the
short window (fast, noisy) and the long window (slow, confirming) burn
above the threshold — the standard multiwindow rule that suppresses
blips while still catching real regressions quickly.

Because the kernel is deterministic, breaches are reproducible events:
the same seed and fault script produce the same breach instants, which
the chaos tests assert exactly.  Transitions land in the metrics ledger
(``slo_timeline``), in the registry (``slo.burn`` gauges and
``slo.breaches`` counters), as point spans in the trace, in flight
recorder dumps, and in :func:`~repro.metrics.reporting.run_report`.
:meth:`SloTracker.pressure` exposes the current per-shard burn as an
autoscaler-consumable signal (see ``AutoscalerConfig.slo_burn_above``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.metrics.reporting import format_table

#: slack for float comparisons on the virtual-time axis
EPS = 1e-9

#: objective scopes: which latency book feeds the burn computation
SCOPE_ALL = "all"
SCOPE_READ = "read"
SCOPES = (SCOPE_ALL, SCOPE_READ)


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective.

    At least one of *latency_budget* (latency SLO: fraction ``target`` of
    completions must finish within the budget, in virtual delay units)
    and *availability* (read-path SLO: at least this fraction of reads
    must be served without falling back to consensus) must be set; when
    both are, the objective burns at the worse of the two.

    *shard* scopes the objective to one shard (``None``: the whole
    service), *scope* picks the latency book (``"all"`` completions or
    ``"read"`` completions only — the per-read-mode view).
    """

    name: str
    latency_budget: Optional[float] = None
    target: float = 0.99
    shard: Optional[int] = None
    scope: str = SCOPE_ALL
    #: short (fast-alerting) burn window, in virtual time units
    window: float = 50.0
    #: long (confirming) burn window; ``None`` disables the second window
    long_window: Optional[float] = 200.0
    #: breach when BOTH windows burn at or above this rate
    burn_threshold: float = 2.0
    availability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency_budget is None and self.availability is None:
            raise ConfigurationError(
                f"objective {self.name!r} needs a latency_budget and/or "
                "an availability target"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError("target must be a fraction in (0, 1)")
        if self.availability is not None and not 0.0 < self.availability < 1.0:
            raise ConfigurationError("availability must be a fraction in (0, 1)")
        if self.scope not in SCOPES:
            raise ConfigurationError(f"unknown scope {self.scope!r}; pick one of {SCOPES}")
        if self.window <= 0:
            raise ConfigurationError("window must be > 0")
        if self.long_window is not None and self.long_window < self.window:
            raise ConfigurationError("long_window must be >= window")
        if self.burn_threshold <= 0:
            raise ConfigurationError("burn_threshold must be > 0")

    @property
    def horizon(self) -> float:
        """The longest lookback this objective needs."""
        return self.window if self.long_window is None else self.long_window


@dataclass
class SloState:
    """Mutable evaluation state of one objective."""

    breached: bool = False
    breaches: int = 0
    burn_short: float = 0.0
    burn_long: float = 0.0
    #: cumulative (time, served, fallbacks) snapshots for availability
    #: deltas — bounded by pruning to the objective's horizon
    avail_samples: deque = field(default_factory=deque)


class SloTracker:
    """Evaluates objectives against the ledger on every sampling tick.

    Built by :meth:`ObsRuntime.track_slo`; :meth:`evaluate` runs from the
    runtime's virtual-time ticker, so burn windows advance in simulated
    time and the whole plane is deterministic under a fixed seed.
    """

    def __init__(self, runtime, objectives: Sequence[Objective] = ()) -> None:
        self.runtime = runtime
        self.kernel = runtime.kernel
        self.objectives: List[Objective] = []
        self.states: Dict[str, SloState] = {}
        self.add(objectives)

    def add(self, objectives: Sequence[Objective]) -> None:
        for objective in objectives:
            if objective.name in self.states:
                raise ConfigurationError(f"duplicate objective {objective.name!r}")
            self.objectives.append(objective)
            self.states[objective.name] = SloState()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> None:
        """One tick: recompute every objective's burn, record transitions."""
        ledger = self.kernel.metrics
        registry = self.runtime.registry
        for objective in self.objectives:
            state = self.states[objective.name]
            if objective.availability is not None:
                self._snapshot_availability(objective, state, now)
            short = self._burn(objective, state, now, objective.window)
            if objective.long_window is None:
                long = short
            else:
                long = self._burn(objective, state, now, objective.long_window)
            state.burn_short, state.burn_long = short, long
            registry.gauge("slo.burn", objective=objective.name).sample(now, short)
            threshold = objective.burn_threshold
            breached = short >= threshold - EPS and long >= threshold - EPS
            if breached and not state.breached:
                state.breached = True
                state.breaches += 1
                registry.counter("slo.breaches", objective=objective.name).inc()
                ledger.record_slo(
                    now, "slo_breach", objective.name,
                    burn_short=round(short, 6), burn_long=round(long, 6),
                )
                self.runtime.point(
                    "slo.breach", objective=objective.name, burn=round(short, 6)
                )
            elif state.breached and not breached:
                state.breached = False
                ledger.record_slo(
                    now, "slo_recover", objective.name,
                    burn_short=round(short, 6), burn_long=round(long, 6),
                )
                self.runtime.point(
                    "slo.recover", objective=objective.name, burn=round(short, 6)
                )

    def _burn(self, objective: Objective, state: SloState, now: float, horizon: float) -> float:
        """Worst burn rate across the objective's components."""
        burn = 0.0
        if objective.latency_budget is not None:
            burn = self._latency_burn(objective, now, horizon)
        if objective.availability is not None:
            burn = max(burn, self._availability_burn(objective, state, now, horizon))
        return burn

    def _latency_burn(self, objective: Objective, now: float, horizon: float) -> float:
        """(bad fraction within the window) / (error budget)."""
        ledger = self.kernel.metrics
        book = (
            ledger.shard_read_latencies
            if objective.scope == SCOPE_READ
            else ledger.shard_latencies
        )
        if objective.shard is None:
            windows = list(book.values())
        else:
            window = book.get(objective.shard)
            windows = [] if window is None else [window]
        floor = now - horizon
        total = bad = 0
        budget = objective.latency_budget
        for window in windows:
            for completed_at, latency in window:
                if completed_at >= floor - EPS:
                    total += 1
                    if latency > budget + EPS:
                        bad += 1
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - objective.target)

    def _snapshot_availability(self, objective: Objective, state: SloState, now: float) -> None:
        ledger = self.kernel.metrics
        served = fallbacks = 0
        for (shard, _mode), count in ledger.reads_served.items():
            if objective.shard is None or shard == objective.shard:
                served += count
        for (shard, _mode), count in ledger.read_fallbacks.items():
            if objective.shard is None or shard == objective.shard:
                fallbacks += count
        samples = state.avail_samples
        samples.append((now, served, fallbacks))
        floor = now - objective.horizon
        # keep one sample at or before the horizon as the delta baseline
        while len(samples) > 1 and samples[1][0] <= floor + EPS:
            samples.popleft()

    def _availability_burn(
        self, objective: Objective, state: SloState, now: float, horizon: float
    ) -> float:
        samples = state.avail_samples
        if not samples:
            return 0.0
        floor = now - horizon
        base = samples[0]
        for sample in samples:
            if sample[0] <= floor + EPS:
                base = sample
            else:
                break
        current = samples[-1]
        served = current[1] - base[1]
        fallbacks = current[2] - base[2]
        total = served + fallbacks
        if total == 0:
            return 0.0
        return (fallbacks / total) / (1.0 - objective.availability)

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def breached(self) -> List[str]:
        """Names of the objectives currently in breach."""
        return [o.name for o in self.objectives if self.states[o.name].breached]

    def total_breaches(self) -> int:
        return sum(state.breaches for state in self.states.values())

    def pressure(self) -> Dict[int, float]:
        """Per-shard worst short-window burn — the autoscaler signal.

        Only shard-scoped objectives are attributed (a service-wide
        objective cannot say *which* shard to split).
        """
        out: Dict[int, float] = {}
        for objective in self.objectives:
            if objective.shard is None:
                continue
            burn = self.states[objective.name].burn_short
            if burn > out.get(objective.shard, 0.0):
                out[objective.shard] = burn
        return out

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly state of every objective (flight dumps, reports)."""
        objectives = []
        for objective in self.objectives:
            state = self.states[objective.name]
            objectives.append(
                {
                    "name": objective.name,
                    "shard": objective.shard,
                    "scope": objective.scope,
                    "latency_budget": objective.latency_budget,
                    "target": objective.target,
                    "availability": objective.availability,
                    "burn_short": state.burn_short,
                    "burn_long": state.burn_long,
                    "breached": state.breached,
                    "breaches": state.breaches,
                }
            )
        return {"objectives": objectives, "breaches": self.total_breaches()}

    def summary(self) -> str:
        """Human-readable objective table for :func:`run_report`."""
        rows = []
        for objective in self.objectives:
            state = self.states[objective.name]
            budget = (
                "-" if objective.latency_budget is None
                else f"{objective.latency_budget:g}d@{objective.target:g}"
            )
            avail = (
                "-" if objective.availability is None else f"{objective.availability:g}"
            )
            rows.append(
                [
                    objective.name,
                    "*" if objective.shard is None else f"g{objective.shard}",
                    objective.scope,
                    budget,
                    avail,
                    f"{state.burn_short:.2f}/{state.burn_long:.2f}",
                    "BREACHED" if state.breached else "ok",
                    state.breaches,
                ]
            )
        return format_table(
            ["objective", "shard", "scope", "latency", "avail", "burn s/l", "state", "breaches"],
            rows,
        )
