"""Crash-dump flight recorder: the last N spans, dumped on a tripwire.

Safety monitors (`strict_safety` agreement/staleness checks, FaultScript
assertions) raise the moment a violation is detected — which is exactly
when the evidence of *how* the run got there is about to be lost.  The
flight recorder keeps a bounded ring of recently finished spans and, when
tripped, snapshots them together with every still-open span (in-flight
messages, hung memory ops, live phases) — the open set is usually the
interesting part of a stuck or diverged run.

The runtime registers :meth:`trip` with the metrics ledger's violation
hooks, so an ``AgreementViolation`` or ``StalenessViolation`` under
``strict_safety`` dumps automatically before the exception unwinds.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.spans import Span


class FlightRecorder:
    """Bounded ring of recent spans plus trip-time dumping."""

    def __init__(self, capacity: int = 512, path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        #: where :meth:`trip` writes the dump (None: in-memory only)
        self.path = path
        self.ring: deque = deque(maxlen=capacity)
        #: dumps produced so far, newest last (kept for tests/inspection)
        self.dumps: List[Dict[str, Any]] = []
        #: supplier of currently-open spans, wired by the runtime
        self._open_supplier = None
        #: supplier of extra trip-time context (metrics registry snapshot,
        #: SLO/burn-rate state) merged into the dump — self-containment
        self._context_supplier = None

    def record(self, span: Span) -> None:
        self.ring.append(span)

    def wire(self, open_supplier, context_supplier=None) -> None:
        """Install the runtime's live-span supplier (called on attach).

        *context_supplier*, when given, is called at trip time and must
        return a dict of extra top-level dump entries (the runtime passes
        its metrics-registry and SLO snapshots), so a dump explains the
        run's state without the run.
        """
        self._open_supplier = open_supplier
        self._context_supplier = context_supplier

    def trip(self, reason: str, now: float) -> Dict[str, Any]:
        """Snapshot the ring + open spans; write to :attr:`path` if set."""
        open_spans = [] if self._open_supplier is None else list(self._open_supplier())
        dump = {
            "reason": reason,
            "time": now,
            "recent": [span.to_dict() for span in self.ring],
            "open": [span.to_dict() for span in open_spans],
        }
        if self._context_supplier is not None:
            dump.update(self._context_supplier())
        self.dumps.append(dump)
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(dump, handle, indent=1)
        return dump

    @property
    def last_dump(self) -> Optional[Dict[str, Any]]:
        return self.dumps[-1] if self.dumps else None
