"""Critical-path analysis: decision latency in the paper's delay units.

The paper's complexity metric (Section 3) prices a message at one delay
and a memory operation at two (request leg + response leg), with
computation free.  Given the span tree of a traced run, this module
decomposes the interval between a process's proposal and its decision
into exactly those units plus *queueing* — virtual time on the path
covered by no transport span (backoff sleeps, inbox waits, batching
delays).

The algorithm walks backward from the decision: repeatedly take the
transport span of the decision's trace that ends latest at or before the
cursor (ties: longest, then earliest-created — deterministic), account the
gap above it as queueing, and jump to its start.  Under the nominal
latency model this tiles the interval perfectly, reproducing the paper's
counts: steady-state Protected Memory Paxos decides after one phase-2
write = **2 memory delays**; message-passing Paxos' decision-forming
accept phase costs **2 message delays** (4 end-to-end with prepare).

Phase attribution assigns each path segment to the innermost ``phase``
span of the trace containing it, so the decomposition also answers *which
phase* spent the delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.reporting import format_table
from repro.obs.spans import K_MEMOP, K_MSG, K_PHASE, Span

#: slack for float comparisons on the virtual-time axis
EPS = 1e-9

#: delay units per transport span kind (the paper's pricing)
MSG_DELAYS = 1.0
MEMOP_DELAYS = 2.0


@dataclass
class Segment:
    """One tile of the critical path."""

    start: float
    end: float
    kind: str  # "msg" | "memop" | "queue"
    name: str
    delays: float
    phase: Optional[str] = None
    span: Optional[Span] = None

    @property
    def width(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """A decision's latency, decomposed into the paper's units."""

    pid: int
    proposed_at: float
    decided_at: float
    segments: List[Segment] = field(default_factory=list)
    message_delays: float = 0.0
    memory_delays: float = 0.0
    queueing: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end decision latency in virtual time units."""
        return self.decided_at - self.proposed_at

    def phase_delays(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: phase name -> {"msg": .., "mem": .., "queue": ..}."""
        out: Dict[str, Dict[str, float]] = {}
        for segment in self.segments:
            bucket = out.setdefault(
                segment.phase or "(none)", {"msg": 0.0, "mem": 0.0, "queue": 0.0}
            )
            if segment.kind == "msg":
                bucket["msg"] += segment.delays
            elif segment.kind == "memop":
                bucket["mem"] += segment.delays
            else:
                bucket["queue"] += segment.delays
        return out

    def summary(self) -> str:
        """Human-readable decomposition table."""
        rows = [
            [
                f"{s.start:g}..{s.end:g}",
                s.kind,
                s.name,
                s.phase or "-",
                f"{s.delays:g}",
            ]
            for s in self.segments
        ]
        table = format_table(["interval", "kind", "what", "phase", "delays"], rows)
        return (
            f"decision of p{self.pid + 1}: {self.total:g} units "
            f"= {self.message_delays:g} message delays "
            f"+ {self.memory_delays:g} memory delays "
            f"+ {self.queueing:g} queueing\n{table}"
        )


def _attribute_phases(segments: List[Segment], phases: List[Span]) -> None:
    for segment in segments:
        mid = (segment.start + segment.end) / 2.0
        innermost: Optional[Span] = None
        for phase in phases:
            end = phase.end if phase.end is not None else float("inf")
            if phase.start - EPS <= mid <= end + EPS:
                if innermost is None or phase.start > innermost.start:
                    innermost = phase
        if innermost is not None:
            segment.phase = innermost.name


def critical_path_between(
    spans: List[Span],
    pid: int,
    proposed_at: float,
    decided_at: float,
    trace_id: Optional[int] = None,
) -> CriticalPath:
    """Decompose ``[proposed_at, decided_at]`` against transport *spans*.

    *spans* is the finished-span list; *trace_id* (when known) restricts
    candidates to the decision's causal tree so concurrent instances do
    not steal path segments from each other.
    """
    path = CriticalPath(pid=int(pid), proposed_at=proposed_at, decided_at=decided_at)
    candidates = [
        s
        for s in spans
        if s.kind in (K_MSG, K_MEMOP)
        and s.end is not None
        and (trace_id is None or s.trace_id == trace_id)
        and s.end <= decided_at + EPS
        and s.end > proposed_at + EPS
    ]
    phases = [
        s
        for s in spans
        if s.kind == K_PHASE and (trace_id is None or s.trace_id == trace_id)
    ]
    cursor = decided_at
    segments: List[Segment] = []
    while cursor > proposed_at + EPS:
        best: Optional[Span] = None
        for s in candidates:
            if s.end > cursor + EPS or s.start >= cursor - EPS:
                continue
            if (
                best is None
                or s.end > best.end + EPS
                or (abs(s.end - best.end) <= EPS and s.start < best.start - EPS)
                or (
                    abs(s.end - best.end) <= EPS
                    and abs(s.start - best.start) <= EPS
                    and s.span_id < best.span_id
                )
            ):
                best = s
        if best is None:
            segments.append(
                Segment(proposed_at, cursor, "queue", "queue", cursor - proposed_at)
            )
            path.queueing += cursor - proposed_at
            break
        if cursor - best.end > EPS:
            segments.append(Segment(best.end, cursor, "queue", "queue", cursor - best.end))
            path.queueing += cursor - best.end
        seg_start = max(best.start, proposed_at)
        name = best.name
        if best.kind == K_MSG:
            delays = MSG_DELAYS
            path.message_delays += delays
        else:
            delays = MEMOP_DELAYS
            path.memory_delays += delays
            # A fused chain is ONE span (single-completion semantics) and
            # ONE 2-delay tile, however many sub-ops it carries; surface
            # the count so recompositions show what the chain amortized.
            ops = None if best.attrs is None else best.attrs.get("ops")
            if ops is not None:
                name = f"{name}[{ops}]"
        segments.append(Segment(seg_start, best.end, best.kind, name, delays, span=best))
        cursor = seg_start
    segments.reverse()
    path.segments = segments
    _attribute_phases(segments, phases)
    return path


def critical_path(runtime, pid, instance=None) -> CriticalPath:
    """Analyze the recorded decision of *pid* (and *instance*) on *runtime*.

    Uses the decision point captured by ``env.decide`` (time + trace) and
    the ledger's proposal time as the window.
    """
    point = runtime.decide_points.get((pid, instance))
    if point is None:
        raise ValueError(f"no recorded decision for pid={pid!r} instance={instance!r}")
    decided_at, trace_id = point
    proposed_at = runtime.kernel.metrics.proposals.get(pid)
    if proposed_at is None:
        raise ValueError(f"no recorded proposal for pid={pid!r}")
    return critical_path_between(
        runtime.spans, int(pid), proposed_at, decided_at, trace_id
    )
