"""repro.obs — causal tracing, metrics registry, profiling, flight recorder.

Quickstart::

    from repro import obs

    runtime = obs.attach(cluster.kernel)           # before running
    runtime.add_sink(obs.ChromeTraceSink("trace.json"))  # Perfetto-viewable
    ... run the experiment ...
    path = obs.critical_path(runtime, pid=0)
    print(path.summary())      # "= 0 message delays + 2 memory delays + ..."
    runtime.close()
"""

from repro.obs.critical import (
    CriticalPath,
    Segment,
    critical_path,
    critical_path_between,
)
from repro.obs.diff import (
    TraceDiff,
    critical_delta,
    diff_runs,
    diff_spans,
    format_critical_delta,
    span_identities,
)
from repro.obs.flight import FlightRecorder
from repro.obs.profiler import TaskProfiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import ObsRuntime, PhaseHandle, attach, detach
from repro.obs.sinks import ChromeTraceSink, JsonlSink
from repro.obs.slo import Objective, SloTracker
from repro.obs.whatif import (
    Experiment,
    LatencyOverride,
    Measurement,
    ScaleIssue,
    ScaleLink,
    ScaleMemory,
    ScalePhase,
    WhatIfProfiler,
    issue_experiment,
    link_experiment,
    measure,
    memory_experiment,
    phase_experiment,
    run_hash,
)
from repro.obs.spans import (
    K_MEMOP,
    K_MSG,
    K_PHASE,
    K_POINT,
    K_TASK,
    Span,
    render_tree,
    span_tree,
)

__all__ = [
    "CriticalPath",
    "Segment",
    "critical_path",
    "critical_path_between",
    "TraceDiff",
    "critical_delta",
    "diff_runs",
    "diff_spans",
    "format_critical_delta",
    "span_identities",
    "Objective",
    "SloTracker",
    "Experiment",
    "LatencyOverride",
    "Measurement",
    "ScaleIssue",
    "ScaleLink",
    "ScaleMemory",
    "ScalePhase",
    "WhatIfProfiler",
    "issue_experiment",
    "link_experiment",
    "measure",
    "memory_experiment",
    "phase_experiment",
    "run_hash",
    "FlightRecorder",
    "TaskProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsRuntime",
    "PhaseHandle",
    "attach",
    "detach",
    "ChromeTraceSink",
    "JsonlSink",
    "K_MEMOP",
    "K_MSG",
    "K_PHASE",
    "K_POINT",
    "K_TASK",
    "Span",
    "render_tree",
    "span_tree",
]
