"""Differential tracing: align two runs' span trees, attribute the delta.

Two runs of the same scenario under different configurations (doorbell
batching on vs off, a what-if override applied, a different read mode)
produce structurally similar span forests.  This module matches spans
across the runs by **causal identity** — the path of ``(kind, name)``
pairs from a span's trace root down to it, plus an occurrence ordinal
among same-path spans (assigned in creation order, which the
deterministic kernel makes reproducible) — and then attributes the
end-to-end latency difference span by span:

* *matched* spans contribute their duration delta;
* spans present only in one run (``only_a``/``only_b``) are the
  structural difference — e.g. the per-op memop spans a fused chain
  replaced with a single ``BatchOp`` span;
* :func:`critical_delta` does the same segment-by-segment on two
  critical-path decompositions, in the paper's delay units.

The per-name aggregation (:meth:`TraceDiff.by_name`) is the usual
reading: "where did the 4 saved delays come from?" — and the answer is
a table, not a guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.reporting import format_table
from repro.obs.spans import Span

#: a span's causal identity: ((kind, name), ...) path + occurrence ordinal
Identity = Tuple[Tuple[Tuple[str, str], ...], int]


def span_identities(spans: Sequence[Span]) -> Dict[int, Identity]:
    """Assign every span its causal identity.

    Parents are always created before children (span ids are allocated
    monotonically), so one pass in id order suffices.  The occurrence
    ordinal counts same-path spans in creation order — two identical
    retries of the same phase get ordinals 0 and 1 and therefore match
    their counterparts pairwise across runs.
    """
    identities: Dict[int, Identity] = {}
    paths: Dict[int, Tuple[Tuple[str, str], ...]] = {}
    occurrences: Dict[Tuple[Tuple[str, str], ...], int] = {}
    for span in sorted(spans, key=lambda s: s.span_id):
        parent_path = (
            paths.get(span.parent_id, ()) if span.parent_id is not None else ()
        )
        path = parent_path + ((span.kind, span.name),)
        paths[span.span_id] = path
        ordinal = occurrences.get(path, 0)
        occurrences[path] = ordinal + 1
        identities[span.span_id] = (path, ordinal)
    return identities


@dataclass
class SpanDelta:
    """One causally-matched span pair and its duration delta (b - a)."""

    identity: Identity
    a: Span
    b: Span

    @property
    def name(self) -> str:
        return self.a.name

    @property
    def kind(self) -> str:
        return self.a.kind

    @staticmethod
    def _duration(span: Span) -> Optional[float]:
        return None if span.end is None else span.end - span.start

    @property
    def delta(self) -> float:
        da, db = self._duration(self.a), self._duration(self.b)
        if da is None or db is None:
            return 0.0
        return db - da


@dataclass
class TraceDiff:
    """The alignment of two span sets."""

    matched: List[SpanDelta] = field(default_factory=list)
    only_a: List[Span] = field(default_factory=list)
    only_b: List[Span] = field(default_factory=list)

    @property
    def total_delta(self) -> float:
        """Sum of matched duration deltas (b minus a, virtual units)."""
        return sum(pair.delta for pair in self.matched)

    def by_name(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Aggregate per (kind, name): matches, delta, structural counts."""
        out: Dict[Tuple[str, str], Dict[str, float]] = {}

        def bucket(kind: str, name: str) -> Dict[str, float]:
            return out.setdefault(
                (kind, name),
                {"matched": 0, "delta": 0.0, "only_a": 0, "only_b": 0},
            )

        for pair in self.matched:
            entry = bucket(pair.kind, pair.name)
            entry["matched"] += 1
            entry["delta"] += pair.delta
        for span in self.only_a:
            bucket(span.kind, span.name)["only_a"] += 1
        for span in self.only_b:
            bucket(span.kind, span.name)["only_b"] += 1
        return out

    def summary(self, limit: int = 20) -> str:
        """The attribution table, largest absolute contribution first."""
        aggregated = self.by_name()
        ranked = sorted(
            aggregated.items(),
            key=lambda kv: (
                -(abs(kv[1]["delta"]) + kv[1]["only_a"] + kv[1]["only_b"]),
                kv[0],
            ),
        )
        rows = []
        for (kind, name), entry in ranked[:limit]:
            rows.append(
                [
                    kind,
                    name,
                    int(entry["matched"]),
                    f"{entry['delta']:+g}",
                    int(entry["only_a"]),
                    int(entry["only_b"]),
                ]
            )
        table = format_table(
            ["kind", "name", "matched", "delta", "only a", "only b"], rows
        )
        head = (
            f"trace diff: {len(self.matched)} matched spans "
            f"(net {self.total_delta:+g} units), "
            f"{len(self.only_a)} only in A, {len(self.only_b)} only in B"
        )
        if len(ranked) > limit:
            head += f" (top {limit} of {len(ranked)} names shown)"
        return f"{head}\n{table}"


def diff_spans(spans_a: Sequence[Span], spans_b: Sequence[Span]) -> TraceDiff:
    """Align two span sets by causal identity."""
    ids_a = span_identities(spans_a)
    ids_b = span_identities(spans_b)
    by_identity_b: Dict[Identity, Span] = {
        ids_b[span.span_id]: span for span in spans_b
    }
    diff = TraceDiff()
    matched_b = set()
    for span in sorted(spans_a, key=lambda s: s.span_id):
        identity = ids_a[span.span_id]
        other = by_identity_b.get(identity)
        if other is None:
            diff.only_a.append(span)
        else:
            matched_b.add(other.span_id)
            diff.matched.append(SpanDelta(identity, span, other))
    for span in sorted(spans_b, key=lambda s: s.span_id):
        if span.span_id not in matched_b:
            diff.only_b.append(span)
    return diff


def diff_runs(runtime_a, runtime_b) -> TraceDiff:
    """Align two obs runtimes' finished spans (e.g. two what-if runs)."""
    return diff_spans(list(runtime_a.finished), list(runtime_b.finished))


def critical_delta(path_a, path_b) -> Dict[str, Dict[str, float]]:
    """Per-phase delay delta between two critical-path decompositions.

    Returns phase -> {"msg": .., "mem": .., "queue": ..} with B's delay
    units minus A's — the segment-by-segment answer to "which phase paid
    for (or funded) the difference".
    """
    delta: Dict[str, Dict[str, float]] = {}
    for sign, path in ((-1.0, path_a), (+1.0, path_b)):
        for phase, buckets in path.phase_delays().items():
            entry = delta.setdefault(phase, {"msg": 0.0, "mem": 0.0, "queue": 0.0})
            for key, value in buckets.items():
                entry[key] += sign * value
    return delta


def format_critical_delta(delta: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [phase, f"{entry['msg']:+g}", f"{entry['mem']:+g}", f"{entry['queue']:+g}"]
        for phase, entry in sorted(delta.items())
    ]
    return format_table(["phase", "msg delta", "mem delta", "queue delta"], rows)
