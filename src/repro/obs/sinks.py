"""Streaming span sinks: JSONL and Chrome trace-event format.

Sinks replace trust in the in-memory span ring for long runs: every span
is written the moment it finishes, so a run that crashes mid-way still
leaves a readable trace on disk.

:class:`ChromeTraceSink` writes the Trace Event Format consumed by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: load the file
and the span tree renders as one lane per process, one row per task.
Virtual time has no wall-clock unit, so one virtual delay unit is mapped
to 1 ms (1000 trace-format microseconds) — a 2-delay PMP decision shows as
a 2 ms bar.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from repro.obs.spans import K_POINT, Span

#: trace-format microseconds per virtual time unit (1 unit -> 1 ms)
US_PER_UNIT = 1000.0


class JsonlSink:
    """One JSON object per finished span, streamed to *path* (or file)."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, span: Span) -> None:
        self._file.write(json.dumps(span.to_dict()) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


class ChromeTraceSink:
    """Perfetto-viewable trace: ``X`` duration events, ``i`` instants.

    The JSON array is streamed open; :meth:`close` terminates it.  Perfetto
    tolerates an unterminated array, so even a crashed run's file loads.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self._file.write("[\n")
        self._first = True

    @staticmethod
    def _lanes(span: Span) -> tuple:
        # Actor labels look like "p1/shard0-leader" (process/task); Perfetto
        # renders pid as the lane group and tid as the row within it.
        process, _, thread = span.actor.partition("/")
        return process or span.actor, thread or span.name

    def emit(self, span: Span) -> None:
        process, thread = self._lanes(span)
        event = {
            "name": f"{span.kind}:{span.name}",
            "cat": span.kind,
            "pid": process,
            "tid": thread,
            "ts": span.start * US_PER_UNIT,
        }
        if span.kind == K_POINT or span.end is None or span.end == span.start:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * US_PER_UNIT
        if span.attrs:
            event["args"] = {k: repr(v) for k, v in span.attrs.items()}
        event["args"] = {**event.get("args", {}), "trace": span.trace_id, "span": span.span_id}
        prefix = "" if self._first else ",\n"
        self._first = False
        self._file.write(prefix + json.dumps(event))

    def close(self) -> None:
        self._file.write("\n]\n")
        self._file.flush()
        if self._owns:
            self._file.close()
