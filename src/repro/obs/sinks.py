"""Streaming span sinks: JSONL and Chrome trace-event format.

Sinks replace trust in the in-memory span ring for long runs: every span
is written the moment it finishes, so a run that crashes mid-way still
leaves a readable trace on disk.

:class:`ChromeTraceSink` writes the Trace Event Format consumed by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: load the file
and the span tree renders as one lane per process, one row per task.
Virtual time has no wall-clock unit, so one virtual delay unit is mapped
to 1 ms (1000 trace-format microseconds) — a 2-delay PMP decision shows as
a 2 ms bar.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from repro.obs.spans import K_POINT, Span

#: trace-format microseconds per virtual time unit (1 unit -> 1 ms)
US_PER_UNIT = 1000.0


class JsonlSink:
    """One JSON object per finished span, streamed to *path* (or file)."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, span: Span) -> None:
        self._file.write(json.dumps(span.to_dict()) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


class ChromeTraceSink:
    """Perfetto-viewable trace: ``X`` duration events, ``i`` instants.

    The JSON array is streamed open; :meth:`close` terminates it.  Perfetto
    tolerates an unterminated array, so even a crashed run's file loads.

    Two causal extras beyond plain duration events:

    * spans carrying a ``flow`` attribute (fan-out legs and the
      ``fanout.verdict`` point the kernel emits when a single-completion
      quorum fires) are linked with flow events (``s``/``t``/``f``), so a
      fused chain renders as arrows from every issued leg into the one
      verdict that resumed the task;
    * when a :class:`~repro.obs.registry.MetricsRegistry` is wired (pass
      it here, or ``runtime.add_sink`` wires its own), every gauge series
      is emitted as a Perfetto counter track (``C`` events) at close.
    """

    def __init__(self, target: Union[str, IO[str]], registry=None) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        #: gauge source for counter tracks (None: wired by add_sink)
        self.registry = registry
        self._file.write("[\n")
        self._first = True
        self._flows_started: set = set()

    @staticmethod
    def _lanes(span: Span) -> tuple:
        # Actor labels look like "p1/shard0-leader" (process/task); Perfetto
        # renders pid as the lane group and tid as the row within it.
        process, _, thread = span.actor.partition("/")
        return process or span.actor, thread or span.name

    def emit(self, span: Span) -> None:
        process, thread = self._lanes(span)
        event = {
            "name": f"{span.kind}:{span.name}",
            "cat": span.kind,
            "pid": process,
            "tid": thread,
            "ts": span.start * US_PER_UNIT,
        }
        if span.kind == K_POINT or span.end is None or span.end == span.start:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * US_PER_UNIT
        if span.attrs:
            event["args"] = {k: repr(v) for k, v in span.attrs.items()}
        event["args"] = {**event.get("args", {}), "trace": span.trace_id, "span": span.span_id}
        self._write(event)
        flow = None if span.attrs is None else span.attrs.get("flow")
        if flow is not None:
            self._emit_flow(span, process, thread, str(flow))

    def _write(self, event: dict) -> None:
        prefix = "" if self._first else ",\n"
        self._first = False
        self._file.write(prefix + json.dumps(event))

    def _emit_flow(self, span: Span, process: str, thread, flow: str) -> None:
        """One flow-event arrow node per flow-tagged span.

        The first issued leg of a fan-out starts the flow (``s``), later
        legs are steps (``t``), and the ``fanout.verdict`` point finishes
        it (``f``) — Perfetto then draws issue -> verdict arrows.
        """
        if span.name == "fanout.verdict":
            phase, ts = "f", span.start
        elif flow in self._flows_started:
            phase, ts = "t", span.end if span.end is not None else span.start
        else:
            self._flows_started.add(flow)
            phase, ts = "s", span.start
        event = {
            "name": "fanout",
            "cat": "flow",
            "ph": phase,
            "id": flow,
            "pid": process,
            "tid": thread,
            "ts": ts * US_PER_UNIT,
        }
        if phase == "f":
            event["bp"] = "e"
        self._write(event)

    def _emit_counters(self) -> None:
        """Perfetto counter tracks: one ``C`` event per gauge sample."""
        if self.registry is None:
            return
        for gauge in self.registry.gauges():
            labels = ",".join(f"{k}={v}" for k, v in gauge.labels)
            name = f"{gauge.name}{{{labels}}}" if labels else gauge.name
            for now, value in gauge.series:
                self._write(
                    {
                        "name": name,
                        "cat": "metrics",
                        "ph": "C",
                        "pid": "metrics",
                        "ts": now * US_PER_UNIT,
                        "args": {"value": value},
                    }
                )

    def close(self) -> None:
        self._emit_counters()
        self._file.write("\n]\n")
        self._file.flush()
        if self._owns:
            self._file.close()
