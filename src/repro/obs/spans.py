"""Causal spans: the unit of the observability layer.

A :class:`Span` is one timed interval of work attributed to one actor —
a task's lifetime, a message in flight, a memory operation (request leg
through response leg), a protocol phase, or a zero-length point event.
Spans form a tree: every span carries its parent's id and the id of the
*trace* (causal tree) it belongs to, so one client command's journey
through frontend, router, leader batch, consensus phases, per-memory ops
and reply pump reconstructs as a single tree.

Context propagation mirrors RDMA semantics: the context *rides the
operation* — an :class:`~repro.net.messages.Envelope` carries the open
message span; a one-sided memory op's span is keyed to its completion
token and closed by the response leg.  A span that never closes (message
into a partition, op on a crashed memory) is itself a finding: the flight
recorder dumps open spans alongside recent finished ones.

Spans are plain ``__slots__`` value objects; everything that creates them
lives in :class:`~repro.obs.runtime.ObsRuntime` and is only reachable when
a runtime is attached (``kernel.obs is not None``) — the zero-cost
contract of the tracer, extended.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: span kinds (the analyzer prices transport kinds in the paper's units)
K_TASK = "task"
K_MSG = "msg"
K_MEMOP = "memop"
K_PHASE = "phase"
K_POINT = "point"


class Span:
    """One timed interval of attributed work in a causal tree."""

    __slots__ = (
        "span_id",
        "parent_id",
        "trace_id",
        "name",
        "kind",
        "actor",
        "start",
        "end",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        name: str,
        kind: str,
        actor: str,
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.kind = kind
        self.actor = actor
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering (the JSONL sink's record shape)."""
        record: Dict[str, Any] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
            "name": self.name,
            "kind": self.kind,
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            record["attrs"] = {k: repr(v) for k, v in self.attrs.items()}
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = (
            f"[{self.start:g}..]" if self.end is None else f"[{self.start:g}..{self.end:g}]"
        )
        return f"<Span#{self.span_id} {self.kind}:{self.name} {self.actor} {when}>"


def span_tree(spans, trace_id: int) -> Dict[Optional[int], list]:
    """Index *spans* of one trace as ``parent_id -> [children]`` (start order)."""
    children: Dict[Optional[int], list] = {}
    for span in spans:
        if span.trace_id == trace_id:
            children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    return children


def render_tree(spans, trace_id: int) -> str:
    """ASCII rendering of one trace's span tree (examples, debugging)."""
    children = span_tree(spans, trace_id)
    by_id = {s.span_id: s for group in children.values() for s in group}
    roots = [s for s in children.get(None, []) if s.span_id in by_id]
    # Spans whose parent is outside the collected set render as roots too.
    roots += [
        s
        for group in children.values()
        for s in group
        if s.parent_id is not None and s.parent_id not in by_id
    ]
    lines = []

    def walk(span: Span, depth: int) -> None:
        when = "open" if span.end is None else f"{span.start:g}..{span.end:g}"
        lines.append(f"{'  ' * depth}{span.kind}:{span.name} ({span.actor}) [{when}]")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
        walk(root, 0)
    return "\n".join(lines)
