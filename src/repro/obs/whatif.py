"""Causal what-if profiling: counterfactual experiments on the kernel.

Classic profilers report where time *was* spent; a causal profiler asks
the question that actually matters for optimization: *if this component
were faster, how much faster would the end-to-end result be?*  On real
hardware that takes statistical trickery (Coz's virtual speedups); on a
deterministic simulation kernel it is exact — rebuild the identical
scenario (same seed, same fault script, same clients), wrap the latency
model in a :class:`LatencyOverride` that scales one component, and rerun.
The delta between the two runs is the component's true causal
contribution, including every queueing and overlap effect a span-sum
profiler gets wrong.

Override rules target the units of the paper's cost model:

* :class:`ScaleMemory` — one memory's (or every memory's) op legs, the
  "faster NVMM device" experiment;
* :class:`ScaleLink` — message delay on a link (or all links), the
  "faster network" experiment;
* :class:`ScaleIssue` — the per-WR issue increment inside doorbell-batched
  chains, the "faster NIC doorbell" experiment;
* :class:`ScalePhase` — every transport leg priced while a matching phase
  span is open (``pmp.prepare``, ``log.phase2``, ...), the "what if this
  protocol phase were cheap" experiment.  Needs an attached obs runtime;
  the profiler's scenario is expected to attach one.

:class:`WhatIfProfiler` drives scenarios, extracts a
:class:`Measurement` per run (decision delays, commit p50/p99,
throughput, critical-path recomposition, trace hash), and
:meth:`WhatIfProfiler.rank` is the greedy top-k bottleneck driver: each
round it measures every remaining candidate *stacked on the winners so
far* and keeps the one with the largest measured improvement — ranking
by actual effect, never by span totals.

Validation (asserted in tests): on classic unbatched PMP the top-ranked
experiment is the prepare fan-out, and scaling it by 1/3 reproduces the
doorbell-batching win exactly — 8 delays down to 4, the same number the
fused-chain implementation measures.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, WhatIfDivergence
from repro.metrics.reporting import format_table
from repro.metrics.workload import percentile
from repro.sim.latency import LatencyModel, NominalLatency


# ----------------------------------------------------------------------
# override rules
# ----------------------------------------------------------------------
class Rule:
    """Base class for override rules; factor > 0 scales a delay."""

    __slots__ = ("factor",)

    def __init__(self, factor: float) -> None:
        if factor <= 0:
            raise ConfigurationError("override factor must be > 0")
        self.factor = factor

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class ScaleMemory(Rule):
    """Scale both op legs of one memory (``mid=None``: every memory)."""

    __slots__ = ("mid",)

    def __init__(self, factor: float, mid: Optional[int] = None) -> None:
        super().__init__(factor)
        self.mid = mid

    def describe(self) -> str:
        target = "all memories" if self.mid is None else f"mu{self.mid + 1}"
        return f"{target} x{self.factor:g}"


class ScaleLink(Rule):
    """Scale message delay on (src, dst); ``None`` wildcards either end."""

    __slots__ = ("src", "dst")

    def __init__(
        self, factor: float, src: Optional[int] = None, dst: Optional[int] = None
    ) -> None:
        super().__init__(factor)
        self.src = src
        self.dst = dst

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )

    def describe(self) -> str:
        src = "*" if self.src is None else f"p{self.src + 1}"
        dst = "*" if self.dst is None else f"p{self.dst + 1}"
        return f"link {src}->{dst} x{self.factor:g}"


class ScaleIssue(Rule):
    """Scale the per-WR issue increment of doorbell-batched chains."""

    __slots__ = ()

    def describe(self) -> str:
        return f"WR issue x{self.factor:g}"


class ScalePhase(Rule):
    """Scale every transport leg priced under a matching open phase span.

    *pattern* is a substring match on phase-span names (``"pmp.prepare"``
    matches the PMP prepare fan-out, ``"log."`` every replicated-log
    phase).  Both legs of a memory op are scaled: the request leg looks
    up the open phases of the *issuing* task, and the matching factor is
    carried to the response leg through a per-``(pid, mid)`` FIFO — valid
    because overridden delays remain constant per component, so legs
    complete in issue order (the kernel's FIFO queue-pair property).

    Caveat: an op that hangs forever on a crashed memory never prices its
    response leg, which would desynchronize the FIFO for later ops on the
    same ``(pid, mid)``.  Phase experiments therefore belong on the
    chaos-free common-case runs the paper's delay accounting describes.
    """

    __slots__ = ("pattern",)

    def __init__(self, factor: float, pattern: str) -> None:
        super().__init__(factor)
        if not pattern:
            raise ConfigurationError("phase pattern must be non-empty")
        self.pattern = pattern

    def describe(self) -> str:
        return f"phase {self.pattern!r} x{self.factor:g}"


# ----------------------------------------------------------------------
# the override latency model
# ----------------------------------------------------------------------
class LatencyOverride(LatencyModel):
    """Wrap *base* and scale the components named by *rules*.

    Defining the ``*_delay`` methods drops the cached constants
    (``LatencyModel.__init_subclass__``), so a kernel adopting an
    override always takes the dynamic pricing path — install it either
    at construction or through ``Kernel.set_latency`` (which re-derives
    the constant cache).  The base model's own constants are still
    honoured: a declared constant is read directly, so wrapping
    ``NominalLatency`` prices exactly like ``NominalLatency`` wherever no
    rule matches.
    """

    def __init__(self, base: Optional[LatencyModel] = None, rules: Sequence[Rule] = ()) -> None:
        self.base = base if base is not None else NominalLatency()
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.mem_rules: List[ScaleMemory] = []
        self.link_rules: List[ScaleLink] = []
        self.issue_rules: List[ScaleIssue] = []
        self.phase_rules: List[ScalePhase] = []
        for rule in self.rules:
            if isinstance(rule, ScaleMemory):
                self.mem_rules.append(rule)
            elif isinstance(rule, ScaleLink):
                self.link_rules.append(rule)
            elif isinstance(rule, ScaleIssue):
                self.issue_rules.append(rule)
            elif isinstance(rule, ScalePhase):
                self.phase_rules.append(rule)
            else:
                raise ConfigurationError(f"unknown override rule {rule!r}")
        self._kernel = None
        #: (pid, mid) -> FIFO of phase factors awaiting their response leg
        self._pending: Dict[Tuple[int, int], deque] = {}
        # Per-component constant scaling preserves op ordering per memory,
        # so a constant base keeps the FIFO queue-pair property (fused
        # read chains stay enabled — the counterfactual run must take the
        # same code paths as its baseline).  Phase rules vary mid-stream
        # and forfeit it.
        self.fifo_memory_ops = not self.phase_rules and (
            self.base.constant_request_delay is not None
            and self.base.constant_response_delay is not None
            and self.base.constant_issue_delay is not None
        )

    def bind(self, kernel) -> None:
        self._kernel = kernel
        self.base.bind(kernel)

    def describe(self) -> str:
        return ", ".join(rule.describe() for rule in self.rules) or "(no rules)"

    # -- factor lookups -------------------------------------------------
    def _mem_factor(self, mid: int) -> float:
        factor = 1.0
        for rule in self.mem_rules:
            if rule.mid is None or rule.mid == mid:
                factor *= rule.factor
        return factor

    def _phase_factor(self) -> float:
        """Product of phase rules matching any open enclosing phase.

        Each rule applies at most once however many nested phases match
        it.  Without an attached obs runtime (or outside any task) no
        phase information exists and the factor is 1.
        """
        if not self.phase_rules:
            return 1.0
        kernel = self._kernel
        if kernel is None or kernel.obs is None:
            return 1.0
        task = kernel.obs.current_task
        if task is None:
            return 1.0
        names = kernel.obs.enclosing_phases(task)
        if not names:
            return 1.0
        factor = 1.0
        for rule in self.phase_rules:
            if any(rule.pattern in name for name in names):
                factor *= rule.factor
        return factor

    # -- pricing --------------------------------------------------------
    def message_delay(self, src, dst, now, rng) -> float:
        base = self.base.constant_message_delay
        if base is None:
            base = self.base.message_delay(src, dst, now, rng)
        for rule in self.link_rules:
            if rule.matches(int(src), int(dst)):
                base *= rule.factor
        if self.phase_rules:
            base *= self._phase_factor()
        return base

    def memory_request_delay(self, pid, mid, now, rng) -> float:
        base = self.base.constant_request_delay
        if base is None:
            base = self.base.memory_request_delay(pid, mid, now, rng)
        base *= self._mem_factor(int(mid))
        if self.phase_rules:
            factor = self._phase_factor()
            # hand the factor to the matching response leg (FIFO per pair)
            self._pending.setdefault((int(pid), int(mid)), deque()).append(factor)
            base *= factor
        return base

    def memory_response_delay(self, pid, mid, now, rng) -> float:
        base = self.base.constant_response_delay
        if base is None:
            base = self.base.memory_response_delay(pid, mid, now, rng)
        base *= self._mem_factor(int(mid))
        if self.phase_rules:
            pending = self._pending.get((int(pid), int(mid)))
            if pending:
                base *= pending.popleft()
        return base

    def memory_issue_delay(self, pid, mid, now, rng) -> float:
        base = self.base.constant_issue_delay
        if base is None:
            base = self.base.memory_issue_delay(pid, mid, now, rng)
        for rule in self.issue_rules:
            base *= rule.factor
        base *= self._mem_factor(int(mid))
        if self.phase_rules:
            base *= self._phase_factor()
        return base


# ----------------------------------------------------------------------
# experiments and measurements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Experiment:
    """A named bundle of override rules — one counterfactual."""

    name: str
    rules: Tuple[Rule, ...]

    def describe(self) -> str:
        return ", ".join(rule.describe() for rule in self.rules)


def phase_experiment(pattern: str, factor: float, name: Optional[str] = None) -> Experiment:
    return Experiment(name or f"phase:{pattern}", (ScalePhase(factor, pattern),))


def memory_experiment(mid: Optional[int], factor: float, name: Optional[str] = None) -> Experiment:
    label = "mem:*" if mid is None else f"mem:mu{mid + 1}"
    return Experiment(name or label, (ScaleMemory(factor, mid),))


def link_experiment(
    factor: float,
    src: Optional[int] = None,
    dst: Optional[int] = None,
    name: Optional[str] = None,
) -> Experiment:
    return Experiment(name or "links", (ScaleLink(factor, src, dst),))


def issue_experiment(factor: float, name: Optional[str] = None) -> Experiment:
    return Experiment(name or "wr-issue", (ScaleIssue(factor),))


def run_hash(kernel) -> str:
    """Deterministic identity of a finished run.

    Hashes the span tree (ids, parents, names, exact virtual times and
    attrs) when an obs runtime is attached, the tracer's event log when
    tracing is on, and always the ledger's decisions/counters plus the
    kernel's event-queue totals — two replays of the same scenario must
    agree on every one of these.
    """
    digest = hashlib.sha256()
    obs = kernel.obs
    if obs is not None:
        for span in list(obs.finished) + obs.open_spans():
            # msg_id is allocated from a process-global counter (see
            # repro.net.messages), so it differs between two replays in
            # the same interpreter; everything else must match exactly.
            attrs = () if span.attrs is None else tuple(
                sorted(
                    (kv for kv in span.attrs.items() if kv[0] != "msg_id"),
                    key=lambda kv: kv[0],
                )
            )
            digest.update(
                repr(
                    (
                        span.span_id,
                        span.parent_id,
                        span.trace_id,
                        span.name,
                        span.kind,
                        span.actor,
                        span.start,
                        span.end,
                        attrs,
                    )
                ).encode()
            )
    for event in kernel.tracer.events:
        digest.update(str(event).encode())
    ledger = kernel.metrics
    for pid in sorted(ledger.decisions):
        record = ledger.decisions[pid]
        digest.update(f"D p{int(pid)} {record.value!r} @{record.decided_at}".encode())
    for instance, book in sorted(
        ledger.instance_decisions.items(), key=lambda kv: repr(kv[0])
    ):
        for pid in sorted(book):
            record = book[pid]
            digest.update(
                f"I {instance!r} p{int(pid)} {record.value!r} @{record.decided_at}".encode()
            )
    digest.update(
        (
            f"msgs={sorted(ledger.messages_sent.items())} "
            f"ops={sorted(ledger.mem_ops.items())} "
            f"pushed={kernel.queue.pushed} popped={kernel.queue.popped} "
            f"now={kernel.now}"
        ).encode()
    )
    return digest.hexdigest()


@dataclass
class Measurement:
    """End-to-end numbers extracted from one finished run."""

    final_time: float
    #: pid -> decision delay (single-shot consensus runs)
    decision_delays: Dict[int, float] = field(default_factory=dict)
    earliest_delay: Optional[float] = None
    commits: int = 0
    #: commits per kilo-delay (the autoscaler's rate unit)
    throughput: float = 0.0
    latency_p50: Optional[float] = None
    latency_p99: Optional[float] = None
    trace_hash: str = ""
    #: critical-path recomposition of the earliest decision, when traced:
    #: phase name -> {"msg": .., "mem": .., "queue": ..}
    phase_delays: Optional[Dict[str, Dict[str, float]]] = None
    #: (message_delays, memory_delays, queueing) of that critical path
    path_breakdown: Optional[Tuple[float, float, float]] = None

    def metric(self, name: str) -> Optional[float]:
        """A named cost (lower is better), or None when unavailable."""
        if name == "delay":
            return self.earliest_delay
        if name == "p50":
            return self.latency_p50
        if name == "p99":
            return self.latency_p99
        if name == "time":
            return self.final_time
        if name == "auto":
            for candidate in ("delay", "p99", "time"):
                value = self.metric(candidate)
                if value is not None:
                    return value
            return None
        raise ConfigurationError(f"unknown metric {name!r}")


def measure(kernel) -> Measurement:
    """Extract a :class:`Measurement` from a finished run's kernel."""
    ledger = kernel.metrics
    delays = {
        int(pid): record.delays
        for pid, record in ledger.decisions.items()
        if record.delays is not None
    }
    samples = [
        latency
        for window in ledger.shard_latencies.values()
        for _completed_at, latency in window
    ]
    commits = sum(ledger.shard_commits.values())
    now = kernel.now
    measurement = Measurement(
        final_time=now,
        decision_delays=delays,
        earliest_delay=ledger.earliest_decision_delay(),
        commits=commits,
        throughput=1000.0 * commits / now if now > 0 else 0.0,
        latency_p50=percentile(samples, 0.50) if samples else None,
        latency_p99=percentile(samples, 0.99) if samples else None,
        trace_hash=run_hash(kernel),
    )
    obs = kernel.obs
    if obs is not None and delays:
        from repro.obs.critical import critical_path

        pid = min(delays, key=lambda p: (delays[p], p))
        try:
            path = critical_path(obs, pid)
        except ValueError:
            path = None
        if path is not None:
            measurement.phase_delays = path.phase_delays()
            measurement.path_breakdown = (
                path.message_delays,
                path.memory_delays,
                path.queueing,
            )
    return measurement


# ----------------------------------------------------------------------
# the profiler
# ----------------------------------------------------------------------
@dataclass
class WhatIfRun:
    """One executed scenario: its kernel and its measurement."""

    name: str
    kernel: Any
    measurement: Measurement

    @property
    def runtime(self):
        """The run's obs runtime (None when the scenario didn't attach)."""
        return self.kernel.obs


@dataclass
class WhatIfResult:
    """One experiment next to the baseline."""

    experiment: Experiment
    run: WhatIfRun
    baseline: WhatIfRun
    metric: str

    @property
    def before(self) -> Optional[float]:
        return self.baseline.measurement.metric(self.metric)

    @property
    def after(self) -> Optional[float]:
        return self.run.measurement.metric(self.metric)

    @property
    def improvement(self) -> float:
        before, after = self.before, self.after
        if before is None or after is None:
            return 0.0
        return before - after

    @property
    def speedup(self) -> Optional[float]:
        before, after = self.before, self.after
        if before is None or after is None or after == 0:
            return None
        return before / after


@dataclass
class RankedBottleneck:
    """One greedy round's winner."""

    rank: int
    experiment: Experiment
    before: float
    after: float
    run: WhatIfRun

    @property
    def improvement(self) -> float:
        return self.before - self.after

    @property
    def speedup(self) -> Optional[float]:
        return None if self.after == 0 else self.before / self.after


@dataclass
class BottleneckReport:
    """Measured top-k ranking plus the per-round evaluation record."""

    baseline: WhatIfRun
    metric: str
    ranked: List[RankedBottleneck] = field(default_factory=list)
    #: per greedy round: experiment name -> measured cost (stacked)
    rounds: List[Dict[str, float]] = field(default_factory=list)

    @property
    def top(self) -> Optional[RankedBottleneck]:
        return self.ranked[0] if self.ranked else None

    def summary(self) -> str:
        base = self.baseline.measurement.metric(self.metric)
        rows = [
            [
                entry.rank,
                entry.experiment.name,
                entry.experiment.describe(),
                f"{entry.before:g}",
                f"{entry.after:g}",
                f"-{entry.improvement:g}",
                "-" if entry.speedup is None else f"{entry.speedup:.2f}x",
            ]
            for entry in self.ranked
        ]
        table = format_table(
            ["rank", "experiment", "override", "before", "after", "delta", "speedup"],
            rows,
        )
        head = (
            f"bottleneck ranking by measured {self.metric} "
            f"(baseline: {'-' if base is None else format(base, 'g')})"
        )
        return f"{head}\n{table}"


class WhatIfProfiler:
    """Runs counterfactual experiments against a scenario closure.

    *scenario* is a callable taking a latency model and returning a
    finished run — anything exposing ``.kernel`` (a ``RunResult``, a
    ``ShardedKV``) or the kernel itself.  It must build a **fresh**
    system per call (same seed, same inputs): the profiler calls it once
    per experiment, and determinism across calls is what makes the
    deltas causal.

    *base_factory* builds the baseline latency model per run (default
    :class:`NominalLatency`); experiments wrap a fresh base in a fresh
    :class:`LatencyOverride`, so no pricing state leaks between runs.
    """

    def __init__(
        self,
        scenario: Callable[[LatencyModel], Any],
        base_factory: Callable[[], LatencyModel] = NominalLatency,
        metric: str = "auto",
        check_determinism: bool = False,
    ) -> None:
        self.scenario = scenario
        self.base_factory = base_factory
        self.metric = metric
        self.check_determinism = check_determinism
        self._baseline: Optional[WhatIfRun] = None

    # -- execution ------------------------------------------------------
    def _execute(self, latency: LatencyModel):
        outcome = self.scenario(latency)
        kernel = getattr(outcome, "kernel", outcome)
        if not hasattr(kernel, "metrics"):
            raise ConfigurationError(
                "scenario must return a kernel or an object with .kernel"
            )
        return kernel

    def run(self, rules: Sequence[Rule] = (), name: str = "baseline") -> WhatIfRun:
        """Execute the scenario under *rules* and measure it."""
        def build() -> Any:
            base = self.base_factory()
            return self._execute(LatencyOverride(base, rules) if rules else base)

        kernel = build()
        measurement = measure(kernel)
        if self.check_determinism:
            replay_hash = measure(build()).trace_hash
            if replay_hash != measurement.trace_hash:
                raise WhatIfDivergence(
                    f"experiment {name!r} diverged on replay: "
                    f"{measurement.trace_hash[:16]} != {replay_hash[:16]} — "
                    "the scenario closure is not rebuilding identically"
                )
        return WhatIfRun(name, kernel, measurement)

    def baseline(self) -> WhatIfRun:
        """The no-override run (cached across experiments)."""
        if self._baseline is None:
            self._baseline = self.run()
        return self._baseline

    # -- drivers --------------------------------------------------------
    def compare(self, experiments: Sequence[Experiment]) -> List[WhatIfResult]:
        """Measure each experiment independently against the baseline."""
        baseline = self.baseline()
        return [
            WhatIfResult(
                experiment,
                self.run(experiment.rules, experiment.name),
                baseline,
                self.metric,
            )
            for experiment in experiments
        ]

    def rank(self, experiments: Sequence[Experiment], k: int = 3) -> BottleneckReport:
        """Greedy top-k bottleneck ranking by *measured* improvement.

        Round by round: run every remaining candidate stacked on the
        winners chosen so far, keep the one that lowers the metric most,
        stop early when nothing improves.  Stacking matters — after the
        top bottleneck is virtually removed, the second round measures
        what *then* dominates, exactly like iterated causal profiling.
        """
        baseline = self.baseline()
        report = BottleneckReport(baseline, self.metric)
        current_cost = baseline.measurement.metric(self.metric)
        if current_cost is None:
            raise ConfigurationError(
                f"baseline produced no {self.metric!r} metric to rank by"
            )
        chosen_rules: List[Rule] = []
        pool = list(experiments)
        while pool and len(report.ranked) < k:
            round_costs: Dict[str, float] = {}
            best_index: Optional[int] = None
            best_cost = current_cost
            best_run: Optional[WhatIfRun] = None
            for index, candidate in enumerate(pool):
                stacked = tuple(chosen_rules) + tuple(candidate.rules)
                run = self.run(stacked, candidate.name)
                cost = run.measurement.metric(self.metric)
                if cost is None:
                    continue
                round_costs[candidate.name] = cost
                if cost < best_cost - 1e-12:
                    best_index, best_cost, best_run = index, cost, run
            report.rounds.append(round_costs)
            if best_index is None:
                break
            winner = pool.pop(best_index)
            report.ranked.append(
                RankedBottleneck(
                    rank=len(report.ranked) + 1,
                    experiment=winner,
                    before=current_cost,
                    after=best_cost,
                    run=best_run,
                )
            )
            chosen_rules.extend(winner.rules)
            current_cost = best_cost
        return report
