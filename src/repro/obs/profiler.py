"""Per-task virtual-time profiler: which task consumed the sim.

Virtual time is free — what a long experiment actually spends is *wall
clock inside task resumes*.  The profiler accumulates, per task, the
wall-clock seconds spent stepping its generator, how many times it was
resumed, and when it last ran in virtual time, answering "which task is
the simulation's hot spot" without an external profiler's noise from the
kernel's own dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.reporting import format_table


class TaskProfile:
    """Accumulated cost of one task."""

    __slots__ = ("label", "resumes", "wall_seconds", "last_virtual")

    def __init__(self, label: str) -> None:
        self.label = label
        self.resumes = 0
        self.wall_seconds = 0.0
        self.last_virtual = 0.0


class TaskProfiler:
    """Wall-clock accounting per task, keyed by task id."""

    def __init__(self) -> None:
        self.profiles: Dict[int, TaskProfile] = {}

    def add(self, task_id: int, label: str, wall: float, virtual_now: float) -> None:
        profile = self.profiles.get(task_id)
        if profile is None:
            profile = self.profiles[task_id] = TaskProfile(label)
        profile.resumes += 1
        profile.wall_seconds += wall
        profile.last_virtual = virtual_now

    def top(self, limit: int = 10) -> List[TaskProfile]:
        """The *limit* most wall-clock-expensive tasks, costliest first."""
        ranked = sorted(
            self.profiles.values(), key=lambda p: p.wall_seconds, reverse=True
        )
        return ranked[:limit]

    def totals(self) -> Tuple[int, float]:
        """(total resumes, total wall seconds) across every task."""
        resumes = sum(p.resumes for p in self.profiles.values())
        wall = sum(p.wall_seconds for p in self.profiles.values())
        return resumes, wall

    def report(self, limit: int = 10) -> str:
        """Human-readable top-N table."""
        resumes, wall = self.totals()
        rows = []
        for profile in self.top(limit):
            share = 0.0 if wall == 0 else 100.0 * profile.wall_seconds / wall
            rows.append(
                [
                    profile.label,
                    profile.resumes,
                    f"{profile.wall_seconds * 1e3:.2f}",
                    f"{share:.1f}%",
                ]
            )
        table = format_table(["task", "resumes", "wall ms", "share"], rows)
        return (
            f"task profile: {len(self.profiles)} tasks, "
            f"{resumes} resumes, {wall * 1e3:.2f} ms in task steps\n{table}"
        )
