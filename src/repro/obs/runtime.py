"""The observability runtime: span recording wired into the kernel.

An :class:`ObsRuntime` is *attached* to a kernel (:func:`attach`); until
then ``kernel.obs`` is ``None`` and every kernel-side hook is one
attribute load and one branch — the same zero-cost contract as
``tracer.enabled``.  Attached, the runtime receives the kernel's
causal hook calls and turns them into the span tree:

* every task gets a ``task`` span; spawned tasks parent under the
  spawner's current context;
* every message gets a ``msg`` span riding the envelope (``env.ctx``);
  delivery closes it, and the receiving task *adopts* the message span as
  its context — the cross-process causal hop;
* every memory operation gets a ``memop`` span keyed by its completion
  token (or future): the response leg closes it, a crashed memory leaves
  it open — exactly the RDMA "context rides the op" analogue;
* protocols open ``phase`` spans through :meth:`phase` (via
  ``env.obs``), nesting subsequent work under them;
* proposals/decisions land as ``point`` events, remembering the trace a
  decision belongs to for the critical-path analyzer.

The runtime also owns the metrics registry (with a virtual-time sampling
ticker), the per-task wall-clock profiler, the flight recorder (tripped by
ledger violations), and the streaming sinks.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.flight import FlightRecorder
from repro.obs.profiler import TaskProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import K_MEMOP, K_MSG, K_PHASE, K_POINT, K_TASK, Span
from repro.types import memory_name

#: default bound on retained finished spans (ring: newest kept)
DEFAULT_MAX_SPANS = 200_000


class PhaseHandle:
    """Open-phase handle returned by :meth:`ObsRuntime.phase`.

    ``finish()`` closes the span and restores the task's previous context
    (unless a message adoption already moved it — the newer causal link
    wins).  Idempotent: double-finish is a no-op.
    """

    __slots__ = ("_runtime", "span", "_task", "_prev")

    def __init__(self, runtime: "ObsRuntime", span: Span, task, prev) -> None:
        self._runtime = runtime
        self.span = span
        self._task = task
        self._prev = prev

    def finish(self, **attrs: Any) -> None:
        span = self.span
        if span.end is not None:
            return
        if attrs:
            if span.attrs is None:
                span.attrs = {}
            span.attrs.update(attrs)
        if self._task.ctx is span:
            self._task.ctx = self._prev
        self._runtime._finish(span, self._runtime.kernel.now)


class ObsRuntime:
    """Span recorder + metrics registry + profiler + flight recorder."""

    def __init__(
        self,
        kernel,
        max_spans: int = DEFAULT_MAX_SPANS,
        profile: bool = True,
        flight_capacity: int = 512,
        flight_path: Optional[str] = None,
        series_bound: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self.finished: deque = deque(maxlen=max_spans)
        self.dropped = 0
        self.max_spans = max_spans
        self.registry = (
            MetricsRegistry() if series_bound is None else MetricsRegistry(series_bound)
        )
        self.profiler: Optional[TaskProfiler] = TaskProfiler() if profile else None
        #: SLO tracker installed by :meth:`track_slo`, or None
        self.slo: Optional[Any] = None
        self.flight = FlightRecorder(flight_capacity, flight_path)
        self.flight.wire(self.open_spans, self._flight_context)
        self.sinks: List[Any] = []
        self.current_task = None
        #: (pid, instance) -> (decided_at, trace_id) for the analyzer
        self.decide_points: Dict[Tuple[Any, Any], Tuple[float, Optional[int]]] = {}
        self._open: Dict[int, Span] = {}
        self._task_spans: Dict[int, Span] = {}
        self._op_spans: Dict[Any, Span] = {}
        self._next_span = 0
        self._next_trace = 0
        self._t0 = 0.0
        self._sample_interval: Optional[float] = None
        self._sample_until: Optional[float] = None

    # ------------------------------------------------------------------
    # span plumbing
    # ------------------------------------------------------------------
    def _start(
        self,
        name: str,
        kind: str,
        actor: str,
        parent: Optional[Span],
        attrs: Optional[Dict[str, Any]],
        now: float,
    ) -> Span:
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            trace_id = self._next_trace
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(self._next_span, parent_id, trace_id, name, kind, actor, now, attrs)
        self._open[span.span_id] = span
        return span

    def _finish(self, span: Span, now: float) -> None:
        span.end = now
        self._open.pop(span.span_id, None)
        finished = self.finished
        if len(finished) == self.max_spans:
            self.dropped += 1
        finished.append(span)
        self.flight.record(span)
        for sink in self.sinks:
            sink.emit(span)

    @property
    def spans(self) -> List[Span]:
        """Finished spans, oldest retained first."""
        return list(self.finished)

    def open_spans(self) -> List[Span]:
        """Spans started but never closed (in flight, hung, or live)."""
        return list(self._open.values())

    def add_sink(self, sink) -> None:
        # Sinks that can render registry instruments (Perfetto counter
        # tracks) but were built without a registry get this runtime's.
        if getattr(sink, "registry", False) is None:
            sink.registry = self.registry
        self.sinks.append(sink)

    def close(self) -> None:
        """Flush and close every sink (call once at end of run)."""
        for sink in self.sinks:
            sink.close()
        self.sinks = []

    # ------------------------------------------------------------------
    # kernel hooks (all behind ``kernel.obs is not None``)
    # ------------------------------------------------------------------
    def task_spawned(self, task) -> None:
        span = self._start(task.name, K_TASK, task.label, task.ctx, None, self.kernel.now)
        self._task_spans[task.task_id] = span
        task.ctx = span

    def task_killed(self, task, now: float) -> None:
        """Close a crashed process's task span (attr marks the kill)."""
        span = self._task_spans.pop(task.task_id, None)
        if span is not None and span.end is None:
            span.attrs = {**(span.attrs or {}), "killed": True}
            self._finish(span, now)

    def enter_task(self, task) -> None:
        self.current_task = task
        if self.profiler is not None:
            self._t0 = perf_counter()

    def exit_task(self, task, now: float) -> None:
        if self.profiler is not None:
            self.profiler.add(task.task_id, task.label, perf_counter() - self._t0, now)
        self.current_task = None
        if task.done:
            span = self._task_spans.pop(task.task_id, None)
            if span is not None:
                self._finish(span, now)

    def msg_sent(self, task, env, now: float) -> Span:
        """Open the transport span that rides the envelope (``env.ctx``)."""
        return self._start(
            "msg:" + env.topic,
            K_MSG,
            task.label,
            task.ctx,
            {"src": int(env.src), "dst": int(env.dst), "msg_id": env.msg_id},
            now,
        )

    def msg_delivered(self, env, now: float) -> None:
        span = env.ctx
        if span is not None and span.end is None:
            self._finish(span, now)

    def op_started(self, task, key, mid, op, now: float) -> None:
        """Open a memop span keyed by (task, token), (task, token, index)
        for fan-out legs, or by the OpFuture.  A fused chain gets ONE span
        (single-completion semantics) annotated with its sub-op count."""
        attrs = {"mem": memory_name(mid)}
        sub_ops = getattr(op, "ops", None)
        if sub_ops is not None:
            attrs["ops"] = len(sub_ops)
        if type(key) is tuple and len(key) == 3:
            # Fan-out leg: tag the shared flow id (task.token) so sinks can
            # link every issued leg to the single-completion verdict.
            attrs["flow"] = f"{key[0]}.{key[1]}"
        span = self._start(
            type(op).__name__,
            K_MEMOP,
            task.label,
            task.ctx,
            attrs,
            now,
        )
        self._op_spans[key] = span

    def fanout_verdict(self, task, state, now: float) -> None:
        """Record the single-completion verdict of an op fan-out.

        Fired by the kernel the moment a fan-out's quorum rule is
        satisfied (before the task wakes).  The point span carries the
        same ``flow`` id as the issued legs, closing the causal link
        issue -> verdict in trace viewers.
        """
        span = self._start(
            "fanout.verdict",
            K_POINT,
            task.label,
            task.ctx,
            {
                "flow": f"{task.task_id}.{state.token}",
                "acked": state.acked,
                "naked": state.naked,
                "done": state.done,
            },
            now,
        )
        self._finish(span, now)

    def op_resolved(self, key, now: float, status: str) -> None:
        span = self._op_spans.pop(key, None)
        if span is not None:
            span.attrs["status"] = status
            self._finish(span, now)

    # ------------------------------------------------------------------
    # protocol-facing API (via ``env.obs``)
    # ------------------------------------------------------------------
    def phase(self, name: str, **attrs: Any) -> Optional[PhaseHandle]:
        """Open a phase span under the current task's context."""
        task = self.current_task
        if task is None:
            return None
        span = self._start(
            name, K_PHASE, task.label, task.ctx, attrs or None, self.kernel.now
        )
        handle = PhaseHandle(self, span, task, task.ctx)
        task.ctx = span
        return handle

    def phase_under(self, name: str, parent, **attrs: Any) -> Optional[PhaseHandle]:
        """Open a phase span under an explicit *parent* context.

        This is how causality crosses a queue handoff that no message or
        memory op carries: the enqueuer's context is stashed with the
        item, and the dequeuing task (e.g. a shard leader draining its
        batch) opens its work span under it — so a client's ``put`` trace
        continues into the consensus instance that commits it.  Falls
        back to the current task's context when *parent* is ``None``.
        """
        task = self.current_task
        if task is None:
            return None
        if parent is None:
            parent = task.ctx
        span = self._start(
            name, K_PHASE, task.label, parent, attrs or None, self.kernel.now
        )
        handle = PhaseHandle(self, span, task, task.ctx)
        task.ctx = span
        return handle

    def point(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous event under the current context."""
        task = self.current_task
        parent = None if task is None else task.ctx
        actor = "kernel" if task is None else task.label
        span = self._start(name, K_POINT, actor, parent, attrs or None, self.kernel.now)
        self._finish(span, self.kernel.now)
        return span

    def enclosing_phases(self, task) -> List[str]:
        """Names of the open phase spans enclosing *task*'s context.

        Innermost first.  The walk follows ``parent_id`` links through the
        open-span table, so it stops at the first finished ancestor —
        what-if phase matching (``ScalePhase``) deliberately sees only
        phases that are still in progress at pricing time.
        """
        names: List[str] = []
        span = task.ctx
        depth = 0
        while span is not None and depth < 64:
            if span.kind == K_PHASE and span.end is None:
                names.append(span.name)
            parent = span.parent_id
            span = None if parent is None else self._open.get(parent)
            depth += 1
        return names

    def proposed(self, pid, now: float) -> None:
        self.point("propose", pid=int(pid))

    def decided(self, pid, value, instance, now: float) -> None:
        span = self.point("decide", pid=int(pid), value=value, instance=instance)
        self.decide_points[(pid, instance)] = (now, span.trace_id)

    # ------------------------------------------------------------------
    # metrics sampling (virtual-time ticker)
    # ------------------------------------------------------------------
    def start_sampling(self, interval: float, until: Optional[float] = None) -> None:
        """Sample standard gauges every *interval* virtual units.

        The ticker rechains through ``kernel.call_at``; pass *until* (or
        run the kernel with its own ``until``) so the chain terminates.
        """
        if interval <= 0:
            raise ValueError("sampling interval must be > 0")
        self._sample_interval = interval
        self._sample_until = until
        self._tick()

    @property
    def sampling(self) -> bool:
        """True once :meth:`start_sampling` armed the ticker."""
        return self._sample_interval is not None

    def _tick(self) -> None:
        kernel = self.kernel
        self.sample_now()
        if self.slo is not None:
            self.slo.evaluate(kernel.now)
        interval = self._sample_interval
        if interval is None:
            return
        next_at = kernel.now + interval
        if self._sample_until is not None and next_at > self._sample_until:
            return
        kernel.call_at(next_at, self._tick)

    def sample_now(self) -> None:
        """Take one sample of every standard gauge at the current instant."""
        kernel = self.kernel
        now = kernel.now
        gauge = self.registry.gauge
        gauge("kernel.queue_depth").sample(now, len(kernel.queue))
        network = kernel.network
        for pid in range(kernel.config.n_processes):
            gauge("net.inbox", pid=pid).sample(now, network.pending_count(pid))
        for memory in kernel.memories:
            gauge("mem.naks", mem=int(memory.mid)).sample(now, memory.counts.naks)
        ledger = kernel.metrics
        gauge("reads.fallbacks").sample(now, ledger.total_read_fallbacks())
        gauge("reconfig.steps").sample(now, len(ledger.reconfig_timeline))
        moved = 0
        for record in ledger.reconfig_timeline:
            if record.kind == "migrate":
                moved += record.detail.get("keys", 0)
        gauge("reconfig.keys_moved").sample(now, moved)

    # ------------------------------------------------------------------
    # SLO plane (see repro.obs.slo)
    # ------------------------------------------------------------------
    def track_slo(self, objectives, interval: Optional[float] = None, until: Optional[float] = None):
        """Install an SLO tracker evaluating *objectives* on the ticker.

        Objectives are :class:`repro.obs.slo.Objective` declarations;
        evaluation happens on every sampling tick (burn rates are
        windowed in *virtual* time, so the ticker must be running — pass
        *interval* to arm it here, or call :meth:`start_sampling`
        yourself).  Returns the tracker (also at :attr:`slo`).
        """
        from repro.obs.slo import SloTracker

        if self.slo is None:
            self.slo = SloTracker(self, objectives)
        else:
            self.slo.add(objectives)
        if interval is not None and not self.sampling:
            self.start_sampling(interval, until=until)
        return self.slo

    # ------------------------------------------------------------------
    # violation tripwire (registered with the metrics ledger on attach)
    # ------------------------------------------------------------------
    def _on_violation(self, description: str) -> None:
        self.flight.trip(description, self.kernel.now)

    def _flight_context(self) -> Dict[str, Any]:
        """Registry + SLO state included in flight-recorder dumps, so a
        violation dump is self-contained (no live runtime needed)."""
        context: Dict[str, Any] = {"metrics": self.registry.snapshot()}
        if self.slo is not None:
            context["slo"] = self.slo.snapshot()
        return context


def attach(
    kernel,
    *,
    max_spans: int = DEFAULT_MAX_SPANS,
    profile: bool = True,
    flight_capacity: int = 512,
    flight_path: Optional[str] = None,
    series_bound: Optional[int] = None,
) -> ObsRuntime:
    """Attach an observability runtime to *kernel* and return it.

    Until this is called, ``kernel.obs`` is ``None`` and observability
    costs one pointer check per kernel hook.
    """
    if kernel.obs is not None:
        return kernel.obs
    runtime = ObsRuntime(
        kernel,
        max_spans=max_spans,
        profile=profile,
        flight_capacity=flight_capacity,
        flight_path=flight_path,
        series_bound=series_bound,
    )
    kernel.obs = runtime
    kernel.metrics.violation_hooks.append(runtime._on_violation)
    return runtime


def detach(kernel) -> None:
    """Detach the runtime (closing its sinks); hooks go quiescent again."""
    runtime = kernel.obs
    if runtime is None:
        return
    runtime.close()
    try:
        kernel.metrics.violation_hooks.remove(runtime._on_violation)
    except ValueError:
        pass
    kernel.obs = None
