"""Trusted message passing: T-send / T-receive (paper Section 4.1, Alg. 3).

Clement et al. [20] show that unforgeable signatures plus non-equivocation
let ``n >= 2f+1`` processes translate any crash-tolerant message-passing
algorithm into a Byzantine-tolerant one: every message carries its sender's
full signed history, receivers validate the history against the protocol's
rules, and misbehaving senders are simply ignored — reducing Byzantine
behaviour to crash behaviour.
"""

from repro.trusted.history import History, RecvEvent, SentEvent
from repro.trusted.transport import TMessage, TrustedTransport
from repro.trusted.validators import (
    ConformanceValidator,
    PaxosConformance,
    PermissiveConformance,
)

__all__ = [
    "ConformanceValidator",
    "History",
    "PaxosConformance",
    "PermissiveConformance",
    "RecvEvent",
    "SentEvent",
    "TMessage",
    "TrustedTransport",
]
