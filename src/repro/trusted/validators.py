"""Protocol-conformance validators for trusted messages.

The Clement et al. construction requires receivers to check "whether a
received message is consistent with the protocol" given the sender's
attached history.  :class:`PaxosConformance` implements that check for
single-decree Paxos: a Byzantine process can then only send messages a
correct-but-crashy process could have sent, which is precisely the failure
translation the Robust Backup algorithm needs.

Citations in histories (RecvEvents) have already been cross-checked against
the validator's own delivery record by the transport, so the validator may
treat them as genuine receptions.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.messages import (
    Accept,
    Accepted,
    Decision,
    Nack,
    Prepare,
    Promise,
    SetupValue,
)
from repro.trusted.history import History, RecvEvent, SentEvent
from repro.types import ProcessId


class ConformanceValidator:
    """Interface: decide whether *message* is protocol-conformant."""

    def validate(
        self,
        env,
        sender: ProcessId,
        k: int,
        message: Any,
        history: History,
    ) -> bool:
        raise NotImplementedError


class PermissiveConformance(ConformanceValidator):
    """Accept everything (crash-only settings and unit tests)."""

    def validate(self, env, sender, k, message, history) -> bool:
        return True


class PaxosConformance(ConformanceValidator):
    """Single-decree Paxos conformance rules.

    ``quorum`` is the promise/accepted quorum size the proposers use
    (a majority of n unless configured otherwise).
    """

    def __init__(self, quorum: int) -> None:
        self.quorum = quorum

    # ------------------------------------------------------------------
    def validate(self, env, sender, k, message, history) -> bool:
        if isinstance(message, Prepare):
            return self._check_prepare(sender, message, history)
        if isinstance(message, Promise):
            return self._check_promise(sender, message, history)
        if isinstance(message, Accept):
            return self._check_accept(sender, message, history)
        if isinstance(message, Accepted):
            return self._check_accepted(message, history)
        if isinstance(message, Nack):
            return self._check_nack(sender, message, history)
        if isinstance(message, Decision):
            return self._check_decision(message, history)
        if isinstance(message, SetupValue):
            return True  # inputs are unconstrained (weak validity)
        return False

    # ------------------------------------------------------------------
    # per-message rules
    # ------------------------------------------------------------------
    def _check_prepare(self, sender: ProcessId, msg: Prepare, history: History) -> bool:
        if msg.ballot.pid != int(sender):
            return False
        # Ballot monotonicity: strictly above every ballot previously used.
        for event in history:
            if isinstance(event, SentEvent) and isinstance(event.message, Prepare):
                if event.message.ballot >= msg.ballot:
                    return False
        return True

    def _check_promise(self, sender: ProcessId, msg: Promise, history: History) -> bool:
        # Must have received the Prepare being answered.
        if not any(
            isinstance(e, RecvEvent)
            and isinstance(e.message, Prepare)
            and e.message.ballot == msg.ballot
            for e in history
        ):
            return False
        # Must not have promised or accepted a higher ballot already.
        for event in history:
            if not isinstance(event, SentEvent):
                continue
            sent = event.message
            if isinstance(sent, Promise) and sent.ballot > msg.ballot:
                return False
            if isinstance(sent, Accepted) and sent.ballot > msg.ballot:
                return False
        # The reported accepted pair must match the sender's last Accepted.
        last: Optional[Accepted] = None
        for event in history:
            if isinstance(event, SentEvent) and isinstance(event.message, Accepted):
                last = event.message
        if last is None:
            return msg.accepted_ballot is None
        return (
            msg.accepted_ballot == last.ballot and msg.accepted_value == last.value
        )

    def _check_accept(self, sender: ProcessId, msg: Accept, history: History) -> bool:
        if msg.ballot.pid != int(sender):
            return False
        promises = self._promises_for(msg.ballot, history)
        if len(promises) < self.quorum:
            return False
        best: Optional[Tuple[Ballot, Any]] = None
        for promise in promises.values():
            if promise.accepted_ballot is None:
                continue
            if best is None or promise.accepted_ballot > best[0]:
                best = (promise.accepted_ballot, promise.accepted_value)
        if best is None:
            return True  # free choice: the proposer's own input
        return msg.value == best[1]

    @staticmethod
    def _promises_for(ballot: Ballot, history: History) -> dict:
        promises = {}
        for event in history:
            if (
                isinstance(event, RecvEvent)
                and isinstance(event.message, Promise)
                and event.message.ballot == ballot
            ):
                promises[event.sender] = event.message
        return promises

    @staticmethod
    def _check_accepted(msg: Accepted, history: History) -> bool:
        return any(
            isinstance(e, RecvEvent)
            and isinstance(e.message, Accept)
            and e.message.ballot == msg.ballot
            and e.message.value == msg.value
            for e in history
        )

    @staticmethod
    def _check_nack(sender: ProcessId, msg: Nack, history: History) -> bool:
        # The claimed higher promise must be one the sender could justify:
        # either it sent a Promise for it or received a Prepare/Accept at it.
        for event in history:
            if isinstance(event, SentEvent) and isinstance(event.message, Promise):
                if event.message.ballot == msg.promised:
                    return True
            if isinstance(event, RecvEvent):
                inner = event.message
                if isinstance(inner, (Prepare, Accept)) and inner.ballot == msg.promised:
                    return True
        return False

    def _check_decision(self, msg: Decision, history: History) -> bool:
        votes: dict = {}
        for event in history:
            if isinstance(event, RecvEvent) and isinstance(event.message, Accepted):
                accepted = event.message
                if accepted.value == msg.value:
                    votes.setdefault(accepted.ballot, set()).add(event.sender)
        return any(len(voters) >= self.quorum for voters in votes.values())
