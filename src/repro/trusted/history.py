"""Execution histories attached to trusted messages.

A history is a tuple of events, one per message the process T-sent or
T-received.  Histories are tamper-evident without embedding signatures:

* the history travels inside a non-equivocating broadcast whose unit
  signature covers the digest of the whole payload — a sender cannot show
  different histories to different receivers;
* every ``RecvEvent(q, k, m)`` a history cites is checked by each validator
  against the validator's *own* delivery record for ``(q, k)``: since
  non-equivocating broadcast guarantees all correct processes deliver
  identical per-sender streams, a citation of a message q never broadcast
  can never validate anywhere, even if q colludes by privately signing it.
  Citations of messages the validator has not yet delivered are deferred,
  not rejected — asynchrony must not convict honest senders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.types import ProcessId

#: destination marker for broadcast T-sends
TO_ALL = "*"


@dataclass(frozen=True)
class SentEvent:
    """The process T-sent its *k*-th message *message* to *dst*."""

    k: int
    dst: Any  # ProcessId or TO_ALL
    message: Any


@dataclass(frozen=True)
class RecvEvent:
    """The process T-received *message* as *sender*'s *k*-th T-send."""

    sender: ProcessId
    k: int
    dst: Any
    message: Any


History = Tuple[Any, ...]


def sent_count(history: History) -> int:
    """Number of SentEvents in *history* (the next T-send gets k+1)."""
    return sum(1 for event in history if isinstance(event, SentEvent))


def received_from(history: History, sender: ProcessId) -> Tuple[RecvEvent, ...]:
    """All RecvEvents in *history* attributed to *sender*, in order."""
    return tuple(
        event
        for event in history
        if isinstance(event, RecvEvent) and event.sender == sender
    )


def received_events(history: History) -> Tuple[RecvEvent, ...]:
    return tuple(event for event in history if isinstance(event, RecvEvent))


def sent_events(history: History) -> Tuple[SentEvent, ...]:
    return tuple(event for event in history if isinstance(event, SentEvent))


def last_sent_matching(history: History, predicate) -> Optional[SentEvent]:
    """The most recent SentEvent whose message satisfies *predicate*."""
    for event in reversed(history):
        if isinstance(event, SentEvent) and predicate(event.message):
            return event
    return None
