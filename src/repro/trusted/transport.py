"""The trusted transport: T-send / T-receive over non-equivocating broadcast.

Algorithm 3 of the paper.  ``t_send(dst, m)`` broadcasts ``(m, H, dst)``
with the sender's full history H via non-equivocating broadcast.  On
delivery, every process — addressee or not — validates the message:

1. *structural*: the sequence number continues the sender's send count, and
   sent events are contiguous;
2. *citation*: every reception the history claims is checked against this
   process's own record of what that sender actually broadcast (deferring
   while the cited broadcast has not arrived here yet);
3. *conformance*: the protocol validator confirms the message is one a
   correct process could send given that history.

A sender failing 1–3 is dropped forever: it has been converted into a
crashed process, which is the point of the Clement et al. construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from repro.broadcast.nonequivocating import Delivery, NonEquivocatingBroadcast
from repro.sim.environment import ProcessEnv
from repro.trusted.history import (
    History,
    RecvEvent,
    SentEvent,
    TO_ALL,
    sent_count,
)
from repro.trusted.validators import ConformanceValidator, PermissiveConformance
from repro.types import ProcessId


@dataclass(frozen=True)
class TMessage:
    """The broadcast payload of one T-send: message, history, destination."""

    message: Any
    history: History
    dst: Any  # ProcessId or TO_ALL


@dataclass(frozen=True)
class TDelivered:
    """One message handed to the local protocol by T-receive."""

    sender: ProcessId
    message: Any


class TrustedTransport:
    """Per-process endpoint for trusted sends and receives.

    Typical wiring::

        transport = TrustedTransport(env, validator=PaxosConformance(quorum))
        yield env.spawn("neb", transport.neb.delivery_daemon())
        yield from transport.t_broadcast(msg)
        delivered = yield from transport.t_recv(timeout=...)
    """

    def __init__(
        self,
        env: ProcessEnv,
        validator: Optional[ConformanceValidator] = None,
        namespace: str = "neb",
    ) -> None:
        self.env = env
        self.validator = validator or PermissiveConformance()
        self.history: List[Any] = []
        self.neb = NonEquivocatingBroadcast(
            env, on_deliver=self._on_deliver, namespace=namespace
        )
        self.inbox: Deque[TDelivered] = deque()
        self.inbox_gate = env.new_gate(f"t-inbox-p{int(env.pid)+1}")
        #: validated broadcasts seen so far: (sender, k) -> (message, dst)
        self.seen: Dict[Tuple[ProcessId, int], Tuple[Any, Any]] = {}
        #: senders dropped after failing validation (treated as crashed)
        self.dropped: set = set()
        #: deliveries whose citations are not yet checkable
        self.pending: List[Delivery] = []
        self.delivered_log: List[TDelivered] = []

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def t_send(self, dst: ProcessId, message: Any) -> Generator:
        """T-send *message* to *dst* (broadcast, consumed by the addressee)."""
        yield from self._send(ProcessId(dst), message)

    def t_broadcast(self, message: Any) -> Generator:
        """T-send *message* to every process."""
        yield from self._send(TO_ALL, message)

    def _send(self, dst: Any, message: Any) -> Generator:
        history = tuple(self.history)
        k = sent_count(history) + 1
        payload = TMessage(message=message, history=history, dst=dst)
        self.history.append(SentEvent(k=k, dst=dst, message=message))
        yield from self.neb.broadcast(payload)

    # ------------------------------------------------------------------
    # delivery pipeline (runs inside the broadcast daemon; zero delays)
    # ------------------------------------------------------------------
    def _on_deliver(self, delivery: Delivery) -> None:
        self.pending.append(delivery)
        self._drain_pending()

    def _drain_pending(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for delivery in list(self.pending):
                verdict = self._try_validate(delivery)
                if verdict == "defer":
                    continue
                self.pending.remove(delivery)
                progressed = True
                if verdict == "ok":
                    self._accept(delivery)
                else:
                    self._drop(delivery.sender)

    def _try_validate(self, delivery: Delivery) -> str:
        """Returns "ok", "bad", or "defer"."""
        sender = delivery.sender
        if sender in self.dropped:
            return "bad"
        payload = delivery.payload
        if not isinstance(payload, TMessage):
            return "bad"
        if sender == self.env.pid:
            return "ok"  # own sends need no self-validation
        if not self._structurally_sound(delivery.k, payload.history):
            return "bad"
        citation_verdict = self._citations_ok(sender, payload.history)
        if citation_verdict != "ok":
            return citation_verdict
        if not self.validator.validate(
            self.env, sender, delivery.k, payload.message, payload.history
        ):
            return "bad"
        return "ok"

    @staticmethod
    def _structurally_sound(k: int, history: History) -> bool:
        if sent_count(history) != k - 1:
            return False
        next_k = 1
        for event in history:
            if isinstance(event, SentEvent):
                if event.k != next_k:
                    return False
                next_k += 1
            elif not isinstance(event, RecvEvent):
                return False
        return True

    def _citations_ok(self, citer: ProcessId, history: History) -> str:
        """Check every claimed reception against our own delivery record."""
        for event in history:
            if not isinstance(event, RecvEvent):
                continue
            known = self.seen.get((event.sender, event.k))
            if known is None:
                if event.sender in self.dropped:
                    return "bad"  # cites a convicted sender's message
                return "defer"  # may genuinely not have reached us yet
            message, dst = known
            if message != event.message or dst != event.dst:
                return "bad"  # cites something the sender never broadcast
            if dst not in (TO_ALL, citer) and event.sender != citer:
                return "bad"  # cites a message addressed to somebody else
        return "ok"

    def _accept(self, delivery: Delivery) -> None:
        env = self.env
        payload: TMessage = delivery.payload
        self.seen[(delivery.sender, delivery.k)] = (payload.message, payload.dst)
        if payload.dst not in (TO_ALL, env.pid):
            return  # tracked for citations, but not addressed to us
        self.history.append(
            RecvEvent(
                sender=delivery.sender,
                k=delivery.k,
                dst=payload.dst,
                message=payload.message,
            )
        )
        delivered = TDelivered(sender=delivery.sender, message=payload.message)
        self.inbox.append(delivered)
        self.delivered_log.append(delivered)
        env.signal(self.inbox_gate)
        self.inbox_gate.clear()

    def _drop(self, sender: ProcessId) -> None:
        if sender == self.env.pid:
            return
        self.dropped.add(sender)
        self.neb.convicted.add(sender)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def t_recv(self, timeout: Optional[float] = None) -> Generator:
        """Dequeue the next trusted delivery; None if *timeout* elapses."""
        deadline = None if timeout is None else self.env.now + timeout
        while not self.inbox:
            remaining = None if deadline is None else deadline - self.env.now
            if remaining is not None and remaining <= 0:
                return None
            arrived = yield self.env.gate_wait(self.inbox_gate, timeout=remaining)
            if not arrived and not self.inbox:
                return None
        return self.inbox.popleft()
