"""Simulated unforgeable signatures and Cheap Quorum unanimity proofs.

The paper assumes primitives ``sign(v)`` and ``sValid(p, v)``.  We realise
them with keyed HMACs where every process holds only its own key: a
Byzantine strategy running inside the simulator is handed its own signing
key and the public verifier, never anybody else's key, so forgery is
computationally excluded exactly as the paper assumes.
"""

from repro.crypto.proofs import UnanimityProof, assemble_proof, verify_proof
from repro.crypto.signatures import (
    Signature,
    SignatureAuthority,
    Signed,
    SigningKey,
    canonical_bytes,
)

__all__ = [
    "Signature",
    "SignatureAuthority",
    "Signed",
    "SigningKey",
    "UnanimityProof",
    "assemble_proof",
    "canonical_bytes",
    "verify_proof",
]
