"""Unforgeable signatures via per-process HMAC keys.

Design: a :class:`SignatureAuthority` (one per simulation) derives a secret
key per process id.  ``sign`` requires the :class:`SigningKey` capability —
the kernel hands each process only its own — while ``verify`` is public.
Payloads are serialised with a small canonical encoder so that equal values
sign identically regardless of dict ordering or dataclass identity.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Optional

from repro.errors import SignatureError
from repro.types import ProcessId, is_bottom


def canonical_bytes(obj: Any) -> bytes:
    """Deterministically encode *obj* for signing.

    Supports the value types protocols put in messages and registers:
    primitives, tuples/lists, sets/frozensets, dicts, dataclasses (including
    :class:`Signed`/:class:`Signature`), and the register bottom ``⊥``.
    """
    out: list = []
    _encode(obj, out)
    return b"".join(out)


def _encode(obj: Any, out: list) -> None:
    if obj is None:
        out.append(b"N;")
    elif is_bottom(obj):
        out.append(b"_;")
    elif isinstance(obj, bool):
        out.append(b"b1;" if obj else b"b0;")
    elif isinstance(obj, int):
        out.append(b"i" + str(obj).encode() + b";")
    elif isinstance(obj, float):
        out.append(b"f" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode()
        out.append(b"s" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(obj, bytes):
        out.append(b"y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, (tuple, list)):
        out.append(b"(")
        for item in obj:
            _encode(item, out)
        out.append(b")")
    elif isinstance(obj, (set, frozenset)):
        out.append(b"{")
        for item in sorted(obj, key=lambda x: canonical_bytes(x)):
            _encode(item, out)
        out.append(b"}")
    elif isinstance(obj, dict):
        out.append(b"[")
        items = sorted(obj.items(), key=lambda kv: canonical_bytes(kv[0]))
        for key, value in items:
            _encode(key, out)
            _encode(value, out)
        out.append(b"]")
    elif is_dataclass(obj) and not isinstance(obj, type):
        out.append(b"d" + type(obj).__name__.encode() + b"<")
        for f in fields(obj):
            if not f.compare:
                continue
            _encode(f.name, out)
            _encode(getattr(obj, f.name), out)
        out.append(b">")
    elif getattr(type(obj), "_signable_fields_", None) is not None:
        # Hand-written __slots__ value objects (Batch, KVCommand, ...)
        # declare their comparable fields explicitly; encoded in the same
        # shape as a dataclass of the same name and fields.
        out.append(b"d" + type(obj).__name__.encode() + b"<")
        for name in type(obj)._signable_fields_:
            _encode(name, out)
            _encode(getattr(obj, name), out)
        out.append(b">")
    elif isinstance(obj, enum_types()):
        out.append(b"e" + type(obj).__name__.encode() + b"." + str(obj.name).encode() + b";")
    else:
        raise TypeError(f"cannot canonically encode {type(obj).__name__}: {obj!r}")


def enum_types():
    import enum

    return (enum.Enum,)


@dataclass(frozen=True)
class Signature:
    """An HMAC tag binding a payload digest to a signer identity."""

    signer: ProcessId
    tag: bytes


@dataclass(frozen=True)
class Signed:
    """A payload together with its signature.

    ``payload`` is the signed value; ``signature.signer`` claims authorship,
    and :meth:`SignatureAuthority.verify` checks the claim.
    """

    payload: Any
    signature: Signature

    @property
    def signer(self) -> ProcessId:
        return self.signature.signer


class SigningKey:
    """Capability to sign as one process.

    Only the :class:`SignatureAuthority` can mint these; the kernel passes
    each process exactly its own key.  The secret is deliberately kept on a
    private attribute: Byzantine strategies receive the key *object* for
    their own identity only.
    """

    __slots__ = ("pid", "_secret", "_authority")

    def __init__(self, pid: ProcessId, secret: bytes, authority: "SignatureAuthority"):
        self.pid = pid
        self._secret = secret
        self._authority = authority

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SigningKey p{int(self.pid) + 1}>"


class SignatureAuthority:
    """Mints per-process keys, signs, and verifies.

    A single instance is shared by one simulation.  Verification is public
    knowledge (any process can call it); signing requires a key capability.
    """

    def __init__(self, seed: int = 0) -> None:
        self._root = hashlib.sha256(f"repro-authority:{seed}".encode()).digest()
        self._keys: dict = {}
        self.sign_count = 0

    def key_for(self, pid: ProcessId) -> SigningKey:
        """The signing key for *pid* (idempotent)."""
        if pid not in self._keys:
            secret = hmac.new(self._root, f"key:{int(pid)}".encode(), "sha256").digest()
            self._keys[pid] = SigningKey(pid, secret, self)
        return self._keys[pid]

    def sign(self, key: SigningKey, payload: Any) -> Signed:
        """Sign *payload* with *key*, returning a :class:`Signed` wrapper."""
        if key._authority is not self:
            raise SignatureError("signing key belongs to a different authority")
        tag = hmac.new(key._secret, canonical_bytes(payload), "sha256").digest()
        self.sign_count += 1
        return Signed(payload, Signature(key.pid, tag))

    def verify(self, signer: ProcessId, signed: Optional[Signed]) -> bool:
        """The paper's ``sValid(p, v)``: is *signed* a valid signature by *signer*?"""
        if not isinstance(signed, Signed):
            return False
        if signed.signature.signer != signer:
            return False
        key = self.key_for(signer)
        try:
            expected = hmac.new(
                key._secret, canonical_bytes(signed.payload), "sha256"
            ).digest()
        except TypeError:
            return False
        return hmac.compare_digest(expected, signed.signature.tag)

    def valid(self, signed: Optional[Signed]) -> bool:
        """Verify against the signer the signature itself claims."""
        return isinstance(signed, Signed) and self.verify(signed.signature.signer, signed)
