"""Unanimity proofs for Cheap Quorum (paper Section 4.2).

A follower that sees all ``n`` processes advertise the same signed value
assembles those ``n`` signed copies into a *unanimity proof*, signs the
bundle, and publishes it.  A correct unanimity proof later gives the value
top priority in Preferential Paxos (Definition 3): no two different values
can both carry correct proofs, because a proof needs a signature from every
process and correct processes sign at most one value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.signatures import SignatureAuthority, Signed, SigningKey
from repro.types import ProcessId


@dataclass(frozen=True)
class UnanimityProof:
    """``n`` signed copies of one value, bundled and signed by an assembler."""

    value: Any
    copies: Tuple[Signed, ...]
    assembler: ProcessId


def assemble_proof(
    authority: SignatureAuthority,
    key: SigningKey,
    value: Any,
    copies: Tuple[Signed, ...],
) -> Signed:
    """Bundle *copies* into a signed :class:`UnanimityProof`.

    The caller is responsible for having checked the copies; assembly does
    not re-verify (a Byzantine assembler may bundle garbage — verification
    happens at the reader, via :func:`verify_proof`).
    """
    proof = UnanimityProof(value=value, copies=tuple(copies), assembler=key.pid)
    return authority.sign(key, proof)


def verify_proof(
    authority: SignatureAuthority,
    signed_proof: Optional[Signed],
    n_processes: int,
) -> Optional[UnanimityProof]:
    """The paper's ``verifyProof``: check a signed unanimity proof.

    Returns the embedded proof when it is correct — the outer signature is
    valid, and the bundle holds ``n`` copies of the *same* value signed by
    ``n`` distinct processes — and None otherwise.
    """
    if not isinstance(signed_proof, Signed):
        return None
    if not authority.valid(signed_proof):
        return None
    proof = signed_proof.payload
    if not isinstance(proof, UnanimityProof):
        return None
    if len(proof.copies) < n_processes:
        return None
    signers = set()
    for copy in proof.copies:
        if not isinstance(copy, Signed):
            return None
        if not authority.valid(copy):
            return None
        if copy.payload != proof.value:
            return None
        signers.add(copy.signature.signer)
    if len(signers) < n_processes:
        return None
    return proof
