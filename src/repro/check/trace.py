"""Counterexample traces: serialize, load, deterministically replay.

A counterexample is fully described by (scenario name, scenario params,
optional seeded bug, divergent choices).  Everything else — the thousands
of default choices between divergences — is implied by the kernel's
determinism, which is what keeps traces small enough to read: a trace
usually lists one or two lines of "at step N, fire this entry instead".

:func:`replay_trace` rebuilds the scenario from the registry, replays the
plan through a :class:`~repro.check.scheduler.ControlledScheduler`, and
cross-checks each divergent step's choice identity (queue seq / injection
name) against what the trace recorded — a replay that silently explored a
*different* schedule (code drift, wrong seed) is reported as divergent
rather than trusted.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.check.explore import Counterexample
from repro.check.scheduler import ControlledScheduler
from repro.errors import DeadlockError, LivelockError, SafetyViolation

TRACE_FORMAT = "repro-check-trace-v1"


def counterexample_to_dict(cx: Counterexample) -> Dict[str, Any]:
    """JSON-ready form of a counterexample."""
    return {
        "format": TRACE_FORMAT,
        "scenario": cx.scenario,
        "params": _jsonable(cx.params),
        "divergences": _jsonable(cx.divergences),
        "errors": list(cx.errors),
        "injections": list(cx.injections),
        "steps": cx.steps,
        "final_time": cx.final_time,
        "flight_dump": _jsonable(cx.flight_dump),
    }


def save_trace(cx: Counterexample, path: str) -> str:
    """Write *cx* as JSON; returns *path* for convenience."""
    with open(path, "w") as fh:
        json.dump(counterexample_to_dict(cx), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_trace(source: Union[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Accept a path or an already-parsed dict; validate the format tag."""
    if isinstance(source, str):
        with open(source) as fh:
            data = json.load(fh)
    else:
        data = dict(source)
    if data.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"not a {TRACE_FORMAT} trace: format={data.get('format')!r}"
        )
    return data


class ReplayResult:
    """Outcome of re-executing a trace's schedule."""

    __slots__ = ("errors", "matched", "mismatches", "injections", "final_time")

    def __init__(self, errors, matched, mismatches, injections, final_time) -> None:
        self.errors = errors
        self.matched = matched          # every divergence re-identified
        self.mismatches = mismatches    # human-readable identity drift
        self.injections = injections
        self.final_time = final_time

    @property
    def reproduced(self) -> bool:
        """The replay hit the same schedule *and* the oracles failed again."""
        return self.matched and bool(self.errors)


def replay_trace(source: Union[str, Dict[str, Any]]) -> ReplayResult:
    """Deterministically re-execute a counterexample trace.

    Rebuilds the scenario from the registry (applying a seeded regression
    bug if the scenario's params carry one), replays the recorded plan,
    and re-runs the oracles.  Traces of regression scenarios therefore
    reproduce only while the matching bug is seeded — replaying them on
    the fixed kernel is exactly how the corpus proves the fix.
    """
    from repro.check.scenarios import make_scenario

    data = load_trace(source)
    scenario = make_scenario(data["scenario"], data.get("params"))
    plan: Dict[int, Tuple[str, Any]] = {}
    for div in data["divergences"]:
        verb, operand = div["choice"]
        plan[int(div["step"])] = (verb, operand)
    run = scenario.build()
    sched = ControlledScheduler(
        plan=plan,
        specs=getattr(scenario, "injections", ()),
        group_budgets=getattr(scenario, "group_budgets", None),
        max_steps=max(4 * int(data.get("steps") or 0), 20_000),
    )
    run.kernel.scheduler = sched
    failure: Optional[str] = None
    try:
        run.execute()
    except (SafetyViolation, LivelockError, DeadlockError) as exc:
        failure = f"{type(exc).__name__}: {exc}"
    finally:
        run.cleanup()
    errors = list(run.check(tuple(sched.injections_used)))
    if failure is not None:
        errors.insert(0, failure)
    mismatches: List[str] = []
    for div in data["divergences"]:
        step = int(div["step"])
        recorded_key = div.get("key")
        if recorded_key is None:
            continue
        if step >= len(sched.log):
            mismatches.append(f"step {step}: replay ended before the divergence")
            continue
        observed = list(sched.log[step].chosen_choice.key)
        if observed != list(recorded_key):
            mismatches.append(
                f"step {step}: trace recorded choice {recorded_key} but the "
                f"replay fired {observed} — scenario or code drift"
            )
    return ReplayResult(
        errors=errors,
        matched=not mismatches,
        mismatches=mismatches,
        injections=list(sched.injections_used),
        final_time=run.kernel.now,
    )


def _jsonable(value: Any) -> Any:
    """Best-effort deep conversion to JSON-serializable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
