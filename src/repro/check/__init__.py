"""Model checking on the deterministic kernel.

The simulation kernel is deterministic: for a fixed seed there is exactly
one schedule, chosen by heap insertion order.  That determinism is what
makes runs replayable — and it is also why schedule bugs (PR 5's unpark
token collision, PR 2's same-instant wake ordering) survive until a random
seed happens to produce the one interleaving that trips them.

This package turns the kernel's single schedule into a *searchable space*:

* :mod:`repro.sim.schedule` makes scheduling pluggable — at every step the
  scheduler sees the **frontier** (all entries that may legally fire at the
  current instant) and picks one;
* :class:`~repro.check.scheduler.ControlledScheduler` follows an explicit
  *plan* (step → choice) and records every choice point it saw;
* :class:`~repro.check.explore.Explorer` runs a scenario to completion many
  times under bounded DFS, diverging from the default schedule one choice
  at a time, pruning commuting alternatives with DPOR-style sleep sets
  (:mod:`repro.check.deps`), and optionally *injecting* crashes, recoveries
  and permission revocations at explorer-chosen steps
  (:mod:`repro.check.inject`);
* every run ends with scenario-specific invariant oracles (agreement,
  validity, staleness, replica consistency, permission fencing); a failing
  run is captured as a counterexample — an exact choice trace serialized to
  JSON that :func:`~repro.check.trace.replay_trace` re-executes
  deterministically.

Entry points: ``python -m repro.check`` (see :mod:`repro.check.cli`),
:func:`~repro.check.explore.explore`, and the scenario registry in
:mod:`repro.check.scenarios`.
"""

from repro.check.explore import Budget, Counterexample, Explorer, ExploreReport, explore
from repro.check.inject import InjectionSpec
from repro.check.scheduler import ControlledScheduler, TraceDivergence
from repro.check.scenarios import SCENARIOS, make_scenario
from repro.check.trace import load_trace, replay_trace, save_trace

__all__ = [
    "Budget",
    "ControlledScheduler",
    "Counterexample",
    "Explorer",
    "ExploreReport",
    "InjectionSpec",
    "SCENARIOS",
    "TraceDivergence",
    "explore",
    "load_trace",
    "make_scenario",
    "replay_trace",
    "save_trace",
]
