"""The dependency relation over frontier entries (DPOR's independence).

Two frontier entries *commute* — executing them in either order reaches
the same state — unless they touch the same piece of state.  The explorer
uses this to prune: if the default run fired entry ``c`` before entry
``d`` and the two commute, the schedule that fires ``d`` first reaches a
state the ``c``-first subtree already covers, so the divergence is skipped
(sleep sets, see :mod:`repro.check.explore`).

The relation is declared per entry kind from what each kernel handler may
touch:

===============  =====================================================
entry kind       footprint
===============  =====================================================
resume / wake /  the target task's **process** — a resumed task may
recv_timeout /   consume from its process inbox, signal gates, send,
resolve /        or issue ops, so two same-process resumptions never
op_resolve /     commute (conservative; per-task would over-prune)
fan_resolve
deliver          the destination **process** (inbox append / waiter
                 wake)
arrive /         the target **(memory, region)** — application order
op_arrive /      at one region is visible to reads; distinct memories
fan_arrive       or regions commute.  A fused chain contributes one key
                 per region it touches (the chain's conservative union)
call / fault /   **global** — failure events and ad-hoc callables may
injections       touch anything
===============  =====================================================

Declared independence is an approximation, as in any uninstrumented DPOR:

* the kernel's RNG is a single stream, so two entries that both draw from
  it (random latency models, protocol backoff) technically never commute;
  we ignore this, matching the standard practice of declaring independence
  modulo identifier/clock renaming;
* task-id and queue-seq assignment differ between the two orders; entry
  *identity* (seq) is prefix-stable which is all the explorer needs, but
  downstream default schedules can differ cosmetically.

Both approximations only affect how much is pruned as *equivalent*, never
whether a reachable oracle violation is reported in some explored run of
the bounded search.
"""

from __future__ import annotations

from typing import Tuple

from repro.sim.event_queue import (
    EV_ARRIVE,
    EV_DELIVER,
    EV_FAN_ARRIVE,
    EV_FAN_RESOLVE,
    EV_OP_ARRIVE,
    EV_OP_RESOLVE,
    EV_RECV_TIMEOUT,
    EV_RESOLVE,
    EV_RESUME,
    EV_WAKE,
)

#: Footprint of an entry that may touch anything (call, fault, injection).
GLOBAL: Tuple = (("*",),)

_TASK_KINDS = frozenset(
    (EV_RESUME, EV_WAKE, EV_RECV_TIMEOUT, EV_RESOLVE, EV_OP_RESOLVE,
     EV_FAN_RESOLVE)
)


def _mem_keys(mid, op) -> Tuple:
    """Memory-arrival footprint: one ``("mem", mid, region)`` key per
    region the op may touch.  A fused chain (BatchOp) carries its
    precomputed distinct-region tuple — the conservative union of the
    whole chain's footprint, since the chain applies atomically."""
    regions = getattr(op, "regions", None)
    if regions is not None:
        m = int(mid)
        return tuple(("mem", m, region) for region in regions)
    return (("mem", int(mid), getattr(op, "region", None)),)


def footprint(entry) -> Tuple:
    """The set of state keys a :class:`FrontierEntry` may touch.

    Keys are plain value tuples — ``("proc", pid)``, ``("mem", mid,
    region)`` or the global marker — so footprints compare equal across
    runs that execute the same prefix (sleep sets travel between runs).
    Unknown payload shapes degrade to :data:`GLOBAL`, never to a crash.
    """
    kind = entry.kind
    try:
        if kind in _TASK_KINDS:
            return (("proc", int(entry.a.pid)),)
        if kind == EV_DELIVER:
            return (("proc", int(entry.a.dst)),)
        if kind == EV_ARRIVE:
            future = entry.b
            return _mem_keys(future.mid, future.op)
        if kind == EV_OP_ARRIVE:
            mid, op = entry.c
            return _mem_keys(mid, op)
        if kind == EV_FAN_ARRIVE:
            _index, mid, op = entry.c
            return _mem_keys(mid, op)
    except Exception:
        return GLOBAL
    return GLOBAL  # EV_CALL, EV_FAULT, anything unrecognised


def dependent(fp1: Tuple, fp2: Tuple) -> bool:
    """True when entries with footprints *fp1*, *fp2* may not commute."""
    if fp1 is GLOBAL or fp2 is GLOBAL or ("*",) in fp1 or ("*",) in fp2:
        return True
    for key in fp1:
        if key in fp2:
            return True
    return False


def independent(fp1: Tuple, fp2: Tuple) -> bool:
    """True when entries with footprints *fp1*, *fp2* commute."""
    return not dependent(fp1, fp2)
