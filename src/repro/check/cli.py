"""Command-line front door: ``python -m repro.check``.

Subcommands:

``explore``
    Bounded sleep-set DFS over one registered scenario.  Prints the
    search report and writes any counterexamples as JSON next to the
    chosen output directory.  ``--exhaust-expected`` turns a truncated
    search into a non-zero exit, which is how CI asserts the PMP config
    stays exhaustible.

``corpus``
    The regression corpus: for each seeded kernel bug, assert the
    explorer finds a violating schedule (bug present) and finds none
    (bug absent).  Non-zero exit on either failure.

``replay``
    Re-execute a counterexample trace JSON and report whether it still
    reproduces.

``list``
    Show registered scenarios and seeded bugs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.check.explore import Budget, explore
from repro.check.scenarios import SCENARIOS, make_scenario
from repro.check.trace import load_trace, replay_trace, save_trace

# importing the corpus registers its scenarios, so argparse choices and
# trace replay see them
import repro.check.regressions  # noqa: E402,F401


def _write_counterexamples(report, out_dir: str) -> List[str]:
    paths = []
    if report.counterexamples:
        os.makedirs(out_dir, exist_ok=True)
    for n, cx in enumerate(report.counterexamples):
        path = os.path.join(out_dir, f"{report.scenario}-cx{n}.json")
        paths.append(save_trace(cx, path))
    return paths


def _write_report(data: dict, path: Optional[str]) -> None:
    if not path:
        return
    import json

    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report: {path}")


def _cmd_explore(args) -> int:
    scenario = make_scenario(args.scenario, _params(args))
    budget = Budget(
        divergences=args.divergences,
        max_runs=args.max_runs,
        max_steps=args.max_steps,
        max_branch_step=args.max_branch_step,
    )
    report = explore(scenario, budget, stop_on_first=args.stop_on_first)
    print(report.summary())
    cx_paths = _write_counterexamples(report, args.out)
    for path in cx_paths:
        print(f"counterexample: {path}")
    _write_report(
        dict(report.to_dict(), params=scenario.params, counterexamples=cx_paths),
        args.report,
    )
    if report.violations:
        return 1
    if args.exhaust_expected and not report.exhausted:
        print(
            "error: search was truncated by its run budget but "
            "--exhaust-expected was given",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_corpus(args) -> int:
    from repro.check.regressions import known_bugs

    corpus = {
        "unpark-token-collision": "regression-unpark-collision",
        "stale-wake-token-check": "regression-stale-wake",
    }
    assert set(corpus) == set(known_bugs())
    budget = Budget(divergences=args.divergences, max_runs=args.max_runs)
    failed = False
    results = {}
    for bug, scenario_name in sorted(corpus.items()):
        buggy = explore(
            make_scenario(scenario_name, {"bug": bug}), budget, stop_on_first=True
        )
        fixed = explore(make_scenario(scenario_name, {}), budget)
        print(f"[{bug}] seeded: {buggy.summary()}")
        print(f"[{bug}] fixed:  {fixed.summary()}")
        entry = {"seeded": buggy.to_dict(), "fixed": fixed.to_dict()}
        if not buggy.violations:
            print(f"error: explorer missed seeded bug {bug}", file=sys.stderr)
            failed = True
        else:
            paths = _write_counterexamples(buggy, args.out)
            result = replay_trace(load_trace(paths[0]))
            verdict = "reproduces" if result.reproduced else "DOES NOT REPRODUCE"
            print(f"[{bug}] replay of {paths[0]}: {verdict}")
            entry["counterexamples"] = paths
            entry["replay_reproduced"] = result.reproduced
            if not result.reproduced:
                failed = True
        if fixed.violations:
            print(
                f"error: explorer reported violations on the fixed kernel "
                f"for {scenario_name}",
                file=sys.stderr,
            )
            failed = True
        results[bug] = entry
    _write_report({"ok": not failed, "bugs": results}, args.report)
    return 1 if failed else 0


def _cmd_replay(args) -> int:
    result = replay_trace(args.trace)
    status = "reproduced" if result.reproduced else "not reproduced"
    print(f"{status} at t={result.final_time:g}")
    for line in result.mismatches:
        print(f"schedule drift: {line}")
    for line in result.errors:
        print(f"violation: {line}")
    return 0 if result.reproduced else 1


def _cmd_list(_args) -> int:
    from repro.check.regressions import known_bugs

    print("scenarios:")
    for name in sorted(SCENARIOS):
        print(f"  {name}")
    print("seeded bugs (regression corpus):")
    for name in known_bugs():
        print(f"  {name}")
    return 0


def _params(args):
    params = {}
    for item in args.param or []:
        key, _, raw = item.partition("=")
        try:
            import json

            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Schedule exploration and fault-injection model checking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ex = sub.add_parser("explore", help="bounded DFS over one scenario")
    ex.add_argument("scenario", choices=sorted(SCENARIOS))
    ex.add_argument("--divergences", type=int, default=2)
    ex.add_argument("--max-runs", type=int, default=100_000)
    ex.add_argument("--max-steps", type=int, default=20_000)
    ex.add_argument("--max-branch-step", type=int, default=None)
    ex.add_argument("--stop-on-first", action="store_true")
    ex.add_argument("--exhaust-expected", action="store_true")
    ex.add_argument("--param", action="append", metavar="KEY=JSON",
                    help="scenario constructor override (repeatable)")
    ex.add_argument("--out", default="counterexamples", metavar="DIR",
                    help="directory for counterexample trace JSONs")
    ex.add_argument("--report", default=None, metavar="PATH",
                    help="write the search statistics as JSON")
    ex.set_defaults(fn=_cmd_explore)

    co = sub.add_parser("corpus", help="run the seeded-bug regression corpus")
    co.add_argument("--divergences", type=int, default=2)
    co.add_argument("--max-runs", type=int, default=5_000)
    co.add_argument("--out", default="counterexamples", metavar="DIR",
                    help="directory for counterexample trace JSONs")
    co.add_argument("--report", default=None, metavar="PATH",
                    help="write the per-bug verdicts as JSON")
    co.set_defaults(fn=_cmd_corpus)

    rp = sub.add_parser("replay", help="re-execute a counterexample trace")
    rp.add_argument("trace")
    rp.set_defaults(fn=_cmd_replay)

    ls = sub.add_parser("list", help="show scenarios and seeded bugs")
    ls.set_defaults(fn=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
