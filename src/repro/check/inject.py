"""Fault-injection choice points for the explorer.

An :class:`InjectionSpec` names one fault action the explorer may take at
any step of a run *instead of* firing a frontier entry: crash a process
(optionally scheduling its recovery), or revoke/regrab a region's write
permission on every memory (the paper's "deposed coordinator" adversary).
The spec's events reuse the typed vocabulary of :mod:`repro.sim.faults`,
so everything an injection does goes through the same failure controller
as scripted chaos — crash hooks, respawn-on-recovery, metrics timeline.

Budgets keep the search bounded: each spec fires at most once per run, and
*groups* ("crash", "revoke") carry per-run budgets so "≤ 1 crash + ≤ 1
revocation" is a first-class search bound rather than a prompt comment.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.sim.faults import CrashProcess, PermissionChange, RecoverProcess


class InjectionSpec:
    """One nameable fault action the explorer may inject.

    ``events`` is a sequence of ``(delay, fault_event)`` pairs; delay 0
    executes through the failure controller at the injection instant, a
    positive delay is armed as a normal ``EV_FAULT`` heap entry (e.g. a
    crash now with its recovery 5 time units later).  ``group`` ties the
    spec to a per-run budget; ``max_step`` optionally restricts how late
    in a run the injection may fire.
    """

    __slots__ = ("name", "events", "group", "max_step")

    def __init__(
        self,
        name: str,
        events: Sequence[Tuple[float, Any]],
        group: str = "fault",
        max_step: Optional[int] = None,
    ) -> None:
        self.name = name
        self.events = tuple(events)
        self.group = group
        self.max_step = max_step

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InjectionSpec({self.name!r}, group={self.group!r})"


def crash(pid: int, recover_after: Optional[float] = None) -> InjectionSpec:
    """Crash process *pid*; with *recover_after*, schedule its recovery."""
    events = [(0.0, CrashProcess(pid))]
    name = f"crash-p{pid + 1}"
    if recover_after is not None:
        events.append((recover_after, RecoverProcess(pid)))
        name = f"crash-recover-p{pid + 1}"
    return InjectionSpec(name, events, group="crash")


def revoke(pid: int, region: str) -> InjectionSpec:
    """Adversarially re-grab *region* as exclusive writer *pid* on every
    memory — the permission revocation a deposed coordinator suffers (and,
    injected for a stale pid, the zombie's attempt to take the region
    back)."""
    return InjectionSpec(
        f"revoke-{region}-p{pid + 1}",
        [(0.0, PermissionChange(pid, region))],
        group="revoke",
    )
