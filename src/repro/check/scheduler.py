"""A scheduler that follows an explicit plan and records every choice.

:class:`ControlledScheduler` is the explorer's instrument: at each step it
materialises the list of *choices* (frontier entries plus any injection
specs still within budget), records them, and picks whatever the plan
dictates — defaulting to frontier index 0, i.e. the kernel's native order.
A plan therefore only names the steps where a run *diverges* from the
default schedule, which keeps counterexample traces small and readable.

Choice identity is stable across runs that share a prefix: frontier
entries are keyed by their queue sequence number (see
:mod:`repro.sim.event_queue`), injections by name.  That stability is what
lets sleep sets and serialized traces refer to "the entry the other run
fired first".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.deps import GLOBAL, footprint
from repro.check.inject import InjectionSpec
from repro.errors import ReproError
from repro.sim.schedule import FrontierEntry, Injection, Scheduler


class TraceDivergence(ReproError):
    """A replayed plan named a choice the run did not offer.

    Raised when the scenario being replayed does not match the trace —
    wrong seed, wrong code version, or a trace edited by hand.
    """


class Choice:
    """One option the scheduler saw at a step.

    ``encoding`` is the plan/trace form — ``("entry", index)`` or
    ``("inject", name)``; ``key`` is the stable identity used by sleep
    sets — ``("e", seq)`` or ``("i", name)``.
    """

    __slots__ = ("encoding", "key", "label", "fp")

    def __init__(self, encoding, key, label, fp) -> None:
        self.encoding = encoding
        self.key = key
        self.label = label
        self.fp = fp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Choice({self.encoding!r}, {self.label})"


class StepRecord:
    """What the scheduler saw and did at one step of one run."""

    __slots__ = ("step", "time", "choices", "chosen")

    def __init__(self, step: int, time: float, choices: List[Choice], chosen: int) -> None:
        self.step = step
        self.time = time
        self.choices = choices
        self.chosen = chosen  # index into ``choices``

    @property
    def chosen_choice(self) -> Choice:
        return self.choices[self.chosen]


#: Plan type: step index -> ("entry", frontier_index) | ("inject", name).
Plan = Dict[int, Tuple[str, Any]]


class ControlledScheduler(Scheduler):
    """Follow *plan*, record choice points, enforce injection budgets.

    ``max_steps`` is the per-run livelock budget: exceeding it raises the
    kernel's diagnostic :class:`~repro.errors.LivelockError` (queue-depth
    snapshot, flight dump when observability is attached), which the
    explorer reports as a liveness finding rather than spinning forever.
    """

    def __init__(
        self,
        plan: Optional[Plan] = None,
        specs: Sequence[InjectionSpec] = (),
        group_budgets: Optional[Dict[str, int]] = None,
        max_steps: Optional[int] = None,
        record: bool = True,
    ) -> None:
        self.plan: Plan = dict(plan or {})
        self.specs = tuple(specs)
        self.group_budgets = dict(group_budgets or {})
        self.max_steps = max_steps
        self.record = record
        self.step = 0
        self.log: List[StepRecord] = []
        self.injections_used: List[str] = []
        self._used_names = set()
        self._group_used: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _eligible(self, step: int) -> List[InjectionSpec]:
        out = []
        for spec in self.specs:
            if spec.name in self._used_names:
                continue
            if spec.max_step is not None and step > spec.max_step:
                continue
            budget = self.group_budgets.get(spec.group)
            if budget is not None and self._group_used.get(spec.group, 0) >= budget:
                continue
            out.append(spec)
        return out

    def _mark_used(self, spec: InjectionSpec) -> None:
        self._used_names.add(spec.name)
        self.injections_used.append(spec.name)
        self._group_used[spec.group] = self._group_used.get(spec.group, 0) + 1

    # ------------------------------------------------------------------
    def pick(self, kernel, now: float, frontier: List[FrontierEntry]):
        step = self.step
        self.step += 1
        if self.max_steps is not None and step >= self.max_steps:
            kernel._raise_livelock(self.max_steps)
        eligible = self._eligible(step)
        choice = self.plan.get(step)
        chosen_index = 0
        if choice is not None:
            what, operand = choice
            if what == "entry":
                if not 0 <= operand < len(frontier):
                    raise TraceDivergence(
                        f"step {step}: plan picks frontier entry {operand} "
                        f"but only {len(frontier)} are ready"
                    )
                chosen_index = operand
            elif what == "inject":
                spec = next((s for s in eligible if s.name == operand), None)
                if spec is None:
                    raise TraceDivergence(
                        f"step {step}: plan injects {operand!r} but it is "
                        f"not eligible here"
                    )
                chosen_index = len(frontier) + eligible.index(spec)
            else:  # pragma: no cover - defensive
                raise TraceDivergence(f"step {step}: unknown plan verb {what!r}")
        if self.record:
            choices = [
                Choice(("entry", i), ("e", fe.seq), fe.label(), footprint(fe))
                for i, fe in enumerate(frontier)
            ]
            choices.extend(
                Choice(("inject", s.name), ("i", s.name), f"inject:{s.name}", GLOBAL)
                for s in eligible
            )
            self.log.append(StepRecord(step, now, choices, chosen_index))
        if chosen_index < len(frontier):
            return chosen_index
        spec = eligible[chosen_index - len(frontier)]
        self._mark_used(spec)
        return Injection(spec.name, spec.events)
