"""Bounded-DFS schedule exploration with DPOR-style sleep sets.

The search tree
---------------

A *node* is a plan — a map from step index to a non-default choice; the
root is the empty plan (the kernel's native schedule).  Executing a node
means building the scenario fresh, attaching a
:class:`~repro.check.scheduler.ControlledScheduler` with that plan, running
to completion, and evaluating the scenario's invariant oracles.  The
scheduler's log then lists every step's choice set; each alternative ``d``
(a different frontier entry, or an injection) at some step ``i`` past the
node's divergence point spawns a child ``plan + {i: d}``.  Depth is
bounded by *divergences* — how many times a schedule may stray from the
default — not by run length, so a depth-2 search over a 25-step scenario
is thousands of runs, not billions.

Sleep sets
----------

Exploring both orders of two *commuting* choices wastes a whole subtree,
so each node carries a sleep set (Godefroid): choices already covered by
an earlier sibling's subtree.  An alternative whose key is asleep is
pruned.  Walking a run's log forward from its divergence point with sleep
set ``Z``:

* at step ``i``, each non-default alternative ``d ∉ Z`` becomes a child
  with sleep ``{x ∈ Z ∪ done : independent(x, d)}`` where ``done`` holds
  the step's earlier-enumerated choices (the executed default first);
* moving past step ``i`` along the executed choice ``c`` shrinks the set
  to ``{x ∈ Z : independent(x, c)}`` — a slept choice stays covered only
  while everything executed commutes with it.

Keys are queue sequence numbers (prefix-stable across runs), so a sleep
set computed in the parent's run is meaningful in the child's.  The
dependency relation is :mod:`repro.check.deps`; exhaustiveness claims are
therefore *modulo* its declared approximation, as in any DPOR.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.check.deps import independent
from repro.check.scheduler import ControlledScheduler, Plan, StepRecord
from repro.errors import DeadlockError, LivelockError, SafetyViolation

#: Sleep set: choice key -> that choice's footprint (needed to filter the
#: set as later steps execute).
SleepSet = Dict[Tuple, Tuple]


class Budget:
    """Search bounds.  ``divergences`` is the DFS depth (how far a plan
    may stray from the default schedule); ``max_runs`` caps total
    executions; ``max_steps`` is the per-run livelock budget;
    ``max_branch_step`` optionally restricts how late in a run new
    divergences may start (a preemption-window bound)."""

    __slots__ = ("divergences", "max_runs", "max_steps", "max_branch_step")

    def __init__(
        self,
        divergences: int = 2,
        max_runs: int = 100_000,
        max_steps: int = 20_000,
        max_branch_step: Optional[int] = None,
    ) -> None:
        self.divergences = divergences
        self.max_runs = max_runs
        self.max_steps = max_steps
        self.max_branch_step = max_branch_step


class Counterexample:
    """One failing run: the divergent choices plus everything needed to
    understand and replay them (see :mod:`repro.check.trace`)."""

    __slots__ = ("scenario", "params", "plan", "divergences", "errors",
                 "injections", "steps", "final_time", "flight_dump")

    def __init__(self, scenario, params, plan, divergences, errors,
                 injections, steps, final_time, flight_dump=None) -> None:
        self.scenario = scenario
        self.params = params
        self.plan = plan
        self.divergences = divergences
        self.errors = errors
        self.injections = injections
        self.steps = steps
        self.final_time = final_time
        self.flight_dump = flight_dump

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Counterexample {self.scenario} {len(self.plan)} divergences "
                f"{len(self.errors)} errors>")


class ExploreReport:
    """What a search did: sizes, prunes, findings."""

    __slots__ = ("scenario", "runs", "events", "branch_points", "alternatives",
                 "scheduled", "pruned", "counterexamples", "exhausted",
                 "divergence_bound", "elapsed")

    def __init__(self, scenario: str, divergence_bound: int) -> None:
        self.scenario = scenario
        self.runs = 0
        self.events = 0          # frontier picks executed across all runs
        self.branch_points = 0   # steps that offered more than one choice
        self.alternatives = 0    # non-default choices seen at branch points
        self.scheduled = 0       # children actually explored
        self.pruned = 0          # children skipped via sleep sets
        self.counterexamples: List[Counterexample] = []
        self.exhausted = False   # no bound other than ``divergences`` truncated
        self.divergence_bound = divergence_bound
        self.elapsed = 0.0

    @property
    def violations(self) -> int:
        return len(self.counterexamples)

    @property
    def pruning_ratio(self) -> float:
        total = self.scheduled + self.pruned
        return self.pruned / total if total else 0.0

    def summary(self) -> str:
        status = "exhausted" if self.exhausted else "truncated"
        return (
            f"{self.scenario}: {self.runs} schedules ({self.events} events) "
            f"explored to divergence depth {self.divergence_bound} "
            f"[{status}]; {self.branch_points} branch points, "
            f"{self.scheduled} branches taken, {self.pruned} pruned by "
            f"sleep sets ({self.pruning_ratio:.0%}); "
            f"{self.violations} violation(s) in {self.elapsed:.2f}s"
        )

    def to_dict(self) -> dict:
        """Machine-readable view of the search (no counterexample bodies —
        those are saved separately via ``save_trace``)."""
        return {
            "scenario": self.scenario,
            "runs": self.runs,
            "events": self.events,
            "branch_points": self.branch_points,
            "alternatives": self.alternatives,
            "scheduled": self.scheduled,
            "pruned": self.pruned,
            "pruning_ratio": self.pruning_ratio,
            "violations": self.violations,
            "exhausted": self.exhausted,
            "divergence_bound": self.divergence_bound,
            "elapsed": self.elapsed,
        }


class Explorer:
    """Bounded DFS over a scenario's schedule space.

    *scenario* follows the protocol of :mod:`repro.check.scenarios`:
    ``build()`` returns a fresh run handle with ``kernel``, ``execute()``,
    ``check(injections_used)`` and ``cleanup()``; ``injections`` /
    ``group_budgets`` describe the fault choice points.
    """

    def __init__(self, scenario, budget: Optional[Budget] = None,
                 stop_on_first: bool = False) -> None:
        self.scenario = scenario
        self.budget = budget or Budget()
        self.stop_on_first = stop_on_first
        self.report = ExploreReport(scenario.name, self.budget.divergences)
        self._stop = False

    # ------------------------------------------------------------------
    def run(self) -> ExploreReport:
        import time as _time

        started = _time.monotonic()
        self.report.exhausted = True  # cleared by any truncation
        self._dfs({}, 0, {}, self.budget.divergences)
        self.report.elapsed = _time.monotonic() - started
        return self.report

    # ------------------------------------------------------------------
    def _execute(self, plan: Plan) -> Tuple[ControlledScheduler, List[str], Any]:
        """One run under *plan*; returns (scheduler, oracle errors, kernel)."""
        run = self.scenario.build()
        sched = ControlledScheduler(
            plan=plan,
            specs=getattr(self.scenario, "injections", ()),
            group_budgets=getattr(self.scenario, "group_budgets", None),
            max_steps=self.budget.max_steps,
        )
        run.kernel.scheduler = sched
        failure: Optional[str] = None
        try:
            run.execute()
        except (SafetyViolation, LivelockError, DeadlockError) as exc:
            failure = f"{type(exc).__name__}: {exc}"
        finally:
            run.cleanup()
        errors = list(run.check(tuple(sched.injections_used)))
        if failure is not None:
            errors.insert(0, failure)
        return sched, errors, run.kernel

    def _record_counterexample(self, plan, sched, errors, kernel) -> None:
        divergences = []
        for step in sorted(plan):
            record = sched.log[step] if step < len(sched.log) else None
            choice = record.chosen_choice if record else None
            divergences.append({
                "step": step,
                "choice": list(plan[step]),
                "time": record.time if record else None,
                "key": list(choice.key) if choice else None,
                "label": choice.label if choice else None,
            })
        flight_dump = None
        if kernel is not None and kernel.obs is not None:
            flight_dump = kernel.obs.flight.trip("counterexample", kernel.now)
        self.report.counterexamples.append(Counterexample(
            scenario=self.scenario.name,
            params=dict(getattr(self.scenario, "params", {})),
            plan=dict(plan),
            divergences=divergences,
            errors=list(errors),
            injections=list(sched.injections_used),
            steps=sched.step,
            final_time=kernel.now if kernel is not None else None,
            flight_dump=flight_dump,
        ))
        if self.stop_on_first:
            self._stop = True

    # ------------------------------------------------------------------
    def _dfs(self, plan: Plan, start_step: int, sleep: SleepSet,
             divergences_left: int) -> None:
        if self._stop:
            return
        if self.report.runs >= self.budget.max_runs:
            self.report.exhausted = False
            return
        sched, errors, kernel = self._execute(plan)
        self.report.runs += 1
        self.report.events += sched.step
        if errors:
            self._record_counterexample(plan, sched, errors, kernel)
            if self._stop:
                return
        if divergences_left <= 0:
            # This node is a leaf of the depth-bounded search by design;
            # remaining alternatives here do not void exhaustiveness *at
            # the declared divergence bound*.
            return
        live: SleepSet = dict(sleep)
        max_branch = self.budget.max_branch_step
        for record in sched.log[start_step:]:
            if max_branch is not None and record.step >= max_branch:
                if self._branchy(record):
                    self.report.exhausted = False
                break
            chosen = record.chosen_choice
            if len(record.choices) > 1:
                self.report.branch_points += 1
                done: SleepSet = {chosen.key: chosen.fp}
                for alt in record.choices:
                    if alt is chosen:
                        continue
                    self.report.alternatives += 1
                    if alt.key in live:
                        self.report.pruned += 1
                        done[alt.key] = alt.fp
                        continue
                    child_sleep = {
                        key: fp
                        for source in (live, done)
                        for key, fp in source.items()
                        if independent(fp, alt.fp)
                    }
                    if self.report.runs >= self.budget.max_runs:
                        self.report.exhausted = False
                        return
                    child_plan = dict(plan)
                    child_plan[record.step] = alt.encoding
                    self.report.scheduled += 1
                    self._dfs(child_plan, record.step + 1, child_sleep,
                              divergences_left - 1)
                    if self._stop:
                        return
                    done[alt.key] = alt.fp
            # move past this step along the executed choice
            live = {key: fp for key, fp in live.items()
                    if independent(fp, chosen.fp)}

    def _branchy(self, record: StepRecord) -> bool:
        return len(record.choices) > 1


def explore(scenario, budget: Optional[Budget] = None,
            stop_on_first: bool = False) -> ExploreReport:
    """Run a bounded sleep-set DFS over *scenario*'s schedule space."""
    return Explorer(scenario, budget, stop_on_first).run()
