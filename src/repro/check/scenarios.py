"""Model-checkable scenarios: the configurations the explorer targets.

A scenario is a *factory plus oracle*: ``build()`` stands up completely
fresh state (kernel, cluster/service, workload) and returns a
:class:`ScenarioRun`; the explorer attaches its scheduler to
``run.kernel``, calls ``run.execute()``, then ``run.check(injections)``
for the invariant verdict.  Scenarios carry their search vocabulary too —
the injection specs and per-run group budgets ("≤ 1 crash + ≤ 1
revocation") the explorer may choose from.

Three target configurations, per the issue:

* :class:`PmpSingle` — 3-process / 3-memory Protected Memory Paxos,
  single instance: small enough to exhaust, rich enough to exercise the
  permission-fence safety argument under injected crashes and
  revocations;
* :class:`QuorumRead` — the PR 5 one-sided quorum-read window on a
  1-shard replicated KV: session staleness and replica consistency under
  leader churn and revocation;
* :class:`EpochCutover` — a live ``MoveLeader`` epoch change with traffic
  in flight: the deposed coordinator must stay fenced and the store must
  keep serving.

``params`` on every scenario is the JSON-serializable constructor-kwargs
dict; together with the registry (:data:`SCENARIOS`) it lets a
counterexample trace name its scenario and be rebuilt for replay.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.inject import InjectionSpec, crash, revoke
from repro.types import ProcessId


class ScenarioRun:
    """One fresh, runnable incarnation of a scenario."""

    __slots__ = ("kernel", "execute", "_check", "cleanup")

    def __init__(
        self,
        kernel,
        execute: Callable[[], None],
        check: Callable[[Tuple[str, ...]], List[str]],
        cleanup: Callable[[], None] = lambda: None,
    ) -> None:
        self.kernel = kernel
        self.execute = execute
        self._check = check
        self.cleanup = cleanup

    def check(self, injections_used: Tuple[str, ...] = ()) -> List[str]:
        """Invariant oracles; returns error strings (empty = run passed)."""
        return self._check(injections_used)


class Scenario:
    """Base: a named, parameterized, buildable model-checking target."""

    name = "?"

    def __init__(self, **params: Any) -> None:
        self.params: Dict[str, Any] = dict(params)
        self.injections: Tuple[InjectionSpec, ...] = ()
        self.group_budgets: Dict[str, int] = {}

    def build(self) -> ScenarioRun:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# 1. Protected Memory Paxos, single instance
# ---------------------------------------------------------------------------
class PmpSingle(Scenario):
    """3×3 PMP deciding one value; exhaustible with ≤1 crash + ≤1 revoke.

    Oracles: the ledger's agreement/validity record, a liveness check
    (every non-crashed process decided before the deadline), and the
    protocol-level memory oracle — the decided value must equal the value
    of the maximum accepted proposal across all memories
    (:func:`repro.consensus.protected_memory_paxos.chosen_value`).
    """

    name = "pmp-single"

    def __init__(
        self,
        seed: int = 0,
        deadline: float = 300.0,
        crashes: int = 1,
        revokes: int = 1,
        with_recovery: bool = False,
        obs: bool = False,
        batch_chains: bool = True,
    ) -> None:
        super().__init__(
            seed=seed, deadline=deadline, crashes=crashes, revokes=revokes,
            with_recovery=with_recovery, obs=obs, batch_chains=batch_chains,
        )
        from repro.consensus.protected_memory_paxos import REGION

        specs: List[InjectionSpec] = []
        if crashes:
            for pid in range(3):
                specs.append(
                    crash(pid, recover_after=5.0 if with_recovery else None)
                )
        if revokes:
            for pid in range(3):
                specs.append(revoke(pid, REGION))
        self.injections = tuple(specs)
        self.group_budgets = {"crash": crashes, "revoke": revokes}

    def build(self) -> ScenarioRun:
        from repro.consensus.omega import crash_aware_omega
        from repro.consensus.protected_memory_paxos import (
            PmpConfig,
            ProtectedMemoryPaxos,
            chosen_value,
        )
        from repro.core.cluster import Cluster, ClusterConfig

        p = self.params
        cluster = Cluster(
            ProtectedMemoryPaxos(PmpConfig(batch_chains=p["batch_chains"])),
            ClusterConfig(
                n_processes=3,
                n_memories=3,
                seed=p["seed"],
                strict_safety=False,  # record violations; the oracle reads them
                deadline=p["deadline"],
            ),
        )
        kernel = cluster.kernel
        kernel.omega = crash_aware_omega(kernel)
        if p["obs"]:
            from repro.obs.runtime import attach

            attach(kernel)
        inputs = ["a", "b", "c"]

        def live_pids() -> List[ProcessId]:
            return [
                ProcessId(pid)
                for pid in range(3)
                if ProcessId(pid) not in kernel.crashed_processes
            ]

        def goal() -> bool:
            decided = kernel.metrics.decisions
            pids = live_pids()
            return bool(pids) and all(pid in decided for pid in pids)

        def execute() -> None:
            cluster.start(inputs)
            kernel.run(until=p["deadline"], stop_when=goal)

        def check(_injections: Tuple[str, ...]) -> List[str]:
            errors = list(kernel.metrics.violations)
            decided = {
                pid: record.value
                for pid, record in kernel.metrics.decisions.items()
            }
            values = set(decided.values())
            if len(values) > 1:
                errors.append(f"agreement: processes decided {decided}")
            if not values <= set(inputs):
                errors.append(f"validity: decided {values - set(inputs)}")
            if not goal():
                undecided = [int(pid) for pid in live_pids() if pid not in decided]
                errors.append(
                    f"liveness: p{[p + 1 for p in undecided]} undecided at "
                    f"t={kernel.now:g} (deadline {p['deadline']:g})"
                )
            chosen = chosen_value(kernel)
            if values and chosen is not None and chosen not in values:
                errors.append(
                    f"memory/decision divergence: max accepted proposal holds "
                    f"{chosen!r} but processes decided {values}"
                )
            return errors

        return ScenarioRun(kernel, execute, check)


# ---------------------------------------------------------------------------
# 2. PR 5 quorum-read window
# ---------------------------------------------------------------------------
class QuorumRead(Scenario):
    """1-shard KV with one-sided quorum reads racing a writer.

    Oracles: workload completion, the ledger's staleness record (session
    guarantees under the watermark rule), and replica slot-for-slot
    consistency (:meth:`repro.shard.service.ShardedKV.replica_divergence`).
    """

    name = "quorum-read"

    def __init__(self, seed: int = 0, deadline: float = 5_000.0,
                 revokes: int = 1, crashes: int = 1) -> None:
        super().__init__(seed=seed, deadline=deadline, revokes=revokes,
                         crashes=crashes)
        from repro.shard.service import shard_region

        specs: List[InjectionSpec] = []
        if crashes:
            # Only p1 (pid 0): it hosts no client task, so crashing it
            # tests leader churn without killing the workload driver.
            specs.append(crash(0, recover_after=30.0))
        if revokes:
            for pid in range(3):
                specs.append(revoke(pid, shard_region(0)))
        self.injections = tuple(specs)
        self.group_budgets = {"crash": crashes, "revoke": revokes}

    def build(self) -> ScenarioRun:
        from repro.shard.router import READ_QUORUM
        from repro.shard.service import ShardConfig, ShardedKV
        from repro.shard.workload import ScriptedClient

        p = self.params
        service = ShardedKV(
            ShardConfig(
                n_shards=1,
                n_processes=3,
                n_memories=3,
                batch_max=2,
                vnodes=8,
                seed=p["seed"],
                deadline=p["deadline"],
                retry_timeout=50.0,
                read_mode=READ_QUORUM,
            )
        )
        clients = [
            ScriptedClient(
                client_id=1,
                script=[
                    ("put", "alpha", "v1"),
                    ("put", "beta", "v1"),
                    ("put", "alpha", "v2"),
                    ("get", "alpha", None),
                ],
                pid=1,
            ),
            ScriptedClient(
                client_id=2,
                script=[
                    ("get", "alpha", None),
                    ("get", "beta", None),
                    ("get", "alpha", None),
                ],
                pid=2,
            ),
        ]
        state: Dict[str, Any] = {"report": None}

        def execute() -> None:
            state["report"] = service.run_workload(clients)

        def check(_injections: Tuple[str, ...]) -> List[str]:
            errors = list(service.kernel.metrics.violations)
            report = state["report"]
            if report is None or not report.ok:
                errors.append(
                    f"liveness: workload incomplete at t={service.kernel.now:g}"
                )
            stale = service.kernel.metrics.staleness_violations
            if stale:
                errors.append(f"staleness: {stale} session-violating read(s)")
            errors.extend(service.replica_divergence())
            return errors

        return ScenarioRun(service.kernel, execute, check)


# ---------------------------------------------------------------------------
# 3. Epoch cutover with a deposed coordinator
# ---------------------------------------------------------------------------
class EpochCutover(Scenario):
    """A live ``MoveLeader`` while traffic flows; the old leader must stay
    fenced (unless the explorer itself re-granted it via a revoke
    injection) and replicas must agree.

    Not exhaustible at useful depth — this target is for bounded sweeps.
    """

    name = "epoch-cutover"

    def __init__(self, seed: int = 0, deadline: float = 40_000.0,
                 cutover_at: float = 60.0, revokes: int = 1) -> None:
        super().__init__(seed=seed, deadline=deadline, cutover_at=cutover_at,
                         revokes=revokes)
        from repro.shard.service import shard_region

        specs: List[InjectionSpec] = []
        if revokes:
            # the deposed coordinator grabbing its region back, and the
            # new leader being revoked mid-migration
            specs.append(revoke(0, shard_region(0)))
            specs.append(revoke(2, shard_region(0)))
        self.injections = tuple(specs)
        self.group_budgets = {"revoke": revokes}

    def build(self) -> ScenarioRun:
        from repro.reconfig.elastic import (
            ElasticConfig,
            ElasticKV,
            region_fenced_errors,
        )
        from repro.reconfig.epochs import MoveLeader
        from repro.shard.workload import ClosedLoopClient, UniformKeys

        p = self.params
        service = ElasticKV(
            ElasticConfig(
                n_shards=1,
                n_processes=3,
                n_memories=3,
                batch_max=2,
                vnodes=8,
                seed=p["seed"],
                deadline=p["deadline"],
                retry_timeout=25.0,
            )
        )
        service.schedule_reconfig(p["cutover_at"], MoveLeader(0, 2))
        clients = [
            ClosedLoopClient(
                client_id=9,
                n_ops=6,
                keys=UniformKeys(4, prefix="k"),
                think_time=15.0,
                pid=1,
            )
        ]
        state: Dict[str, Any] = {"report": None}

        def execute() -> None:
            state["report"] = service.run_workload(clients)

        def check(injections: Tuple[str, ...]) -> List[str]:
            errors = list(service.kernel.metrics.violations)
            report = state["report"]
            if report is None or not report.ok:
                errors.append(
                    f"liveness: workload incomplete at t={service.kernel.now:g}"
                )
            if service.leader_of(0) != 2:
                errors.append(
                    f"cutover: leader of shard 0 is p{service.leader_of(0) + 1}, "
                    f"expected p3"
                )
            # A revoke injection legitimately rewrites the fence: the new
            # leader re-grabs on its next write, but until then the zombie
            # holds the region — only judge fencing on injection-free runs.
            if not any(name.startswith("revoke-") for name in injections):
                errors.extend(region_fenced_errors(service, 0, 0))
            errors.extend(service.replica_divergence())
            return errors

        return ScenarioRun(service.kernel, execute, check)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
SCENARIOS: Dict[str, type] = {
    PmpSingle.name: PmpSingle,
    QuorumRead.name: QuorumRead,
    EpochCutover.name: EpochCutover,
}


def register(cls: type) -> type:
    """Add a scenario class to the registry (used by the regression
    corpus; also usable by downstream experiments)."""
    SCENARIOS[cls.name] = cls
    return cls


def make_scenario(name: str, params: Optional[Dict[str, Any]] = None) -> Scenario:
    """Instantiate a registered scenario from its trace-serialized form."""
    if name not in SCENARIOS:
        # the regression corpus registers its scenarios on import
        import repro.check.regressions  # noqa: F401
    try:
        cls = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)}"
        ) from None
    return cls(**(params or {}))
