"""``python -m repro.check`` — see :mod:`repro.check.cli`."""

import sys

from repro.check.cli import main

sys.exit(main())
