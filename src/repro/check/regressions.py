"""The regression corpus: real, fixed kernel bugs as explorer targets.

Both kernel bugs found so far were *schedule* bugs — correct under the
default interleaving, wrong under a neighbouring one a random seed had to
stumble into.  This module reintroduces each bug behind a private,
test-only switch (:func:`seeded_bug`) and pairs it with a scenario whose
**default schedule is benign**: running the scenario normally passes even
on the buggy kernel, and only the explorer — by flipping the order of two
same-instant events — exposes the corruption.  The corpus pins two
properties at once:

* the explorer *finds* each bug within a small budget (sensitivity), and
* it finds *nothing* on the fixed kernel (specificity) — the schedules it
  enumerates are real schedules, so zero violations is a statement about
  the kernel, not about the harness.

The bugs
--------

``unpark-token-collision`` (PR 5): ``Network.unpark`` removed parked
receive waiters by suspension token alone.  Tokens are per-task counters
(every task counts from 1), so a receive *timeout* on one task evicted an
unrelated task's waiter that happened to share the token number — that
task's message then bypassed the wake path and rotted in the inbox while
the task parked forever.  Only the order "timeout fires before the other
task's delivery, at the same instant" loses the wakeup.

``stale-wake-token-check`` (PR 2 era): timer wakes checked only that the
target task was suspended (*some* token pending), not that it was still
suspended on *the timer's* token.  A task that timed out of one wait and
immediately parked on a different one could be spuriously resumed by the
stale first timer — here, a gate-wait timeout resuming a ``recv`` with
``False`` instead of the message.  Only the order "stale timer fires
before the delivery that should win the race" corrupts the result.

These are **test-only flags**: nothing in the library reads them, the
context manager patches the class and restores it, and the scenarios
registered here exist purely as model-checking targets.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.check.scenarios import Scenario, ScenarioRun, register
from repro.mem.layout import MemoryLayout
from repro.mem.permissions import Permission
from repro.mem.regions import RegionSpec
from repro.net.network import Network
from repro.sim.kernel import Kernel, SimConfig


# ---------------------------------------------------------------------------
# the seeded bugs (private, test-only)
# ---------------------------------------------------------------------------
def _buggy_unpark(self, pid, token, task=None):
    # PR 5 bug: remove by token only — task identity ignored.
    self.waiters[pid] = [w for w in self.waiters[pid] if w.token != token]


def _buggy_ev_wake(self, task, token, value):
    # PR 2-era bug: "is it suspended?" instead of "is it suspended on
    # *this* token?" — a stale timer can resume a later, different wait.
    if task.pending_token is not None and not task.done:
        self._resume(task, value)


_BUGS = {
    "unpark-token-collision": (Network, "unpark", _buggy_unpark),
    "stale-wake-token-check": (Kernel, "_ev_wake", _buggy_ev_wake),
}


@contextmanager
def seeded_bug(name: Optional[str]):
    """Reintroduce a fixed kernel bug for the context's duration.

    ``None`` is a no-op (the fixed kernel), so corpus code can run the
    same scenario with and without the bug.  The patch must be active
    while the scenario *builds*: the kernel binds its handler table at
    construction time, so patching after ``Kernel()`` would miss
    ``_ev_wake``.
    """
    if name is None:
        yield
        return
    try:
        owner, attr, impl = _BUGS[name]
    except KeyError:
        raise KeyError(f"unknown seeded bug {name!r}; known: {sorted(_BUGS)}") from None
    original = owner.__dict__[attr]
    setattr(owner, attr, impl)
    try:
        yield
    finally:
        setattr(owner, attr, original)


def known_bugs() -> List[str]:
    return sorted(_BUGS)


# ---------------------------------------------------------------------------
# scenario scaffolding: a bare kernel with hand-written tasks
# ---------------------------------------------------------------------------
def _bare_kernel(n_processes: int, seed: int) -> Kernel:
    region = RegionSpec("r", ("x",), Permission.open(range(n_processes)))
    return Kernel(
        SimConfig(n_processes=n_processes, n_memories=1, seed=seed),
        MemoryLayout([region]),
    )


class _RegressionScenario(Scenario):
    """Common shape: build a bare kernel + tasks under the (optional)
    seeded bug, run the queue dry, then check recorded task results."""

    bug: Optional[str] = None  # subclasses may seed a bug via params

    def __init__(self, seed: int = 0, bug: Optional[str] = None) -> None:
        super().__init__(seed=seed, bug=bug)

    def _spawn(self, kernel: Kernel, results: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _verdict(self, results: Dict[str, Any]) -> List[str]:
        raise NotImplementedError

    def build(self) -> ScenarioRun:
        bug = self.params.get("bug")
        patch = seeded_bug(bug)
        patch.__enter__()
        restored = [False]

        def restore() -> None:
            if not restored[0]:
                restored[0] = True
                patch.__exit__(None, None, None)

        try:
            kernel = _bare_kernel(2, self.params["seed"])
            results: Dict[str, Any] = {}
            self._spawn(kernel, results)
        except BaseException:
            restore()
            raise

        def execute() -> None:
            kernel.run(until=100.0)

        def check(_injections: Tuple[str, ...]) -> List[str]:
            return self._verdict(results)

        return ScenarioRun(kernel, execute, check, cleanup=restore)


@register
class UnparkCollision(_RegressionScenario):
    """Two tasks of one process park receives with the same token number;
    a timeout on one must not evict the other's waiter.

    Default schedule: at t=5 the delivery to task B (queued at t=4) fires
    before task A's receive timeout (queued at t=4.5) — benign even on
    the buggy kernel.  The explorer's swap fires the timeout first: the
    buggy unpark evicts B's waiter by token, the delivery then rots in
    the inbox, and B never completes.
    """

    name = "regression-unpark-collision"

    def _spawn(self, kernel: Kernel, results: Dict[str, Any]) -> None:
        from repro.sim.environment import ProcessEnv
        from repro.types import ProcessId

        env0 = ProcessEnv(kernel, ProcessId(0))
        env1 = ProcessEnv(kernel, ProcessId(1))

        def receiver_b():
            # parks immediately: suspension token 1 of task B
            envlp = yield from env0.recv(topic="b")
            results["b"] = None if envlp is None else envlp.payload

        def late_a():
            # parks at t=4.5 with *its own* token 1; times out at t=5
            envlp = yield from env0.recv(topic="a", timeout=0.5)
            results["a"] = None if envlp is None else envlp.payload

        def coordinator():
            yield env0.sleep(4.5)
            yield env0.spawn("late-a", late_a(), daemon=False)

        def sender():
            yield env1.sleep(4.0)
            yield env1.send(0, "for-b", topic="b")  # delivers at t=5

        kernel.spawn(0, "receiver-b", receiver_b())
        kernel.spawn(0, "coordinator", coordinator())
        kernel.spawn(1, "sender", sender())

    def _verdict(self, results: Dict[str, Any]) -> List[str]:
        errors: List[str] = []
        if "b" not in results:
            errors.append(
                "lost wakeup: receiver-b never resumed — its waiter was "
                "evicted and the delivery rotted in the inbox"
            )
        elif results["b"] != "for-b":
            errors.append(f"receiver-b got {results['b']!r}, expected 'for-b'")
        if "a" not in results:
            errors.append("late-a never resumed (timeout lost)")
        return errors


@register
class StaleWake(_RegressionScenario):
    """A gate-wait timeout's timer goes stale when the gate opens; the
    stale timer must not resume the task's *next* wait.

    Default schedule: at t=3 the delivery of "go" (queued at t=2) fires
    before the stale gate timer (queued at t=2.5) — benign on both
    kernels (the winner resumes the receive; the stale timer then finds
    the task done/unsuspended).  The explorer's swap fires the stale
    timer first: the buggy token check resumes the parked receive with
    the timer's ``False`` payload instead of the message.
    """

    name = "regression-stale-wake"

    def _spawn(self, kernel: Kernel, results: Dict[str, Any]) -> None:
        from repro.sim.environment import ProcessEnv
        from repro.types import ProcessId

        env0 = ProcessEnv(kernel, ProcessId(0))
        env1 = ProcessEnv(kernel, ProcessId(1))
        gate = env0.new_gate("g")

        def waiter():
            yield env0.sleep(2.5)
            # Arms a timeout timer for t=3.0.  The signaler opens the
            # gate at the same instant, so the wake wins and the timer
            # entry goes stale.
            opened = yield env0.gate_wait(gate, timeout=0.5)
            envlp = yield from env0.recv(topic="go")
            # getattr, not .payload: the buggy kernel can resume this
            # receive with the stale timer's False — exactly the
            # corruption the verdict below must observe, not crash on
            results["waiter"] = (opened, getattr(envlp, "payload", envlp))

        def signaler():
            yield env0.sleep(2.5)
            env0.signal(gate)

        def sender():
            yield env1.sleep(2.0)
            yield env1.send(0, "go", topic="go")  # delivers at t=3

        kernel.spawn(0, "waiter", waiter())
        kernel.spawn(0, "signaler", signaler())
        kernel.spawn(1, "sender", sender())

    def _verdict(self, results: Dict[str, Any]) -> List[str]:
        got = results.get("waiter")
        if got is None:
            return ["waiter never completed (lost delivery or stranded park)"]
        opened, payload = got
        errors: List[str] = []
        if opened is not True:
            errors.append(f"gate wait returned {opened!r}, expected True")
        if payload != "go":
            errors.append(
                f"recv returned {payload!r}, expected 'go' — a stale timer "
                f"resumed the wrong wait"
            )
        return errors
