"""Cheap Quorum (paper Section 4.2, Algorithms 4 and 5).

The Byzantine fast path: with a correct leader, a synchronous network and
no failures, the leader decides after a single replicated register write —
**two delays, one signature**.  Followers replicate the leader's signed
value, assemble *unanimity proofs* (n signed copies) and decide once they
see n valid proofs.  Anything suspicious — timeout, bad signature, a panic
flag, a failed write — sends a process into panic mode: it sets its panic
flag, revokes the leader's write permission (the dynamic-permission step
that makes a concurrently deciding leader impossible to miss), and *aborts*
with the best-certified value it can salvage.  The abort outputs seed
Preferential Paxos in the Fast & Robust composition (Section 4.3).

Decision/abort guarantees implemented here and checked in tests
(Lemmas 4.5, 4.6, B.1-B.6): deciders agree; if p decided v, every aborter
carries v out, with a correct unanimity proof whenever a follower decided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.crypto.proofs import assemble_proof, verify_proof
from repro.crypto.signatures import Signed
from repro.mem.operations import ChangePermissionOp
from repro.mem.permissions import Permission, revoke_only_policy
from repro.mem.regions import RegionSpec
from repro.registers.swmr import ReplicatedRegister, read_many
from repro.sim.environment import ProcessEnv
from repro.types import OpStatus, is_bottom

LEADER_REGION = "cq:leader"
LEADER_PREFIX = ("cqL",)


@dataclass
class CheapQuorumConfig:
    leader: int = 0
    #: how long a follower waits for the leader's value
    leader_timeout: float = 30.0
    #: how long a follower waits for unanimity (copies, then proofs)
    unanimity_timeout: float = 60.0
    #: polling cadence for follower read loops
    poll: float = 1.0


@dataclass
class CqOutcome:
    """What one process carries out of Cheap Quorum.

    ``value`` is the raw consensus value.  ``leader_signed`` is the
    leader's signed value when available (Definition 3's M class) and
    ``proof`` the signed unanimity proof when available (T class); both
    are verified again by Preferential Paxos receivers, never trusted.
    """

    decided: bool
    panicked: bool
    value: Any
    leader_signed: Optional[Signed] = None
    proof: Optional[Signed] = None


def cq_regions(
    n_processes: int, leader: int = 0, namespace: str = "cq"
) -> List[RegionSpec]:
    """The leader region (dynamic: revocable) plus one SWMR region per
    process holding its ``Value``, ``Panic`` and ``Proof`` registers.

    *namespace* isolates independent Cheap Quorum instances (multi-shot
    replication runs one per log slot).
    """
    processes = range(n_processes)
    revoked = Permission.read_only(processes)
    regions = [
        RegionSpec(
            region_id=f"{namespace}:leader",
            prefix=(f"{namespace}L",),
            initial_permission=Permission.exclusive_writer(leader, processes),
            legal_change=revoke_only_policy(revoked),
        )
    ]
    for p in processes:
        regions.append(
            RegionSpec(
                region_id=f"{namespace}:{p}",
                prefix=(namespace, p),
                initial_permission=Permission.swmr(p, processes),
            )
        )
    return regions


class CheapQuorum:
    """One process's Cheap Quorum endpoint."""

    def __init__(
        self,
        env: ProcessEnv,
        config: Optional[CheapQuorumConfig] = None,
        namespace: str = "cq",
        instance: Optional[object] = None,
    ):
        self.env = env
        self.config = config or CheapQuorumConfig()
        self.namespace = namespace
        self.instance = instance
        self._leader_region = f"{namespace}:leader"
        self.leader_value = ReplicatedRegister(
            self._leader_region, (f"{namespace}L", "value")
        )

    # ------------------------------------------------------------------
    # register addressing
    # ------------------------------------------------------------------
    def _value(self, p: int) -> ReplicatedRegister:
        ns = self.namespace
        return ReplicatedRegister(f"{ns}:{p}", (ns, p, "value"))

    def _panic(self, p: int) -> ReplicatedRegister:
        ns = self.namespace
        return ReplicatedRegister(f"{ns}:{p}", (ns, p, "panic"))

    def _proof(self, p: int) -> ReplicatedRegister:
        ns = self.namespace
        return ReplicatedRegister(f"{ns}:{p}", (ns, p, "proof"))

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self, value: Any) -> Generator:
        """Run the protocol; returns a :class:`CqOutcome`."""
        if int(self.env.pid) == self.config.leader:
            outcome = yield from self._run_leader(value)
        else:
            outcome = yield from self._run_follower(value)
        return outcome

    # ------------------------------------------------------------------
    # leader (Algorithm 4, lines 1-6)
    # ------------------------------------------------------------------
    def _run_leader(self, value: Any) -> Generator:
        env = self.env
        signed = env.sign(value)
        status = yield from self.leader_value.write(env, signed)
        if status is not OpStatus.ACK:
            outcome = yield from self._panic_mode(value)
            return outcome
        env.decide(value, instance=self.instance)
        # Keep helping followers reach unanimity (the leader also acts as a
        # follower per the paper), but never decide or panic again.
        yield env.spawn("cq-leader-helper", self._helper(signed), daemon=True)
        return CqOutcome(
            decided=True, panicked=False, value=value, leader_signed=signed
        )

    def _helper(self, leader_signed: Signed) -> Generator:
        """The leader's follower duties: copy + proof, best effort."""
        env = self.env
        copy = env.sign(leader_signed)
        yield from self._value(int(env.pid)).write(env, copy)
        deadline = env.now + self.config.unanimity_timeout
        while env.now < deadline:
            copies = yield from self._collect_copies(leader_signed)
            if copies is not None:
                proof = assemble_proof(env.authority, env.key, leader_signed, copies)
                yield from self._proof(int(env.pid)).write(env, proof)
                return
            yield env.sleep(self.config.poll)

    # ------------------------------------------------------------------
    # follower (Algorithm 4, lines 8-23)
    # ------------------------------------------------------------------
    def _run_follower(self, value: Any) -> Generator:
        env = self.env
        leader = self.config.leader
        deadline = env.now + self.config.leader_timeout

        # Loop 1: wait for the leader's signed value (or panic/timeout).
        leader_signed = None
        while True:
            view = yield from read_many(
                env,
                [self.leader_value] + [self._panic(q) for q in env.processes],
            )
            lval = view[self.leader_value.key]
            if any(
                view[(self.namespace, q, "panic")] is True for q in env.processes
            ) or env.now >= deadline:
                outcome = yield from self._panic_mode(value)
                return outcome
            if not is_bottom(lval):
                if env.valid(leader, lval):
                    leader_signed = lval
                    break
                outcome = yield from self._panic_mode(value)  # forged: panic
                return outcome
            yield env.sleep(self.config.poll)

        # Replicate the leader's signed value under our own signature.
        copy = env.sign(leader_signed)
        yield from self._value(int(env.pid)).write(env, copy)

        # Loop 2: wait for n unanimous copies, then publish a proof.
        deadline = env.now + self.config.unanimity_timeout
        my_proof = None
        while True:
            copies = yield from self._collect_copies(leader_signed)
            if copies is not None:
                my_proof = assemble_proof(env.authority, env.key, leader_signed, copies)
                yield from self._proof(int(env.pid)).write(env, my_proof)
                break
            panicked = yield from self._panic_seen()
            if panicked or env.now >= deadline:
                outcome = yield from self._panic_mode(value)
                return outcome
            yield env.sleep(self.config.poll)

        # Loop 3: wait for n valid unanimity proofs, then decide.
        while True:
            proofs = yield from read_many(
                env, [self._proof(q) for q in env.processes]
            )
            valid = 0
            for q in env.processes:
                candidate = proofs[(self.namespace, q, "proof")]
                if is_bottom(candidate):
                    continue
                verified = verify_proof(env.authority, candidate, env.n_processes)
                if verified is not None and verified.value == leader_signed:
                    valid += 1
            if valid >= env.n_processes:
                raw = leader_signed.payload
                env.decide(raw, instance=self.instance)
                return CqOutcome(
                    decided=True,
                    panicked=False,
                    value=raw,
                    leader_signed=leader_signed,
                    proof=my_proof,
                )
            panicked = yield from self._panic_seen()
            if panicked or env.now >= deadline:
                outcome = yield from self._panic_mode(value)
                return outcome
            yield env.sleep(self.config.poll)

    def _collect_copies(self, leader_signed: Signed) -> Generator:
        """All n valid signed copies of the leader's value, or None."""
        env = self.env
        view = yield from read_many(env, [self._value(q) for q in env.processes])
        copies = []
        for q in env.processes:
            candidate = view[(self.namespace, q, "value")]
            if is_bottom(candidate):
                continue
            if env.valid(q, candidate) and candidate.payload == leader_signed:
                copies.append(candidate)
        if len(copies) >= env.n_processes:
            return tuple(copies)
        return None

    def _panic_seen(self) -> Generator:
        env = self.env
        view = yield from read_many(env, [self._panic(q) for q in env.processes])
        return any(view[(self.namespace, q, "panic")] is True for q in env.processes)

    # ------------------------------------------------------------------
    # panic mode (Algorithm 5)
    # ------------------------------------------------------------------
    def _panic_mode(self, my_input: Any) -> Generator:
        env = self.env
        me = int(env.pid)
        yield from self._panic(me).write(env, True)
        # Revoke the leader's write permission on a majority of replicas:
        # after this, a leader write that still reports success must have
        # been serialized before the revocation (uncontended-instantaneous).
        revoked = Permission.read_only(range(env.n_processes))
        futures = yield from env.invoke_on_all(
            lambda mid: ChangePermissionOp(region=self._leader_region, new_permission=revoked)
        )
        yield env.wait(futures, count=env.majority_of_memories())

        own_value = yield from self._value(me).read(env)
        own_proof = yield from self._proof(me).read(env)
        if not is_bottom(own_value) and isinstance(own_value, Signed):
            leader_signed = own_value.payload
            proof = None
            if not is_bottom(own_proof) and verify_proof(
                env.authority, own_proof, env.n_processes
            ):
                proof = own_proof
            return CqOutcome(
                decided=False,
                panicked=True,
                value=getattr(leader_signed, "payload", leader_signed),
                leader_signed=leader_signed if isinstance(leader_signed, Signed) else None,
                proof=proof,
            )
        lval = yield from self.leader_value.read(env)
        if not is_bottom(lval) and env.valid(self.config.leader, lval):
            return CqOutcome(
                decided=False, panicked=True, value=lval.payload, leader_signed=lval
            )
        return CqOutcome(decided=False, panicked=True, value=my_input)
