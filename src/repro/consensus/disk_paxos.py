"""Disk Paxos (Gafni & Lamport [28]) — the static-permission baseline.

The paper's comparison point for shared-memory consensus: ``n >= f_P + 1``
processes, ``m >= 2f_M + 1`` disks (memories with a single always-open
region), but **at least four delays** even in the common case, because
after writing its block a leader must *read back* every block to check that
no higher ballot intervened — the confirming read that Protected Memory
Paxos replaces with permission revocation (and that Theorem 6.1 proves
cannot be avoided without dynamic permissions or messages).

A stable leader (ballot established by an earlier instance, modeled with
``established_leader``) still pays write + read-back per attempt: 2 memory
operations = 4 delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.base import ConsensusProtocol
from repro.consensus.chains import ChainRunner
from repro.consensus.messages import Decision
from repro.mem.operations import SnapshotOp, WriteOp
from repro.mem.permissions import Permission
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import BOTTOM, is_bottom

REGION = "dp"
TOPIC = "dp"


@dataclass(frozen=True)
class DiskBlock:
    """Gafni-Lamport disk block: ``(mbal, bal, inp)`` plus a decided flag
    used by the link-free learning path."""

    mbal: Ballot
    bal: Optional[Ballot]
    inp: Any
    decided: bool = False


@dataclass
class DiskPaxosConfig:
    leader_poll: float = 2.0
    retry_backoff: float = 4.0
    #: process whose first ballot counts as pre-established (skips phase 1
    #: on its first attempt, mirroring PMP's p1 head start)
    established_leader: Optional[int] = 0
    #: Section 3's pure disk model: learn decisions by polling the disks
    #: instead of a decision broadcast (works with links disabled entirely)
    link_free: bool = False
    #: polling cadence for link-free decision learning
    learn_poll: float = 2.0


def disk_paxos_regions(n_processes: int) -> List[RegionSpec]:
    """One open region per memory — the disk model of Section 3."""
    return [
        RegionSpec(
            region_id=REGION,
            prefix=(REGION,),
            initial_permission=Permission.open(range(n_processes)),
        )
    ]


@dataclass
class _ChainResult:
    view: Optional[dict]


class DiskPaxosNode:
    """One process's Disk Paxos endpoint."""

    def __init__(self, env: ProcessEnv, value: Any, config: Optional[DiskPaxosConfig] = None):
        self.env = env
        self.value = value
        self.config = config or DiskPaxosConfig()
        self.highest_seen = Ballot.zero()
        self.decided = False
        self.decided_value: Any = None
        self.first_attempt = True
        self._bal: Optional[Ballot] = None
        self._inp: Any = BOTTOM

    # ------------------------------------------------------------------
    def listener(self) -> Generator:
        env = self.env
        if self.config.link_free:
            # The disk model has no links: poll the disks for a decided
            # block (one snapshot per memory, in parallel).
            while not self.decided:
                futures = yield from env.invoke_on_all(
                    lambda mid: SnapshotOp(region=REGION, prefix=(REGION,))
                )
                yield env.wait(futures, count=env.majority_of_memories())
                for future in futures:
                    if not future.ok:
                        continue
                    for block in future.value.values():
                        if isinstance(block, DiskBlock) and block.decided:
                            self._learn(block.inp)
                            return
                yield env.sleep(self.config.learn_poll)
            return
        while not self.decided:
            envelope = yield from env.recv(topic=TOPIC)
            if envelope is not None and isinstance(envelope.payload, Decision):
                self._learn(envelope.payload.value)

    def _learn(self, value: Any) -> None:
        if not self.decided:
            self.decided = True
            self.decided_value = value
            self.env.decide(value)

    # ------------------------------------------------------------------
    def proposer(self) -> Generator:
        env = self.env
        while not self.decided:
            if env.leader() != env.pid:
                yield env.sleep(self.config.leader_poll)
                continue
            yield from self._attempt()
            if not self.decided:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))

    def _round(self, mbal: Ballot, block: DiskBlock, majority: int) -> Generator:
        """One GL round: write own block + read all blocks, per disk.

        Returns the list of completed per-disk views, or None if a higher
        ``mbal`` was seen (abort the attempt).
        """
        env = self.env
        label = f"dp-{mbal.round}-{mbal.pid}"
        chains = ChainRunner(env, label)

        def chain(mid):
            yield from env.write(mid, REGION, (REGION, int(env.pid)), block)
            snap = yield from env.snapshot(mid, REGION, (REGION,))
            return _ChainResult(view=snap.value if snap.ok else None)

        yield from chains.launch(chain)
        yield from chains.wait_for(majority)
        views = []
        aborted = False
        for result in chains.results.values():
            if result.view is None:
                aborted = True
                continue
            for key, other in result.view.items():
                if key == (REGION, int(env.pid)) or not isinstance(other, DiskBlock):
                    continue
                self.highest_seen = max(self.highest_seen, other.mbal)
                if other.mbal > mbal:
                    aborted = True
            views.append(result.view)
        return None if aborted else views

    def _attempt(self) -> Generator:
        env = self.env
        majority = env.majority_of_memories()
        mbal = self.highest_seen.next_for(env.pid)
        self.highest_seen = mbal
        skip_phase1 = (
            self.config.established_leader is not None
            and int(env.pid) == self.config.established_leader
            and self.first_attempt
        )
        self.first_attempt = False

        if skip_phase1:
            inp = self.value
        else:
            block = DiskBlock(mbal=mbal, bal=self._bal, inp=self._inp)
            views = yield from self._round(mbal, block, majority)
            if views is None:
                return
            best: Optional[Tuple[Ballot, Any]] = None
            for view in views:
                for key, other in view.items():
                    if key == (REGION, int(env.pid)) or not isinstance(other, DiskBlock):
                        continue
                    if other.bal is not None and not is_bottom(other.inp):
                        if best is None or other.bal > best[0]:
                            best = (other.bal, other.inp)
            inp = self.value if best is None else best[1]

        # Phase 2: write (mbal, bal=mbal, inp) then read back — the
        # unavoidable confirming read of the static-permission model.
        self._bal = mbal
        self._inp = inp
        block = DiskBlock(mbal=mbal, bal=mbal, inp=inp)
        views = yield from self._round(mbal, block, majority)
        if views is None:
            return
        self._learn(inp)
        if self.config.link_free:
            # Publish the decision on the disks themselves.
            decided_block = DiskBlock(mbal=mbal, bal=mbal, inp=inp, decided=True)
            futures = yield from env.invoke_on_all(
                lambda mid: WriteOp(
                    region=REGION, key=(REGION, int(env.pid)), value=decided_block
                )
            )
            yield env.wait(futures, count=majority)
        else:
            yield from env.broadcast(
                Decision(value=inp), topic=TOPIC, include_self=False
            )


class DiskPaxos(ConsensusProtocol):
    """Disk Paxos as a pluggable protocol."""

    name = "disk-paxos"

    def __init__(self, config: Optional[DiskPaxosConfig] = None) -> None:
        self.config = config or DiskPaxosConfig()

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        return disk_paxos_regions(n_processes)

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        node = DiskPaxosNode(env, value, self.config)
        return [("dp-listener", node.listener()), ("dp-proposer", node.proposer())]
