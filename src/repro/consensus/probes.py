"""One-sided read probes for permission-fenced protocols.

Three primitives the non-consensus read paths are built from, shared by
Protected Memory Paxos, Aligned Paxos and the replicated-log layer:

* :func:`probe_write_grant` — the **fence check**: a zero-length
  permission probe on every memory, true iff the caller's exclusive
  write grant is still installed at a majority.  A leader whose grant
  probe succeeds at time ``t`` knows no other leader can have committed
  anything it has not seen before ``t`` (committing requires holding the
  grant at a majority, majorities intersect, and a grant moves only
  through the full takeover prepare) — so its local applied state is
  linearizable to serve as of ``t``.
* :func:`read_quorum_watermarks` — the **watermark read**: snapshot the
  per-writer commit-watermark registers from a majority and take the
  max.  Because a writer publishes watermark ``s`` only after slot ``s``
  is majority-written (and waits for a majority ACK before answering any
  client), the max over any majority covers every write a client ever
  saw complete.
* :func:`publish_watermark` — the **watermark write**: install a slot
  index in the caller's own watermark register on every memory and wait
  for a majority.  Leaders publish after each commit; quorum readers
  write back the watermark they observed (the ABD read write-back) so a
  later reader can never observe an older quorum than one already
  served.

All three are plain generators over :class:`~repro.sim.environment.
ProcessEnv` — each costs one two-delay memory round, issued to all
memories as a single-completion fan-out
(:class:`~repro.sim.effects.OpFanoutEffect`): the kernel counts ACKs and
NAKs in one shared state and wakes the caller exactly once when the
verdict is in, instead of re-registering a waiter closure per response.

:func:`read_quorum_chain` is the doorbell-batched read round built from
the same pieces: per memory, ONE fused chain carrying the watermark
snapshot and the floor-filtered entry snapshot — the quorum read's two
rounds collapsed into one (see ``ReplicatedLog._quorum_read_inner`` for
the adoption rule that makes this safe).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.mem.operations import BatchOp, ProbeOp, ReadSnapshotOp, SnapshotOp, WriteOp
from repro.sim.environment import ProcessEnv
from repro.types import RegionId, RegisterKey

#: name component of per-writer watermark registers: ``(region, WM, pid)``
WM = "wm"


def watermark_key(rx_region: RegionId, pid: int) -> tuple:
    """The per-writer commit-watermark register of *pid* in *rx_region*."""
    return (rx_region, WM, int(pid))


def _verdict_fanout(
    env: ProcessEnv, make_op, timeout: Optional[float]
) -> Generator:
    """Fan *make_op(mid)* out to every memory with ACK-counting single
    completion: the task wakes once — at a majority of ACKs, at more than
    ``m - majority`` NAKs (a majority of ACKs became impossible), or at
    the timeout.  Returns ``(state, majority)``; the verdict is
    ``state.acked >= majority``."""
    majority = env.majority_of_memories()
    state = yield env.fanout_to_all(
        make_op,
        need=majority,
        count_acks=True,
        spare_naks=env.n_memories - majority,
        timeout=timeout,
    )
    return state, majority


def probe_write_grant(
    env: ProcessEnv, region: RegionId, timeout: Optional[float] = None
) -> Generator:
    """True iff this process holds the exclusive write grant on *region*
    at a majority of memories right now (the one-sided fence check)."""
    op = ProbeOp(region, "write")
    state, majority = yield from _verdict_fanout(env, lambda mid: op, timeout)
    return state.acked >= majority


def read_quorum_watermarks(
    env: ProcessEnv, rx_region: RegionId, timeout: Optional[float] = None
) -> Generator:
    """Read every watermark register from a majority of memories.

    Returns ``(watermark, confirmed)`` where *watermark* is the max slot
    index seen (``-1`` when nothing was ever published) and *confirmed*
    is True when a majority of the responding views already carry that
    max — in which case a reader may skip the write-back round (the value
    is provably durable at a majority).  Returns ``(None, False)`` when a
    majority cannot be assembled (memories down, or the region fenced
    away by a reconfiguration).
    """
    op = SnapshotOp(rx_region, (rx_region,))
    state, majority = yield from _verdict_fanout(env, lambda mid: op, timeout)
    if state.acked < majority:
        return None, False
    views = [r.value for r in state.results if r is not None and r.ok]
    return max_confirmed_watermark(views, majority)


def max_confirmed_watermark(views, majority: int) -> Tuple[int, bool]:
    """Max watermark over *views* plus the confirmed-majority verdict.

    Confirmation is **per register** (per writer): the max is confirmed
    only when a *single* writer's register carries it at a majority of
    the views.  Counting mixed registers would be unsound once writers
    fuse the slot write and the watermark publish into one chain: two
    different writers' failed chains can each leave the same watermark at
    a minority, jointly covering a majority, without EITHER writer's slot
    being committed anywhere.  A single writer's register at a majority,
    by contrast, proves that writer completed (or advanced past) the slot
    under the fence — the commit happened.
    """
    watermark = -1
    for view in views:
        for value in view.values():
            if isinstance(value, int) and value > watermark:
                watermark = value
    if watermark < 0:
        return watermark, False
    counts: Dict[Any, int] = {}
    best = 0
    for view in views:
        for key, value in view.items():
            if isinstance(value, int) and value >= watermark:
                tally = counts.get(key, 0) + 1
                counts[key] = tally
                if tally > best:
                    best = tally
    return watermark, best >= majority


def publish_watermark(
    env: ProcessEnv,
    rx_region: RegionId,
    slot: int,
    timeout: Optional[float] = None,
) -> Generator:
    """Install *slot* in this process's watermark register, majority-acked.

    Per-writer registers keep concurrent publishers from clobbering each
    other; the caller is responsible for keeping its own register
    monotone (see ``ReplicatedLog._publish_watermark``).
    """
    op = WriteOp(rx_region, watermark_key(rx_region, int(env.pid)), int(slot))
    state, majority = yield from _verdict_fanout(env, lambda mid: op, timeout)
    return state.acked >= majority


def read_quorum_chain(
    env: ProcessEnv,
    rx_region: RegionId,
    region: RegionId,
    prefix: RegisterKey,
    floor: Any = None,
    timeout: Optional[float] = None,
) -> Generator:
    """The fused 1-round quorum read: per memory, one doorbell-batched
    chain ``[watermark snapshot, floor-filtered entry snapshot]``.

    Because a chain applies atomically at one memory, each returned pair
    ``(wm_view, entry_view)`` is a *consistent cut* of that memory: every
    slot its watermark covers is present in the same entry view (writers
    install the slot and its watermark in one chain too — the same-chain
    property).  Returns the list of per-memory pairs from the ACKing
    majority, or ``None`` when a majority cannot be assembled.

    Callers MUST gate on ``env.fifo_memory_ops`` and apply the per-view
    qualification rule (adopt slot ``s`` only from a view whose own
    watermark is ``>= s``) — see ``ReplicatedLog._quorum_read_inner``.
    """
    chain = BatchOp(
        (SnapshotOp(rx_region, (rx_region,)), ReadSnapshotOp(region, prefix, floor))
    )
    state, majority = yield from _verdict_fanout(env, lambda mid: chain, timeout)
    if state.acked < majority:
        return None
    return [r.value for r in state.results if r is not None and r.ok]
