"""One-sided read probes for permission-fenced protocols.

Three primitives the non-consensus read paths are built from, shared by
Protected Memory Paxos, Aligned Paxos and the replicated-log layer:

* :func:`probe_write_grant` — the **fence check**: a zero-length
  permission probe on every memory, true iff the caller's exclusive
  write grant is still installed at a majority.  A leader whose grant
  probe succeeds at time ``t`` knows no other leader can have committed
  anything it has not seen before ``t`` (committing requires holding the
  grant at a majority, majorities intersect, and a grant moves only
  through the full takeover prepare) — so its local applied state is
  linearizable to serve as of ``t``.
* :func:`read_quorum_watermarks` — the **watermark read**: snapshot the
  per-writer commit-watermark registers from a majority and take the
  max.  Because a writer publishes watermark ``s`` only after slot ``s``
  is majority-written (and waits for a majority ACK before answering any
  client), the max over any majority covers every write a client ever
  saw complete.
* :func:`publish_watermark` — the **watermark write**: install a slot
  index in the caller's own watermark register on every memory and wait
  for a majority.  Leaders publish after each commit; quorum readers
  write back the watermark they observed (the ABD read write-back) so a
  later reader can never observe an older quorum than one already
  served.

All three are plain generators over :class:`~repro.sim.environment.
ProcessEnv` — each costs one two-delay memory round, issued to all
memories in parallel.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.mem.operations import ProbeOp, SnapshotOp, WriteOp
from repro.sim.environment import ProcessEnv
from repro.types import RegionId

#: name component of per-writer watermark registers: ``(region, WM, pid)``
WM = "wm"


def watermark_key(rx_region: RegionId, pid: int) -> tuple:
    """The per-writer commit-watermark register of *pid* in *rx_region*."""
    return (rx_region, WM, int(pid))


def _tally(futures) -> Tuple[int, int]:
    acked = naked = 0
    for future in futures:
        if future.done:
            if future.ok:
                acked += 1
            else:
                naked += 1
    return acked, naked


def _await_verdict(
    env: ProcessEnv, futures, majority: int, timeout: Optional[float]
) -> Generator:
    """Park until *majority* ACKs (True), too many NAKs (False), or the
    timeout lapses (False).  NAKs short-circuit: once more than
    ``m - majority`` memories refused, a majority of ACKs is impossible."""
    deadline = None if timeout is None else env.now + timeout
    max_naks = env.n_memories - majority
    while True:
        acked, naked = _tally(futures)
        if acked >= majority:
            return True
        if naked > max_naks:
            return False
        remaining = None
        if deadline is not None:
            remaining = deadline - env.now
            if remaining <= 0:
                return False
        yield env.wait(futures, count=min(len(futures), acked + naked + 1),
                       timeout=remaining)
        if deadline is not None and env.now >= deadline:
            acked, _ = _tally(futures)
            return acked >= majority


def probe_write_grant(
    env: ProcessEnv, region: RegionId, timeout: Optional[float] = None
) -> Generator:
    """True iff this process holds the exclusive write grant on *region*
    at a majority of memories right now (the one-sided fence check)."""
    op = ProbeOp(region, "write")
    futures = yield from env.invoke_on_all(lambda mid: op)
    held = yield from _await_verdict(
        env, futures, env.majority_of_memories(), timeout
    )
    return held


def read_quorum_watermarks(
    env: ProcessEnv, rx_region: RegionId, timeout: Optional[float] = None
) -> Generator:
    """Read every watermark register from a majority of memories.

    Returns ``(watermark, confirmed)`` where *watermark* is the max slot
    index seen (``-1`` when nothing was ever published) and *confirmed*
    is True when a majority of the responding views already carry that
    max — in which case a reader may skip the write-back round (the value
    is provably durable at a majority).  Returns ``(None, False)`` when a
    majority cannot be assembled (memories down, or the region fenced
    away by a reconfiguration).
    """
    majority = env.majority_of_memories()
    op = SnapshotOp(rx_region, (rx_region,))
    futures = yield from env.invoke_on_all(lambda mid: op)
    ok = yield from _await_verdict(env, futures, majority, timeout)
    if not ok:
        return None, False
    views = [f.value for f in futures if f.done and f.ok]
    watermark = -1
    for view in views:
        for value in view.values():
            if isinstance(value, int) and value > watermark:
                watermark = value
    confirmed = sum(
        1
        for view in views
        if any(isinstance(v, int) and v >= watermark for v in view.values())
    )
    return watermark, confirmed >= majority


def publish_watermark(
    env: ProcessEnv,
    rx_region: RegionId,
    slot: int,
    timeout: Optional[float] = None,
) -> Generator:
    """Install *slot* in this process's watermark register, majority-acked.

    Per-writer registers keep concurrent publishers from clobbering each
    other; the caller is responsible for keeping its own register
    monotone (see ``ReplicatedLog._publish_watermark``).
    """
    op = WriteOp(rx_region, watermark_key(rx_region, int(env.pid)), int(slot))
    futures = yield from env.invoke_on_all(lambda mid: op)
    ok = yield from _await_verdict(env, futures, env.majority_of_memories(), timeout)
    return ok
