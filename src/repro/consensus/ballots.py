"""Totally ordered ballot (proposal) numbers.

A ballot is a ``(round, pid)`` pair ordered lexicographically, so two
processes can never produce the same ballot and "choose a number higher
than any seen before" (Algorithm 7, line 10) is always possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import ProcessId


@dataclass(frozen=True, order=True)
class Ballot:
    """Lexicographically ordered proposal number."""

    round: int
    pid: int

    @staticmethod
    def initial(pid: ProcessId) -> "Ballot":
        return Ballot(round=1, pid=int(pid))

    @staticmethod
    def zero() -> "Ballot":
        """Smaller than every real ballot (placeholder for "never")."""
        return Ballot(round=0, pid=-1)

    def next_for(self, pid: ProcessId) -> "Ballot":
        """The smallest ballot of *pid* larger than this one."""
        return Ballot(round=self.round + 1, pid=int(pid))

    def __repr__(self) -> str:
        return f"({self.round},p{self.pid + 1})"
