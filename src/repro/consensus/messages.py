"""Protocol message types shared by Paxos variants and validators.

These are plain frozen dataclasses with no behaviour so that both the
transports (direct and trusted) and the conformance validators can import
them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.consensus.ballots import Ballot


@dataclass(frozen=True)
class Prepare:
    """Phase-1a: a proposer solicits promises for *ballot*."""

    ballot: Ballot


@dataclass(frozen=True)
class Promise:
    """Phase-1b: an acceptor promises *ballot*, reporting what it accepted."""

    ballot: Ballot
    accepted_ballot: Optional[Ballot]
    accepted_value: Any


@dataclass(frozen=True)
class Accept:
    """Phase-2a: a proposer asks acceptors to accept (*ballot*, *value*)."""

    ballot: Ballot
    value: Any


@dataclass(frozen=True)
class Accepted:
    """Phase-2b: an acceptor accepted (*ballot*, *value*)."""

    ballot: Ballot
    value: Any


@dataclass(frozen=True)
class Nack:
    """An acceptor refuses *ballot* (it promised *promised* instead)."""

    ballot: Ballot
    promised: Ballot


@dataclass(frozen=True)
class Decision:
    """A learner announces the decided *value*."""

    value: Any


@dataclass(frozen=True)
class SetupValue:
    """Preferential Paxos set-up phase: an input value with its priority tag.

    ``priority`` is the Definition-3 class (smaller = higher priority);
    ``payload`` carries whatever certificates justify the class (checked by
    the receiver, not trusted from the tag).
    """

    value: Any
    priority: int
    payload: Any = None


#: Fast Paxos fast-round messages
@dataclass(frozen=True)
class FastPropose:
    """A proposer's round-0 value, sent directly to all acceptors."""

    value: Any


@dataclass(frozen=True)
class FastAccepted:
    """An acceptor's round-0 acceptance, broadcast to all learners."""

    value: Any
