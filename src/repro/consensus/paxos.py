"""Single-decree Paxos over a pluggable transport.

This is the crash-tolerant algorithm ``A`` the paper feeds to the Robust
Backup construction (Definition 2): run it over :class:`DirectTransport`
and it is classic message-passing Paxos (the 4-delay, ``n >= 2f+1``
baseline); run it over :class:`TrustedAdapter` and it becomes the Byzantine
tolerant Robust Backup core.

Roles are folded into one node per process: a *pump* task receives and
dispatches messages (acceptor duties are handled inline; proposer replies
are filed and a gate is signalled), and a *proposer* task drives ballots
whenever Ω says this process leads.  Everyone decides upon a ``Decision``
message; the proposer that forms an Accepted quorum decides directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.base import ProposerOutcome, Transport, wait_until
from repro.consensus.messages import (
    Accept,
    Accepted,
    Decision,
    Nack,
    Prepare,
    Promise,
)
from repro.sim.environment import ProcessEnv
from repro.types import ProcessId


@dataclass
class PaxosConfig:
    """Tunables for one Paxos node."""

    #: promise/accepted quorum size; default: majority of n
    quorum: Optional[int] = None
    #: how long a proposer waits for a quorum before retrying
    round_timeout: float = 20.0
    #: base backoff between proposer attempts (jittered)
    retry_backoff: float = 5.0
    #: how often a non-leader checks whether it became leader
    leader_poll: float = 2.0

    def quorum_for(self, n: int) -> int:
        return self.quorum if self.quorum is not None else n // 2 + 1


@dataclass
class _AcceptorState:
    promised: Ballot = field(default_factory=Ballot.zero)
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Any = None


class PaxosNode:
    """One process's Paxos endpoint (acceptor + proposer + learner)."""

    def __init__(
        self,
        env: ProcessEnv,
        transport: Transport,
        value: Any,
        config: Optional[PaxosConfig] = None,
        on_decide=None,
        instance: Any = None,
    ) -> None:
        self.env = env
        self.transport = transport
        self.value = value
        self.config = config or PaxosConfig()
        self.instance = instance
        self.quorum = self.config.quorum_for(env.n_processes)
        self.acceptor = _AcceptorState()
        self.promises: Dict[Ballot, Dict[ProcessId, Promise]] = {}
        self.accepts: Dict[Ballot, Set[ProcessId]] = {}
        self.nacked: Set[Ballot] = set()
        self.highest_seen = Ballot.zero()
        self.decided_value: Any = None
        self.decided = False
        self.wake = env.new_gate(f"paxos-wake-p{int(env.pid)+1}")
        self.on_decide = on_decide

    # ------------------------------------------------------------------
    # message pump (acceptor + learner + proposer reply filing)
    # ------------------------------------------------------------------
    def pump(self) -> Generator:
        """Receive-and-dispatch loop; runs until the process is killed."""
        while True:
            received = yield from self.transport.recv(timeout=None)
            if received is None:
                continue
            sender, message = received
            yield from self._dispatch(ProcessId(sender), message)

    def _dispatch(self, sender: ProcessId, message: Any) -> Generator:
        if isinstance(message, Prepare):
            yield from self._on_prepare(sender, message)
        elif isinstance(message, Accept):
            yield from self._on_accept(sender, message)
        elif isinstance(message, Promise):
            self._file_promise(sender, message)
        elif isinstance(message, Accepted):
            self._file_accepted(sender, message)
        elif isinstance(message, Nack):
            self._file_nack(message)
        elif isinstance(message, Decision):
            self._learn(message.value)

    def _on_prepare(self, sender: ProcessId, msg: Prepare) -> Generator:
        state = self.acceptor
        self.highest_seen = max(self.highest_seen, msg.ballot)
        if msg.ballot > state.promised:
            state.promised = msg.ballot
            reply = Promise(
                ballot=msg.ballot,
                accepted_ballot=state.accepted_ballot,
                accepted_value=state.accepted_value,
            )
            yield from self.transport.send(sender, reply)
        else:
            yield from self.transport.send(
                sender, Nack(ballot=msg.ballot, promised=state.promised)
            )

    def _on_accept(self, sender: ProcessId, msg: Accept) -> Generator:
        state = self.acceptor
        self.highest_seen = max(self.highest_seen, msg.ballot)
        if msg.ballot >= state.promised:
            state.promised = msg.ballot
            state.accepted_ballot = msg.ballot
            state.accepted_value = msg.value
            yield from self.transport.send(
                sender, Accepted(ballot=msg.ballot, value=msg.value)
            )
        else:
            yield from self.transport.send(
                sender, Nack(ballot=msg.ballot, promised=state.promised)
            )

    def _file_promise(self, sender: ProcessId, msg: Promise) -> None:
        self.promises.setdefault(msg.ballot, {})[sender] = msg
        self.env.signal(self.wake)
        self.wake.clear()

    def _file_accepted(self, sender: ProcessId, msg: Accepted) -> None:
        self.accepts.setdefault(msg.ballot, set()).add(sender)
        self.env.signal(self.wake)
        self.wake.clear()

    def _file_nack(self, msg: Nack) -> None:
        self.nacked.add(msg.ballot)
        self.highest_seen = max(self.highest_seen, msg.promised)
        self.env.signal(self.wake)
        self.wake.clear()

    def _learn(self, value: Any) -> None:
        if not self.decided:
            self.decided = True
            self.decided_value = value
            self.env.decide(value, instance=self.instance)
            if self.on_decide is not None:
                self.on_decide(value)
        self.env.signal(self.wake)
        self.wake.clear()

    # ------------------------------------------------------------------
    # proposer
    # ------------------------------------------------------------------
    def proposer(self) -> Generator:
        """Drive ballots while this process is the Ω leader; returns when
        decided."""
        env = self.env
        while not self.decided:
            if env.leader() != env.pid:
                yield env.gate_wait(self.wake, timeout=self.config.leader_poll)
                continue
            yield from self._attempt()
            if not self.decided:
                backoff = self.config.retry_backoff * (1 + env.rng.random())
                yield env.sleep(backoff)
        return ProposerOutcome(decided=True, value=self.decided_value)

    def _attempt(self) -> Generator:
        env = self.env
        ballot = self.highest_seen.next_for(env.pid)
        self.highest_seen = ballot
        obs = env.obs
        phase = obs and obs.phase("paxos.prepare", ballot=str(ballot))
        try:
            yield from self.transport.broadcast(Prepare(ballot=ballot))
            arrived = yield from wait_until(
                env,
                self.wake,
                lambda: self._promise_count(ballot) >= self.quorum
                or ballot in self.nacked
                or self.decided,
                timeout=self.config.round_timeout,
            )
        finally:
            if phase:
                phase.finish()
        if self.decided or not arrived or ballot in self.nacked:
            return
        proposal = self._choose_value(ballot)
        phase = obs and obs.phase("paxos.accept", ballot=str(ballot))
        try:
            yield from self.transport.broadcast(Accept(ballot=ballot, value=proposal))
            yield from wait_until(
                env,
                self.wake,
                lambda: len(self.accepts.get(ballot, ())) >= self.quorum
                or ballot in self.nacked
                or self.decided,
                timeout=self.config.round_timeout,
            )
        finally:
            if phase:
                phase.finish()
        if self.decided or len(self.accepts.get(ballot, ())) < self.quorum:
            return
        yield from self.transport.broadcast(Decision(value=proposal))
        self._learn(proposal)

    def _promise_count(self, ballot: Ballot) -> int:
        return len(self.promises.get(ballot, {}))

    def _choose_value(self, ballot: Ballot) -> Any:
        """Standard selection: value of the highest-ballot accepted pair."""
        best: Optional[Tuple[Ballot, Any]] = None
        for promise in self.promises.get(ballot, {}).values():
            if promise.accepted_ballot is None:
                continue
            if best is None or promise.accepted_ballot > best[0]:
                best = (promise.accepted_ballot, promise.accepted_value)
        return self.value if best is None else best[1]
