"""Preferential Paxos (paper Section 4.3, Algorithm 8, Lemma 4.7).

A wrapper around Robust Backup(Paxos) with a set-up phase: every process
T-broadcasts its input with a priority tag, waits for ``n - f`` inputs and
adopts the highest-priority one.  Because any ``n - f`` sample misses at
most ``f`` inputs, every process adopts one of the top ``f + 1`` priority
inputs, and Paxos validity then confines the decision to those.

Priorities follow Definition 3 (smaller number = higher priority):

* **0 (T)** — the value carries a correct unanimity proof;
* **1 (M)** — the value carries the Cheap Quorum leader's signature;
* **2 (B)** — everything else.

Tags are *claims*: every receiver re-verifies the attached certificate and
demotes the value if it does not check out, so a Byzantine process cannot
promote its own value by lying about its class.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.consensus.base import TrustedAdapter, wait_until
from repro.consensus.messages import SetupValue
from repro.consensus.paxos import PaxosConfig, PaxosNode
from repro.crypto.proofs import verify_proof
from repro.crypto.signatures import Signed, canonical_bytes
from repro.sim.environment import ProcessEnv
from repro.trusted.transport import TrustedTransport
from repro.types import ProcessId

PRIORITY_PROOF = 0
PRIORITY_LEADER_SIGNED = 1
PRIORITY_BARE = 2


def effective_priority(
    env: ProcessEnv, sv: SetupValue, leader: ProcessId, n_processes: int
) -> int:
    """Re-verify a setup value's claimed priority (Definition 3 classes)."""
    if sv.priority <= PRIORITY_PROOF:
        proof = verify_proof(env.authority, sv.payload, n_processes)
        if (
            proof is not None
            and isinstance(proof.value, Signed)
            and env.valid(leader, proof.value)
            and proof.value.payload == sv.value
        ):
            return PRIORITY_PROOF
    if sv.priority <= PRIORITY_LEADER_SIGNED:
        cert = sv.payload if sv.priority == PRIORITY_LEADER_SIGNED else None
        if (
            isinstance(cert, Signed)
            and env.valid(leader, cert)
            and cert.payload == sv.value
        ):
            return PRIORITY_LEADER_SIGNED
    return PRIORITY_BARE


def _rank(env: ProcessEnv, sv: SetupValue, leader: ProcessId, n: int) -> Tuple:
    """Deterministic total order: verified priority, then value digest."""
    digest = hashlib.sha256(canonical_bytes(sv.value)).hexdigest()
    return (effective_priority(env, sv, leader, n), digest)


@dataclass
class PreferentialPaxosConfig:
    #: the Cheap Quorum leader whose signature defines the M class
    leader: int = 0
    #: max Byzantine processes; setup waits for n - f inputs
    max_faulty: Optional[int] = None
    round_timeout: float = 60.0
    retry_backoff: float = 10.0
    leader_poll: float = 3.0

    def faulty_for(self, n: int) -> int:
        return self.max_faulty if self.max_faulty is not None else (n - 1) // 2


class PreferentialPaxosNode:
    """One process's Preferential Paxos endpoint over a trusted transport."""

    def __init__(
        self,
        env: ProcessEnv,
        transport: TrustedTransport,
        setup_value: SetupValue,
        config: Optional[PreferentialPaxosConfig] = None,
        instance: Any = None,
    ) -> None:
        self.env = env
        self.transport = transport
        self.setup_value = setup_value
        self.config = config or PreferentialPaxosConfig()
        self.instance = instance
        f = self.config.faulty_for(env.n_processes)
        self.needed = env.n_processes - f
        paxos_config = PaxosConfig(
            quorum=env.n_processes // 2 + 1,
            round_timeout=self.config.round_timeout,
            retry_backoff=self.config.retry_backoff,
            leader_poll=self.config.leader_poll,
        )
        self.node = PaxosNode(
            env,
            TrustedAdapter(transport),
            value=None,
            config=paxos_config,
            instance=instance,
        )
        self.inputs: Dict[ProcessId, SetupValue] = {}
        self.adopted: Optional[SetupValue] = None

    @property
    def decided(self) -> bool:
        return self.node.decided

    @property
    def decided_value(self) -> Any:
        return self.node.decided_value

    # ------------------------------------------------------------------
    def pump(self) -> Generator:
        """Trusted receive loop: routes setup values and Paxos traffic."""
        while True:
            delivered = yield from self.transport.t_recv(timeout=None)
            if delivered is None:
                continue
            sender = ProcessId(delivered.sender)
            message = delivered.message
            if isinstance(message, SetupValue):
                self.inputs.setdefault(sender, message)
                self.env.signal(self.node.wake)
                self.node.wake.clear()
            else:
                yield from self.node._dispatch(sender, message)

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """Set-up phase, then Robust Backup(Paxos) (Algorithm 8)."""
        env = self.env
        yield from self.transport.t_broadcast(self.setup_value)
        yield from wait_until(
            env,
            self.node.wake,
            lambda: len(self.inputs) >= self.needed or self.decided,
            timeout=None,
        )
        if self.decided:
            return self.decided_value
        candidates = list(self.inputs.values())
        leader = ProcessId(self.config.leader)
        best = min(
            candidates, key=lambda sv: _rank(env, sv, leader, env.n_processes)
        )
        self.adopted = best
        self.node.value = best.value
        yield from self.node.proposer()
        return self.decided_value
