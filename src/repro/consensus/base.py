"""Protocol interface and transports.

:class:`ConsensusProtocol` is what the cluster runner consumes: a protocol
declares the memory regions it needs and the tasks each correct process
runs.  Decisions are reported through ``env.decide`` so the metrics ledger
sees every decision (and checks agreement) regardless of protocol.

:class:`DirectTransport` and :class:`TrustedAdapter` give Paxos one send/
receive interface over either the raw network (crash model) or the trusted
T-send/T-receive layer (Byzantine model) — the textual substitution the
paper performs in Definition 2 becomes a constructor argument here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import ProcessId


@dataclass
class ProposerOutcome:
    """What a propose task returns (also recorded via ``env.decide``)."""

    decided: bool
    value: Any = None


class ConsensusProtocol(ABC):
    """A consensus algorithm pluggable into the cluster runner."""

    name: str = "consensus"

    @abstractmethod
    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        """Memory regions this protocol needs on every memory replica."""

    @abstractmethod
    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        """The generator tasks one correct process runs, given its input."""

    def recovery_tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        """Tasks a process runs when it restarts after a crash.

        A restarted process has lost its volatile state and must rebuild it
        from the shared memories.  The default is a fresh start with the
        original input; protocols whose fresh start takes shortcuts that
        are only sound the *first* time (e.g. Protected Memory Paxos'
        first-attempt prepare skip) override this to force the full
        recovery path.
        """
        return self.tasks(env, value)


class Transport(ABC):
    """Uniform send/receive interface for message-passing protocols."""

    @abstractmethod
    def send(self, dst: ProcessId, message: Any) -> Generator:
        """Send *message* to *dst* (sub-generator)."""

    @abstractmethod
    def broadcast(self, message: Any) -> Generator:
        """Send *message* to every process including ourselves."""

    @abstractmethod
    def recv(self, timeout: Optional[float] = None) -> Generator:
        """Receive ``(sender, message)`` or None on timeout."""


class DirectTransport(Transport):
    """Plain network transport (the crash-failure setting)."""

    def __init__(self, env: ProcessEnv, topic: str = "paxos") -> None:
        self.env = env
        self.topic = topic

    def send(self, dst: ProcessId, message: Any) -> Generator:
        yield self.env.send(dst, message, topic=self.topic)

    def broadcast(self, message: Any) -> Generator:
        yield from self.env.broadcast(message, topic=self.topic, include_self=True)

    def recv(self, timeout: Optional[float] = None) -> Generator:
        envelope = yield self.env.recv_effect(topic=self.topic, timeout=timeout)
        if envelope is None:
            return None
        return (envelope.src, envelope.payload)


class TrustedAdapter(Transport):
    """Transport over T-send/T-receive (the Byzantine setting).

    Wrapping a :class:`~repro.trusted.transport.TrustedTransport` makes
    ``RobustBackup(A) = A with sends/receives replaced`` a one-line change,
    mirroring Definition 2 of the paper.
    """

    def __init__(self, trusted) -> None:
        self.trusted = trusted

    def send(self, dst: ProcessId, message: Any) -> Generator:
        yield from self.trusted.t_send(dst, message)

    def broadcast(self, message: Any) -> Generator:
        yield from self.trusted.t_broadcast(message)

    def recv(self, timeout: Optional[float] = None) -> Generator:
        delivered = yield from self.trusted.t_recv(timeout=timeout)
        if delivered is None:
            return None
        return (delivered.sender, delivered.message)


def wait_until(env: ProcessEnv, gate, condition, timeout: Optional[float]) -> Generator:
    """Park on *gate* until ``condition()`` holds; False on timeout."""
    deadline = None if timeout is None else env.now + timeout
    while not condition():
        remaining = None if deadline is None else deadline - env.now
        if remaining is not None and remaining <= 0:
            return False
        yield env.gate_wait(gate, timeout=remaining)
    return True
