"""Per-memory operation chains, run in parallel across all memories.

Protected Memory Paxos, Disk Paxos and Aligned Paxos all share this access
pattern (the paper's ``pfor`` loops): a short *sequence* of operations per
memory — permission change, slot write, slot-array read — executed in
parallel across memories, with the leader proceeding once ``m - f_M``
chains completed.  Chains on crashed memories simply never finish.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro.consensus.base import wait_until
from repro.sim.environment import ProcessEnv
from repro.types import MemoryId

ChainFn = Callable[[MemoryId], Generator]


class ChainRunner:
    """Launches one chain task per memory and waits on completions."""

    def __init__(self, env: ProcessEnv, label: str, gate=None) -> None:
        self.env = env
        self.label = label
        self.results: Dict[MemoryId, Any] = {}
        # A caller that must wait on chain completions *and* other events
        # (Aligned Paxos: memory chains + acceptor replies) passes its own
        # wake gate so one wait covers both.
        self.gate = gate if gate is not None else env.new_gate(
            f"{label}-chains-p{int(env.pid)+1}"
        )

    def launch(self, chain: ChainFn) -> Generator:
        """Spawn ``chain(mid)`` for every memory (sub-generator)."""
        for mid in self.env.memories:
            yield self.env.spawn(
                f"{self.label}-mu{int(mid)+1}", self._run_one(mid, chain)
            )

    def _run_one(self, mid: MemoryId, chain: ChainFn) -> Generator:
        result = yield from chain(mid)
        self.results[mid] = result
        self.env.signal(self.gate)
        self.gate.clear()

    def wait_for(self, count: int, timeout: Optional[float] = None) -> Generator:
        """Park until *count* chains completed; False on timeout."""
        done = yield from wait_until(
            self.env, self.gate, lambda: len(self.results) >= count, timeout
        )
        return done
