"""Classic message-passing Paxos as a pluggable protocol (baseline).

This is the paper's reference point for message-passing consensus under
partial synchrony: ``n >= 2f_P + 1`` processes, decisions in four delays in
the common case (prepare → promise → accept → accepted).  It uses no
memories at all.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from repro.consensus.base import ConsensusProtocol, DirectTransport
from repro.consensus.paxos import PaxosConfig, PaxosNode
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv


class MessagePaxos(ConsensusProtocol):
    """Single-decree Paxos over the plain network."""

    name = "message-paxos"

    def __init__(self, config: PaxosConfig | None = None) -> None:
        self.config = config or PaxosConfig()

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        return []

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        node = PaxosNode(env, DirectTransport(env), value, config=self.config)
        return [("paxos-pump", node.pump()), ("paxos-proposer", node.proposer())]
