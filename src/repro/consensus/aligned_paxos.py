"""Aligned Paxos (paper Section 5.2, Algorithms 9-15).

Processes and memories are *equivalent agents*: consensus survives as long
as a **majority of the combined set** ``P ∪ M`` stays alive — e.g. with
n=3, m=3 any three failures split arbitrarily between processes and
memories.  The proposer runs the same two phases against both agent kinds,
translating each step (Algorithms 10-15):

====================  ===========================  =======================
step                  process agent                memory agent
====================  ===========================  =======================
communicate1          send ``Prepare(b)``          grab permission, write
                                                   ``slot[p] = (b, -, -)``
hear back 1           ``Promise``/``Nack``         snapshot all slots
communicate2          send ``Accept(b, v)``        write ``(b, b, v)``
hear back 2           ``Accepted``/``Nack``        write ACK/NAK
====================  ===========================  =======================

Two memory-side variants, per the paper's footnote 4:

* ``variant="protected"`` (default): Protected Memory Paxos style — dynamic
  permissions make phase-2 writes self-certifying; the initial leader skips
  phase 1 on its first attempt and decides in **two delays**.
* ``variant="disk"``: Disk Paxos style — no permissions; phase 2 adds a
  confirming snapshot per memory (two extra delays), no phase skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.base import ConsensusProtocol, DirectTransport, wait_until
from repro.consensus.chains import ChainRunner
from repro.consensus.messages import Accept, Decision, Prepare
from repro.consensus.paxos import PaxosConfig, PaxosNode
from repro.consensus.probes import probe_write_grant
from repro.consensus.protected_memory_paxos import PmpSlot
from repro.mem.operations import ChangePermissionOp, SnapshotOp, WriteOp
from repro.mem.permissions import Permission, exclusive_grab_policy
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import BOTTOM, is_bottom

REGION = "ap"
TOPIC = "aligned"


@dataclass
class AlignedConfig:
    variant: str = "protected"  # or "disk"
    leader_poll: float = 2.0
    retry_backoff: float = 4.0
    round_timeout: float = 30.0
    initial_leader: int = 0
    #: doorbell batching: fuse each memory agent's per-phase op sequence
    #: (grab + probe + snapshot in phase 1; write + confirming snapshot in
    #: the disk variant's phase 2) into ONE chain — the same steps at the
    #: same memory, two delays instead of four or six.  ``False`` restores
    #: the classic per-op sequences exactly.
    batch_chains: bool = True

    def __post_init__(self) -> None:
        if self.variant not in ("protected", "disk"):
            raise ValueError(f"unknown variant {self.variant!r}")


def aligned_regions(
    n_processes: int, variant: str = "protected", initial_leader: int = 0
) -> List[RegionSpec]:
    processes = range(n_processes)
    if variant == "protected":
        permission = Permission.exclusive_writer(initial_leader, processes)
        legal = exclusive_grab_policy(processes)
        return [
            RegionSpec(REGION, (REGION,), permission, legal_change=legal)
        ]
    return [RegionSpec(REGION, (REGION,), Permission.open(processes))]


@dataclass
class _ChainResult:
    ok: bool
    view: Optional[dict] = None


class AlignedNode:
    """One process's Aligned Paxos endpoint.

    The message half reuses :class:`PaxosNode` (acceptor duties, reply
    filing, decision learning); the proposer below drives both agent kinds
    and counts a combined quorum.
    """

    def __init__(self, env: ProcessEnv, value: Any, config: Optional[AlignedConfig] = None):
        self.env = env
        self.value = value
        self.config = config or AlignedConfig()
        paxos_config = PaxosConfig(
            round_timeout=self.config.round_timeout,
            retry_backoff=self.config.retry_backoff,
            leader_poll=self.config.leader_poll,
        )
        self.node = PaxosNode(
            env, DirectTransport(env, topic=TOPIC), value, config=paxos_config
        )
        self.first_attempt = True
        #: restarted-after-crash mode (see PmpNode.recovering): propose
        #: regardless of Ω until decided, and keep the node's own memory
        #: slot adoptable during phase 1 — it may hold the only surviving
        #: copy of the previous incarnation's committed value
        self.recovering = False

    # ------------------------------------------------------------------
    @property
    def decided(self) -> bool:
        return self.node.decided

    def pump(self) -> Generator:
        yield from self.node.pump()

    def grant_probe(self, timeout: Optional[float] = None) -> Generator:
        """One-sided fence check against the memory-agent half: True iff
        this process's exclusive write grant is still installed at a
        majority of memories.  Meaningful only for the ``protected``
        variant — the disk variant has no permissions to probe, so the
        check degenerates to True whenever a majority responds (callers
        must not treat that as a fence)."""
        held = yield from probe_write_grant(self.env, REGION, timeout=timeout)
        return held

    def proposer(self) -> Generator:
        env = self.env
        while not self.decided:
            if not self.recovering and env.leader() != env.pid:
                yield env.gate_wait(self.node.wake, timeout=self.config.leader_poll)
                continue
            yield from self._attempt()
            if not self.decided:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))

    # ------------------------------------------------------------------
    def _agent_majority(self) -> int:
        total = self.env.n_processes + self.env.n_memories
        return total // 2 + 1

    def _attempt(self) -> Generator:
        env = self.env
        node = self.node
        majority = self._agent_majority()
        ballot = node.highest_seen.next_for(env.pid)
        node.highest_seen = ballot
        skip_phase1 = (
            self.config.variant == "protected"
            and int(env.pid) == self.config.initial_leader
            and self.first_attempt
        )
        self.first_attempt = False

        if skip_phase1:
            proposal = self.value
        else:
            proposal = yield from self._phase1(ballot, majority)
            if proposal is _RESTART:
                return

        ok = yield from self._phase2(ballot, proposal, majority)
        if not ok:
            return
        yield from node.transport.broadcast(Decision(value=proposal))
        node._learn(proposal)

    # ------------------------------------------------------------------
    def _phase1(self, ballot: Ballot, majority: int) -> Generator:
        env = self.env
        node = self.node
        protected = self.config.variant == "protected"
        chains = ChainRunner(env, f"ap1-{ballot.round}", gate=node.wake)
        grab = Permission.exclusive_writer(int(env.pid), range(env.n_processes))
        probe = PmpSlot(min_prop=ballot, acc_prop=None, value=BOTTOM)
        # A recovering node publishes its ballot under a reserved boot key:
        # its own value slot may hold the previous incarnation's committed
        # value and must stay intact and adoptable (see PmpNode._prepare_phase).
        if self.recovering:
            probe_key = (REGION, "boot", int(env.pid))
        else:
            probe_key = (REGION, int(env.pid))

        if self.config.batch_chains:
            chain_ops = (WriteOp(REGION, probe_key, probe), SnapshotOp(REGION, (REGION,)))
            if protected:
                chain_ops = (ChangePermissionOp(REGION, grab),) + chain_ops

            def chain(mid):
                result = yield from env.batch(mid, chain_ops)
                if not result.ok:
                    return _ChainResult(ok=False)
                return _ChainResult(ok=True, view=result.value[-1])

        else:

            def chain(mid):
                if protected:
                    yield from env.change_permission(mid, REGION, grab)
                write = yield from env.write(mid, REGION, probe_key, probe)
                if not write.ok:
                    return _ChainResult(ok=False)
                snap = yield from env.snapshot(mid, REGION, (REGION,))
                return _ChainResult(ok=snap.ok, view=snap.value if snap.ok else None)

        yield from node.transport.broadcast(Prepare(ballot=ballot))
        yield from chains.launch(chain)

        def responded() -> int:
            return len(node.promises.get(ballot, {})) + len(chains.results)

        yield from wait_until(
            env,
            node.wake,
            lambda: responded() >= majority or ballot in node.nacked or node.decided,
            timeout=self.config.round_timeout,
        )
        if node.decided or ballot in node.nacked or responded() < majority:
            return _RESTART
        if any(not r.ok for r in chains.results.values()):
            return _RESTART

        best: Optional[Tuple[Ballot, Any]] = None
        for result in chains.results.values():
            for key, slot in (result.view or {}).items():
                if key == probe_key or not isinstance(slot, PmpSlot):
                    continue
                node.highest_seen = max(node.highest_seen, slot.min_prop)
                if slot.min_prop > ballot:
                    return _RESTART
                if slot.acc_prop is not None and not is_bottom(slot.value):
                    if best is None or slot.acc_prop > best[0]:
                        best = (slot.acc_prop, slot.value)
        for promise in node.promises.get(ballot, {}).values():
            if promise.accepted_ballot is not None:
                if best is None or promise.accepted_ballot > best[0]:
                    best = (promise.accepted_ballot, promise.accepted_value)
        return self.value if best is None else best[1]

    # ------------------------------------------------------------------
    def _phase2(self, ballot: Ballot, proposal: Any, majority: int) -> Generator:
        env = self.env
        node = self.node
        protected = self.config.variant == "protected"
        chains = ChainRunner(env, f"ap2-{ballot.round}", gate=node.wake)
        slot_value = PmpSlot(min_prop=ballot, acc_prop=ballot, value=proposal)

        def outpaced(view) -> bool:
            # Disk variant's confirming read: restart if a higher ballot
            # has been published at this memory.
            for key, other in view.items():
                if key == (REGION, int(env.pid)) or not isinstance(other, PmpSlot):
                    continue
                if other.min_prop > ballot:
                    return True
            return False

        if not protected and self.config.batch_chains:
            # Fuse the write with its confirming snapshot: one chain, two
            # delays — and the confirmation is strictly stronger, since no
            # competing write can land between the two fused ops.
            chain_ops = (
                WriteOp(REGION, (REGION, int(env.pid)), slot_value),
                SnapshotOp(REGION, (REGION,)),
            )

            def chain(mid):
                result = yield from env.batch(mid, chain_ops)
                if not result.ok:
                    return _ChainResult(ok=False)
                return _ChainResult(ok=not outpaced(result.value[1]))

        else:

            def chain(mid):
                write = yield from env.write(
                    mid, REGION, (REGION, int(env.pid)), slot_value
                )
                if not write.ok:
                    return _ChainResult(ok=False)
                if protected:
                    # Permission exclusivity certifies the write (Lemma D.3).
                    return _ChainResult(ok=True)
                snap = yield from env.snapshot(mid, REGION, (REGION,))
                if not snap.ok:
                    return _ChainResult(ok=False)
                return _ChainResult(ok=not outpaced(snap.value))

        yield from node.transport.broadcast(Accept(ballot=ballot, value=proposal))
        yield from chains.launch(chain)

        def successes() -> int:
            chain_ok = sum(1 for r in chains.results.values() if r.ok)
            return len(node.accepts.get(ballot, ())) + chain_ok

        def failed() -> bool:
            return ballot in node.nacked or any(
                not r.ok for r in chains.results.values()
            )

        yield from wait_until(
            env,
            node.wake,
            lambda: successes() >= majority or failed() or node.decided,
            timeout=self.config.round_timeout,
        )
        if node.decided:
            return False
        return successes() >= majority and not failed()


_RESTART = object()


class AlignedPaxos(ConsensusProtocol):
    """Aligned Paxos as a pluggable protocol."""

    name = "aligned-paxos"

    def __init__(self, config: Optional[AlignedConfig] = None) -> None:
        self.config = config or AlignedConfig()

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        return aligned_regions(
            n_processes, self.config.variant, self.config.initial_leader
        )

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        node = AlignedNode(env, value, self.config)
        return [("ap-pump", node.pump()), ("ap-proposer", node.proposer())]

    def recovery_tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        """Restart after a crash: same rules as Protected Memory Paxos.

        Never skip phase 1 (the first-attempt skip is only sound at boot),
        probe a reserved boot key so the previous incarnation's slot stays
        intact and adoptable, and propose regardless of Ω — a restarted
        node may have missed the one-shot decision broadcast, and the
        combined memory/process prepare is its sound way back.
        """
        node = AlignedNode(env, value, self.config)
        node.first_attempt = False
        node.recovering = True
        return [("ap-pump", node.pump()), ("ap-proposer", node.proposer())]
