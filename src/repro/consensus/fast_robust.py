"""Fast & Robust (paper Section 4.3, Theorem 4.9, Figure 6).

The headline Byzantine algorithm: run Cheap Quorum; whatever it produces —
a decision or an abort value with certificates — becomes the process's
input to Preferential Paxos, with Definition 3 priorities making any value
decided in Cheap Quorum the *only* value Preferential Paxos can decide
(the Composition Lemma 4.8).  Common case: the leader decides in two
delays with one signature; faults or asynchrony fall back to the
``n >= 2f_P + 1`` slow path.

Every process joins Preferential Paxos even if it decided in Cheap Quorum
(its vote is needed for the setup quorum); the metrics ledger checks that
its second decision matches the first, which is exactly Lemma 4.8's claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple

from repro.broadcast.nonequivocating import neb_regions
from repro.consensus.base import ConsensusProtocol
from repro.consensus.cheap_quorum import (
    CheapQuorum,
    CheapQuorumConfig,
    CqOutcome,
    cq_regions,
)
from repro.consensus.messages import SetupValue
from repro.consensus.preferential_paxos import (
    PRIORITY_BARE,
    PRIORITY_LEADER_SIGNED,
    PRIORITY_PROOF,
    PreferentialPaxosConfig,
    PreferentialPaxosNode,
)
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.trusted.transport import TrustedTransport
from repro.trusted.validators import PaxosConformance


@dataclass
class FastRobustConfig:
    cheap_quorum: CheapQuorumConfig = field(default_factory=CheapQuorumConfig)
    preferential: PreferentialPaxosConfig = field(
        default_factory=PreferentialPaxosConfig
    )
    #: ablation switch: skip Cheap Quorum entirely and run the backup path
    #: alone (every process enters Preferential Paxos with its bare input)
    enable_fast_path: bool = True

    def __post_init__(self) -> None:
        # The Cheap Quorum leader defines Preferential Paxos' M class.
        self.preferential.leader = self.cheap_quorum.leader


def setup_value_from(outcome: CqOutcome) -> SetupValue:
    """Map a Cheap Quorum outcome to its Definition-3 setup value."""
    if outcome.proof is not None:
        return SetupValue(
            value=outcome.value, priority=PRIORITY_PROOF, payload=outcome.proof
        )
    if outcome.leader_signed is not None:
        return SetupValue(
            value=outcome.value,
            priority=PRIORITY_LEADER_SIGNED,
            payload=outcome.leader_signed,
        )
    return SetupValue(value=outcome.value, priority=PRIORITY_BARE)


class FastRobust(ConsensusProtocol):
    """The composed 2-deciding weak Byzantine agreement algorithm."""

    name = "fast-robust"

    def __init__(self, config: Optional[FastRobustConfig] = None) -> None:
        self.config = config or FastRobustConfig()

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        leader = self.config.cheap_quorum.leader
        return cq_regions(n_processes, leader) + neb_regions(range(n_processes))

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        return [("fast-robust", self.run_instance(env, value))]

    def run_instance(
        self,
        env: ProcessEnv,
        value: Any,
        cq_namespace: str = "cq",
        neb_namespace: str = "neb",
        instance: Any = None,
    ) -> Generator:
        """One full Fast & Robust agreement instance; returns the decision.

        Multi-shot callers (the Byzantine replicated log) run one instance
        per slot with distinct namespaces and instance tags; single-shot
        callers use the defaults.
        """
        if self.config.enable_fast_path:
            cheap = CheapQuorum(
                env, self.config.cheap_quorum, namespace=cq_namespace,
                instance=instance,
            )
            outcome = yield from cheap.run(value)
        else:
            outcome = CqOutcome(decided=False, panicked=True, value=value)

        # Phase 2: Preferential Paxos seeded with the Cheap Quorum outcome.
        quorum = env.n_processes // 2 + 1
        transport = TrustedTransport(
            env, validator=PaxosConformance(quorum), namespace=neb_namespace
        )
        node = PreferentialPaxosNode(
            env,
            transport,
            setup_value_from(outcome),
            self.config.preferential,
            instance=instance,
        )
        yield env.spawn(
            f"neb-daemon-{neb_namespace}", transport.neb.delivery_daemon(),
            daemon=True,
        )
        yield env.spawn(f"pp-pump-{neb_namespace}", node.pump(), daemon=True)
        decided = yield from node.run()
        return decided
