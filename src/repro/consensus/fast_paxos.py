"""Fast Paxos baseline (Lamport [38]): two delays, message passing only.

The paper cites Fast Paxos as the message-passing protocol that decides in
two delays in common executions while requiring ``n >= 2f_P + 1``.  We
implement the fast round with a fast quorum of *all n acceptors* (the
uncontended, failure-free common case the paper's delay metric measures)
and classic-Paxos recovery by the Ω leader otherwise:

* fast round: a proposer broadcasts its value (1 delay); each acceptor that
  has not yet accepted anything accepts it and broadcasts ``FastAccepted``
  (1 delay); any process observing all n fast-accepts for one value decides
  — 2 delays end to end.
* recovery: the coordinator runs classic prepare/accept with ballots above
  the fast round.  With a fast quorum of n, a value can only have been fast
  decided if *every* acceptor fast-accepted it, so any promise majority
  reports it unanimously; the coordinator must adopt a value that appears
  in every promise of its quorum, and is free otherwise.

Safety of the recovery rule: if v was fast-decided, all n acceptors
accepted v in the fast round, so every promise in any majority reports v
and the coordinator adopts v.  Classic rounds thereafter are plain Paxos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.base import (
    ConsensusProtocol,
    DirectTransport,
    Transport,
    wait_until,
)
from repro.consensus.messages import (
    Accept,
    Accepted,
    Decision,
    FastAccepted,
    FastPropose,
    Nack,
    Prepare,
    Promise,
)
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import ProcessId


@dataclass
class FastPaxosConfig:
    round_timeout: float = 20.0
    retry_backoff: float = 5.0
    leader_poll: float = 2.0
    #: fast-path wait before the coordinator starts recovery
    recovery_delay: float = 10.0


@dataclass
class _State:
    #: fast-round acceptance (at most one per acceptor)
    fast_accepted: Any = None
    has_fast_accepted: bool = False
    promised: Ballot = field(default_factory=Ballot.zero)
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Any = None


class FastPaxosNode:
    """One process's Fast Paxos endpoint."""

    def __init__(
        self,
        env: ProcessEnv,
        transport: Transport,
        value: Any,
        config: Optional[FastPaxosConfig] = None,
    ) -> None:
        self.env = env
        self.transport = transport
        self.value = value
        self.config = config or FastPaxosConfig()
        self.state = _State()
        self.fast_votes: Dict[Any, Set[ProcessId]] = {}
        self.promises: Dict[Ballot, Dict[ProcessId, Promise]] = {}
        self.accepts: Dict[Ballot, Set[ProcessId]] = {}
        self.nacked: Set[Ballot] = set()
        self.highest_seen = Ballot.zero()
        self.decided = False
        self.decided_value: Any = None
        self.wake = env.new_gate(f"fast-paxos-p{int(env.pid)+1}")

    # ------------------------------------------------------------------
    def pump(self) -> Generator:
        while True:
            received = yield from self.transport.recv(timeout=None)
            if received is None:
                continue
            sender, message = received
            yield from self._dispatch(ProcessId(sender), message)

    def _dispatch(self, sender: ProcessId, message: Any) -> Generator:
        if isinstance(message, FastPropose):
            yield from self._on_fast_propose(message)
        elif isinstance(message, FastAccepted):
            self._on_fast_accepted(sender, message)
        elif isinstance(message, Prepare):
            yield from self._on_prepare(sender, message)
        elif isinstance(message, Accept):
            yield from self._on_accept(sender, message)
        elif isinstance(message, Promise):
            self.promises.setdefault(message.ballot, {})[sender] = message
            self._kick()
        elif isinstance(message, Accepted):
            self.accepts.setdefault(message.ballot, set()).add(sender)
            self._kick()
        elif isinstance(message, Nack):
            self.nacked.add(message.ballot)
            self.highest_seen = max(self.highest_seen, message.promised)
            self._kick()
        elif isinstance(message, Decision):
            self._learn(message.value)

    def _kick(self) -> None:
        self.env.signal(self.wake)
        self.wake.clear()

    def _on_fast_propose(self, msg: FastPropose) -> Generator:
        state = self.state
        # Fast-round acceptance only while no classic ballot intervened.
        if state.has_fast_accepted or state.promised > Ballot.zero():
            return
        state.has_fast_accepted = True
        state.fast_accepted = msg.value
        # The fast round behaves like an accepted ballot just above zero so
        # recovery sees it in promises.
        state.accepted_ballot = Ballot(round=0, pid=0)
        state.accepted_value = msg.value
        yield from self.transport.broadcast(FastAccepted(value=msg.value))

    def _on_fast_accepted(self, sender: ProcessId, msg: FastAccepted) -> None:
        self.fast_votes.setdefault(msg.value, set()).add(sender)
        if len(self.fast_votes[msg.value]) >= self.env.n_processes:
            self._learn(msg.value)
        self._kick()

    def _on_prepare(self, sender: ProcessId, msg: Prepare) -> Generator:
        state = self.state
        self.highest_seen = max(self.highest_seen, msg.ballot)
        if msg.ballot > state.promised:
            state.promised = msg.ballot
            yield from self.transport.send(
                sender,
                Promise(
                    ballot=msg.ballot,
                    accepted_ballot=state.accepted_ballot,
                    accepted_value=state.accepted_value,
                ),
            )
        else:
            yield from self.transport.send(
                sender, Nack(ballot=msg.ballot, promised=state.promised)
            )

    def _on_accept(self, sender: ProcessId, msg: Accept) -> Generator:
        state = self.state
        if msg.ballot >= state.promised:
            state.promised = msg.ballot
            state.accepted_ballot = msg.ballot
            state.accepted_value = msg.value
            yield from self.transport.send(
                sender, Accepted(ballot=msg.ballot, value=msg.value)
            )
        else:
            yield from self.transport.send(
                sender, Nack(ballot=msg.ballot, promised=state.promised)
            )

    def _learn(self, value: Any) -> None:
        if not self.decided:
            self.decided = True
            self.decided_value = value
            self.env.decide(value)
        self._kick()

    # ------------------------------------------------------------------
    def proposer(self) -> Generator:
        """Fast round first; Ω-led classic recovery if it stalls."""
        env = self.env
        yield from self.transport.broadcast(FastPropose(value=self.value))
        yield from wait_until(
            env, self.wake, lambda: self.decided, timeout=self.config.recovery_delay
        )
        while not self.decided:
            if env.leader() != env.pid:
                yield env.gate_wait(self.wake, timeout=self.config.leader_poll)
                continue
            yield from self._recover()
            if not self.decided:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))

    def _recover(self) -> Generator:
        env = self.env
        quorum = env.n_processes // 2 + 1
        ballot = self.highest_seen.next_for(env.pid)
        self.highest_seen = ballot
        yield from self.transport.broadcast(Prepare(ballot=ballot))
        arrived = yield from wait_until(
            env,
            self.wake,
            lambda: len(self.promises.get(ballot, {})) >= quorum
            or ballot in self.nacked
            or self.decided,
            timeout=self.config.round_timeout,
        )
        if self.decided or not arrived or ballot in self.nacked:
            return
        proposal = self._recovery_value(ballot)
        yield from self.transport.broadcast(Accept(ballot=ballot, value=proposal))
        yield from wait_until(
            env,
            self.wake,
            lambda: len(self.accepts.get(ballot, ())) >= quorum
            or ballot in self.nacked
            or self.decided,
            timeout=self.config.round_timeout,
        )
        if self.decided or len(self.accepts.get(ballot, ())) < quorum:
            return
        yield from self.transport.broadcast(Decision(value=proposal))
        self._learn(proposal)

    def _recovery_value(self, ballot: Ballot) -> Any:
        """Classic rule over reported pairs; forced when a value may have
        been fast-decided (i.e. it appears in every promise of the quorum)."""
        promises = list(self.promises.get(ballot, {}).values())
        best: Optional[Tuple[Ballot, Any]] = None
        for promise in promises:
            if promise.accepted_ballot is None:
                continue
            if best is None or promise.accepted_ballot > best[0]:
                best = (promise.accepted_ballot, promise.accepted_value)
        return self.value if best is None else best[1]


class FastPaxos(ConsensusProtocol):
    """Fast Paxos over the plain network."""

    name = "fast-paxos"

    def __init__(self, config: Optional[FastPaxosConfig] = None) -> None:
        self.config = config or FastPaxosConfig()

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        return []

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        node = FastPaxosNode(env, DirectTransport(env, topic="fast-paxos"), value, self.config)
        return [("fp-pump", node.pump()), ("fp-proposer", node.proposer())]
