"""Robust Backup (paper Definition 2, Theorems 4.2/4.4).

``RobustBackup(A)`` is the crash-tolerant algorithm ``A`` with every send
and receive replaced by T-send/T-receive over non-equivocating broadcast.
With ``A`` = Paxos this yields weak Byzantine agreement with
``n >= 2f_P + 1`` processes and ``m >= 2f_M + 1`` memories — the paper's
"slow but always safe" half.

The substitution is literal here: :class:`~repro.consensus.paxos.PaxosNode`
is instantiated over a :class:`~repro.consensus.base.TrustedAdapter` instead
of a :class:`~repro.consensus.base.DirectTransport`, with the
:class:`~repro.trusted.validators.PaxosConformance` validator enforcing that
Byzantine senders can only emit messages a correct-but-crashy Paxos process
could send.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.broadcast.nonequivocating import neb_regions
from repro.consensus.base import ConsensusProtocol, TrustedAdapter
from repro.consensus.paxos import PaxosConfig, PaxosNode
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.trusted.transport import TrustedTransport
from repro.trusted.validators import PaxosConformance


class RobustBackup(ConsensusProtocol):
    """Robust Backup(Paxos) as a pluggable protocol."""

    name = "robust-backup"

    def __init__(self, config: Optional[PaxosConfig] = None) -> None:
        self.config = config or PaxosConfig(
            round_timeout=60.0, retry_backoff=10.0, leader_poll=3.0
        )

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        return neb_regions(range(n_processes))

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        quorum = self.config.quorum_for(env.n_processes)
        transport = TrustedTransport(env, validator=PaxosConformance(quorum))
        node = PaxosNode(env, TrustedAdapter(transport), value, config=self.config)
        return [
            ("neb-daemon", transport.neb.delivery_daemon()),
            ("rb-pump", node.pump()),
            ("rb-proposer", node.proposer()),
        ]
