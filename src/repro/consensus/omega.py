"""Ω failure-detector oracles.

The paper assumes the standard Ω leader oracle for liveness (Algorithm 7
line 5 and the termination proofs): eventually all correct processes trust
the same correct process forever.  Safety never depends on Ω, and the
tests exercise wrong/flapping leaders to confirm it.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

OmegaFn = Callable[[float], int]


def stable_leader(pid: int = 0) -> OmegaFn:
    """Ω that always reports *pid* (the common-case oracle)."""
    return lambda now: pid


def leader_schedule(schedule: Sequence[Tuple[float, int]]) -> OmegaFn:
    """Ω following a piecewise-constant schedule ``[(from_time, pid), ...]``.

    Entries must be sorted by time; before the first entry the first pid is
    reported.
    """
    entries: List[Tuple[float, int]] = sorted(schedule)
    if not entries:
        raise ValueError("schedule must not be empty")

    def omega(now: float) -> int:
        current = entries[0][1]
        for start, pid in entries:
            if now >= start:
                current = pid
            else:
                break
        return current

    return omega


def crash_aware_omega(kernel, preference: Sequence[int] = ()) -> OmegaFn:
    """Ω that reports the first non-crashed process (eventually accurate).

    This models the real failure detector: it reacts to crashes instantly
    (the simulator knows ground truth), which is a *stronger* oracle than
    real Ω — acceptable because the paper's algorithms only rely on
    eventual accuracy, and tests that need pre-GST inaccuracy use
    :func:`leader_schedule` instead.
    """
    order = list(preference) or list(range(kernel.config.n_processes))

    def omega(now: float) -> int:
        for pid in order:
            if pid not in kernel.crashed_processes:
                return pid
        return order[0]

    return omega
