"""The paper's consensus algorithms and the baselines they are compared to.

================================  =========================================
module                            algorithm
================================  =========================================
``paxos``                         classic message-passing Paxos (baseline)
``fast_paxos``                    Fast Paxos fast-round baseline
``disk_paxos``                    Disk Paxos (Gafni & Lamport) baseline
``protected_memory_paxos``        Algorithm 7 (crash, 2-deciding, n >= f+1)
``aligned_paxos``                 Algorithms 9-15 (combined-majority crash)
``cheap_quorum``                  Algorithms 4-5 (Byzantine fast path)
``preferential_paxos``            Algorithm 8 (priority-respecting WBA)
``robust_backup``                 Definition 2 (Clement et al. translation)
``fast_robust``                   Section 4.3 composition (Theorem 4.9)
================================  =========================================
"""

from repro.consensus.ballots import Ballot
from repro.consensus.base import ConsensusProtocol, ProposerOutcome
from repro.consensus.omega import crash_aware_omega, leader_schedule, stable_leader
from repro.consensus.probes import (
    probe_write_grant,
    publish_watermark,
    read_quorum_chain,
    read_quorum_watermarks,
    watermark_key,
)

__all__ = [
    "Ballot",
    "ConsensusProtocol",
    "ProposerOutcome",
    "crash_aware_omega",
    "leader_schedule",
    "stable_leader",
    "probe_write_grant",
    "publish_watermark",
    "read_quorum_chain",
    "read_quorum_watermarks",
    "watermark_key",
]
