"""Protected Memory Paxos (paper Section 5.1, Algorithm 7).

Crash-fault consensus with ``n >= f_P + 1`` processes and ``m >= 2f_M + 1``
memories that decides in **two delays** in the common case.  The trick over
Disk Paxos: at any time exactly one process holds exclusive write permission
per memory, so a leader's successful phase-2 write *simultaneously* stores
its proposal and proves no newer leader exists (a newer leader would have
grabbed the permission, making the write nak) — eliminating Disk Paxos'
confirming read and its two delays.

The initial leader ``p1`` starts with the permissions already held and may
skip the preparation phase on its first attempt (Theorem D.5's
``firstAttempt`` flag), going straight to the single phase-2 write: two
delays.  Every later attempt — by p1 or anybody else — runs the full
prepare phase: grab permission, publish the proposal number, read all
slots (one snapshot per memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.consensus.ballots import Ballot
from repro.consensus.chains import ChainRunner
from repro.consensus.messages import Decision
from repro.consensus.base import ConsensusProtocol
from repro.consensus.probes import probe_write_grant
from repro.mem.operations import ChangePermissionOp, SnapshotOp, WriteOp
from repro.mem.permissions import Permission, exclusive_grab_policy
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.types import BOTTOM, ProcessId, is_bottom

REGION = "pmp"
TOPIC = "pmp"


@dataclass(frozen=True)
class PmpSlot:
    """One slot: ``(minProposal, acceptedProposal, value)``."""

    min_prop: Ballot
    acc_prop: Optional[Ballot]
    value: Any


@dataclass
class PmpConfig:
    leader_poll: float = 2.0
    retry_backoff: float = 4.0
    #: initial leader (holds write permission from the start)
    initial_leader: int = 0
    #: ablation switch: disable the Theorem D.5 first-attempt skip, forcing
    #: even the initial leader through the full prepare phase (the
    #: permission optimization is what this flag turns off)
    skip_first_attempt: bool = True
    #: doorbell batching: run the prepare's grab + probe + snapshot as ONE
    #: fused chain per memory (two delays instead of six) and the phase-2
    #: fan-out with single-completion semantics.  Pure mechanism change —
    #: the protocol's reads/writes and their per-memory order are
    #: identical; ``False`` restores the classic per-op paths exactly.
    batch_chains: bool = True


@dataclass
class _ChainResult:
    write_ok: bool
    view: Optional[dict]


def pmp_regions(n_processes: int, initial_leader: int = 0) -> List[RegionSpec]:
    """One region spanning each memory's whole PMP slot array.

    Initially the fixed leader holds exclusive write permission; the
    ``legalChange`` policy lets any process grab exclusivity for itself
    (crash model — nobody lies about identity).
    """
    processes = range(n_processes)
    return [
        RegionSpec(
            region_id=REGION,
            prefix=(REGION,),
            initial_permission=Permission.exclusive_writer(initial_leader, processes),
            legal_change=exclusive_grab_policy(processes),
        )
    ]


class PmpNode:
    """One process's Protected Memory Paxos endpoint."""

    def __init__(self, env: ProcessEnv, value: Any, config: Optional[PmpConfig] = None):
        self.env = env
        self.value = value
        self.config = config or PmpConfig()
        self.highest_seen = Ballot.zero()
        self.decided = False
        self.decided_value: Any = None
        self.first_attempt = True
        #: restarted-after-crash mode: propose regardless of Ω until decided.
        #: A recovered node may have missed the (one-shot) decision
        #: broadcast, and Ω will never point at it while a stable leader is
        #: alive — so its only sound path to the decided value is through
        #: the memories: a full prepare adopts whatever was committed.
        self.recovering = False

    # ------------------------------------------------------------------
    def listener(self) -> Generator:
        """Learn decisions broadcast by whoever decided."""
        env = self.env
        while not self.decided:
            envelope = yield from env.recv(topic=TOPIC)
            if envelope is not None and isinstance(envelope.payload, Decision):
                self._learn(envelope.payload.value)

    def _learn(self, value: Any) -> None:
        if not self.decided:
            self.decided = True
            self.decided_value = value
            self.env.decide(value)

    def grant_probe(self, timeout: Optional[float] = None) -> Generator:
        """One-sided fence check: is this process's exclusive write grant
        still installed at a majority of memories?

        This is what makes permission-fenced local reads sound (Lemma
        D.3 re-used for reads): an ACK majority at probe time ``t``
        proves no competing leader can have committed a value before
        ``t`` that this process has not adopted — any such commit would
        have required taking the grant at an intersecting memory, and
        grants return only through this process's own prepare.
        """
        held = yield from probe_write_grant(self.env, REGION, timeout=timeout)
        return held

    # ------------------------------------------------------------------
    def proposer(self) -> Generator:
        env = self.env
        while not self.decided:
            if not self.recovering and env.leader() != env.pid:
                yield env.sleep(self.config.leader_poll)
                continue
            yield from self._attempt()
            if not self.decided:
                yield env.sleep(self.config.retry_backoff * (1 + env.rng.random()))

    def _attempt(self) -> Generator:
        env = self.env
        majority = env.majority_of_memories()
        prop_nr = self.highest_seen.next_for(env.pid)
        self.highest_seen = prop_nr
        skip_prepare = (
            self.config.skip_first_attempt
            and int(env.pid) == self.config.initial_leader
            and self.first_attempt
        )
        self.first_attempt = False

        if skip_prepare:
            my_value = self.value
        else:
            prepared = yield from self._prepare_phase(prop_nr, majority)
            if prepared is None:
                return
            my_value = prepared

        # Phase 2: one write per memory, in parallel.  Success on a clean
        # ACK majority both stores the value and certifies leadership
        # (Lemma D.3) — no confirming read needed.
        slot_value = PmpSlot(min_prop=prop_nr, acc_prop=prop_nr, value=my_value)
        obs = env.obs
        phase = obs and obs.phase("pmp.phase2", ballot=str(prop_nr))
        if self.config.batch_chains and not env.strict_outstanding:
            # Single-completion fan-out: one queue entry per memory out,
            # ONE wake back when the verdict is in.  Under the strict
            # one-outstanding rule the long-lived proposer task cannot
            # fan out directly (stragglers from this attempt would still
            # be in flight at the next), so that mode keeps the
            # throwaway-task chains below.
            try:
                state = yield env.fanout_to_all(
                    lambda mid: WriteOp(REGION, (REGION, int(env.pid)), slot_value),
                    need=majority,
                )
            finally:
                if phase:
                    phase.finish()
            if state.naked > 0:
                return  # permission was taken: a newer leader exists; restart
        else:
            chains = ChainRunner(env, "pmp2")

            def phase2_chain(mid):
                result = yield from env.write(
                    mid, REGION, (REGION, int(env.pid)), slot_value
                )
                return _ChainResult(write_ok=result.ok, view=None)

            try:
                yield from chains.launch(phase2_chain)
                yield from chains.wait_for(majority)
            finally:
                if phase:
                    phase.finish()
            if any(not r.write_ok for r in chains.results.values()):
                return  # permission was taken: a newer leader exists; restart
        self._learn(my_value)
        yield from env.broadcast(Decision(value=my_value), topic=TOPIC, include_self=False)

    def _prepare_phase(self, prop_nr: Ballot, majority: int) -> Generator:
        """Grab permissions, publish prop_nr, read every slot.

        Returns the value to propose, or None to restart.

        The ballot-publishing probe normally lands on this process's own
        value slot (which is then excluded from adoption — it only holds
        the probe).  A *recovering* node must not do that: its own slot may
        hold its previous incarnation's committed value — possibly the only
        surviving copy — so recovery probes a reserved boot key instead and
        keeps its own slot adoptable.
        """
        env = self.env
        chains = ChainRunner(env, "pmp1")
        grab = Permission.exclusive_writer(int(env.pid), range(env.n_processes))
        probe_slot = PmpSlot(min_prop=prop_nr, acc_prop=None, value=BOTTOM)
        if self.recovering:
            probe_key = (REGION, "boot", int(env.pid))
        else:
            probe_key = (REGION, int(env.pid))

        if self.config.batch_chains:
            # Doorbell-batched takeover: grab + probe + snapshot as ONE
            # chain — two delays per memory instead of six.  The grab
            # policy ACKs any legitimate self-grab, so the chain aborts
            # exactly where the classic sequence would have failed.
            chain_ops = (
                ChangePermissionOp(REGION, grab),
                WriteOp(REGION, probe_key, probe_slot),
                SnapshotOp(REGION, (REGION,)),
            )

            def phase1_chain(mid):
                result = yield from env.batch(mid, chain_ops)
                if not result.ok:
                    return _ChainResult(write_ok=False, view=None)
                return _ChainResult(write_ok=True, view=result.value[2])

        else:

            def phase1_chain(mid):
                yield from env.change_permission(mid, REGION, grab)
                write = yield from env.write(mid, REGION, probe_key, probe_slot)
                if not write.ok:
                    return _ChainResult(write_ok=False, view=None)
                snap = yield from env.snapshot(mid, REGION, (REGION,))
                return _ChainResult(write_ok=True, view=snap.value if snap.ok else None)

        obs = env.obs
        phase = obs and obs.phase("pmp.prepare", ballot=str(prop_nr))
        try:
            yield from chains.launch(phase1_chain)
            yield from chains.wait_for(majority)
        finally:
            if phase:
                phase.finish()
        completed = list(chains.results.values())
        if any(not r.write_ok for r in completed):
            return None
        best: Optional[Tuple[Ballot, Any]] = None
        for result in completed:
            if result.view is None:
                return None
            for key, slot in result.view.items():
                if not isinstance(slot, PmpSlot) or key == probe_key:
                    continue
                self.highest_seen = max(self.highest_seen, slot.min_prop)
                if slot.min_prop > prop_nr:
                    return None
                if slot.acc_prop is not None and not is_bottom(slot.value):
                    if best is None or slot.acc_prop > best[0]:
                        best = (slot.acc_prop, slot.value)
        return self.value if best is None else best[1]


class ProtectedMemoryPaxos(ConsensusProtocol):
    """Algorithm 7 as a pluggable protocol."""

    name = "protected-memory-paxos"

    def __init__(self, config: Optional[PmpConfig] = None) -> None:
        self.config = config or PmpConfig()

    def regions(self, n_processes: int, n_memories: int) -> List[RegionSpec]:
        return pmp_regions(n_processes, self.config.initial_leader)

    def tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        node = PmpNode(env, value, self.config)
        return [("pmp-listener", node.listener()), ("pmp-proposer", node.proposer())]

    def recovery_tasks(self, env: ProcessEnv, value: Any) -> List[Tuple[str, Generator]]:
        """Restart after a crash: never skip the prepare phase.

        The Theorem D.5 first-attempt skip is sound only when the leader
        *knows* nothing was committed before its write — true at boot,
        false after a crash: the previous incarnation (or another leader
        whose permission grab the restarted process has forgotten) may have
        committed a value this process must adopt, so the first attempt
        must run the full takeover read.  The node also proposes regardless
        of Ω (``recovering``): a restarted follower missed the one-shot
        decision broadcast, and the takeover read is its only sound way to
        learn the committed value.
        """
        node = PmpNode(env, value, self.config)
        node.first_attempt = False
        node.recovering = True
        return [("pmp-listener", node.listener()), ("pmp-proposer", node.proposer())]


# ---------------------------------------------------------------------------
# model-checking oracle hooks (see repro.check.scenarios)
# ---------------------------------------------------------------------------
def accepted_view(kernel) -> dict:
    """Every accepted PMP slot currently stored across all memories.

    Keyed ``(mid, register_key)``; probe slots (``acc_prop is None``) and
    bottom placeholders are excluded.  Registers wiped by a memory
    recovery simply disappear from the view — the oracle judges what the
    surviving replicated state says.
    """
    view = {}
    for mid, memory in enumerate(kernel.memories):
        for key, slot in memory.registers.items():
            if (
                isinstance(slot, PmpSlot)
                and slot.acc_prop is not None
                and not is_bottom(slot.value)
            ):
                view[(mid, key)] = slot
    return view


def chosen_value(kernel):
    """The value carried by the maximum accepted proposal, or ``None``.

    PMP's chosen value is the one a takeover read adopts: the value of the
    highest ``acc_prop`` across all slots.  Minority slots may hold stale
    accepted values from lower, superseded proposals — those are *not*
    chosen and may legitimately disagree.  A decision oracle therefore
    checks the decided value against this maximum, never against every
    accepted slot.
    """
    best = None
    for slot in accepted_view(kernel).values():
        if best is None or slot.acc_prop > best.acc_prop:
            best = slot
    return None if best is None else best.value
