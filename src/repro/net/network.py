"""Inbox management and receive matching.

The :class:`Network` owns per-process inboxes and the set of parked
``recv`` waiters.  The kernel calls :meth:`deliver` when a message's flight
time elapses; if a parked waiter matches, the kernel is told which task to
wake, otherwise the envelope queues in the inbox for a later ``recv``.

Duplicate-delivery protection (link integrity) is enforced with a delivered
message-id set; the kernel never schedules the same envelope twice, so this
guards against future transport extensions rather than current behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from repro.net.messages import Envelope
from repro.types import ProcessId

MatchFn = Callable[[Envelope], bool]


class RecvWaiter:
    """A task parked in ``recv`` until a matching envelope arrives.

    The kernel identifies the parked task by the ``task`` reference (plus
    its suspension ``token``) and resumes it directly — no per-park wake
    closure.  ``wake`` remains for externally built waiters (tests, custom
    transports): when ``task`` is None the kernel falls back to calling it.

    One waiter is allocated per parked receive, so this is a hand-written
    ``__slots__`` class.
    """

    __slots__ = ("pid", "token", "topic", "match", "wake", "task")

    def __init__(
        self,
        pid: ProcessId,
        token: int,
        topic: Optional[str] = None,
        match: Optional[MatchFn] = None,
        wake: Optional[Callable[[Envelope], None]] = None,
        task: Any = None,
    ) -> None:
        self.pid = pid
        self.token = token
        self.topic = topic
        self.match = match
        self.wake = wake
        self.task = task

    def accepts(self, env: Envelope) -> bool:
        if self.topic is not None and env.topic != self.topic:
            return False
        if self.match is not None and not self.match(env):
            return False
        return True


class Network:
    """Per-process inboxes plus parked receivers.

    The network also carries the failure plane's link state, read on the
    kernel's delivery/send paths and mutated by the failure controller:

    * ``blocked`` — ordered ``(src, dst)`` pairs severed by the current
      partition; delivery across a blocked pair silently drops (messages
      already in flight when the partition lands are lost too);
    * ``link_faults`` — per-directed-link chaos filters (delay inflation,
      probabilistic drop/duplication), applied on the send path.

    Both start empty, so the fault-free hot path pays one truthiness check.
    """

    def __init__(self, n_processes: int) -> None:
        self.inboxes: Dict[ProcessId, Deque[Envelope]] = {
            ProcessId(p): deque() for p in range(n_processes)
        }
        self.waiters: Dict[ProcessId, List[RecvWaiter]] = {
            ProcessId(p): [] for p in range(n_processes)
        }
        self._delivered_ids: Set[int] = set()
        self.dropped: int = 0
        #: (src, dst) pairs currently severed by a partition
        self.blocked: Set[tuple] = set()
        #: (src, dst) -> chaos filter (see repro.sim.faults.LinkFault)
        self.link_faults: Dict[tuple, Any] = {}
        self.partition_dropped: int = 0
        self.chaos_dropped: int = 0
        #: envelopes handed in from outside this kernel (parallel fabric)
        self.injected: int = 0

    # ------------------------------------------------------------------
    # delivery path (called by the kernel at arrival time)
    # ------------------------------------------------------------------
    def deliver(self, env: Envelope) -> Optional[RecvWaiter]:
        """Record *env* as delivered; return a waiter to wake, if any.

        When a waiter matches, the envelope is handed to it directly and
        never enters the inbox (exactly-once consumption).
        """
        if env.msg_id in self._delivered_ids:
            self.dropped += 1
            return None
        self._delivered_ids.add(env.msg_id)
        waiters = self.waiters[env.dst]
        if waiters:
            topic = env.topic
            for index, waiter in enumerate(waiters):
                if waiter.topic is not None and waiter.topic != topic:
                    continue
                if waiter.match is not None and not waiter.match(env):
                    continue
                del waiters[index]
                return waiter
        self.inboxes[env.dst].append(env)
        return None

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def try_consume(
        self, pid: ProcessId, topic: Optional[str], match: Optional[MatchFn]
    ) -> Optional[Envelope]:
        """Pop the first queued envelope matching (*topic*, *match*)."""
        inbox = self.inboxes[pid]
        if not inbox:
            return None
        # Fast path: the common consumer pattern is "oldest message on my
        # topic" — check the head before paying a scan + remove-by-index.
        head = inbox[0]
        if (topic is None or head.topic == topic) and (match is None or match(head)):
            inbox.popleft()
            return head
        for index, env in enumerate(inbox):
            if topic is not None and env.topic != topic:
                continue
            if match is not None and not match(env):
                continue
            del inbox[index]
            return env
        return None

    def park(self, waiter: RecvWaiter) -> None:
        """Park a receiver until :meth:`deliver` finds it a match."""
        self.waiters[waiter.pid].append(waiter)

    def unpark(self, pid: ProcessId, token: int, task: Any = None) -> None:
        """Remove a parked receiver (timeout fired or task died).

        *task* scopes the removal: suspension tokens are per-task counters
        (every task counts from 1), so removing by token alone would also
        evict an unrelated task's waiter that happens to share the number —
        its messages would then bypass the wake path and rot in the inbox.
        ``None`` keeps the legacy remove-by-token-only behaviour for
        externally built waiters that carry no task reference.
        """
        self.waiters[pid] = [
            w
            for w in self.waiters[pid]
            if w.token != token or (task is not None and w.task is not task)
        ]

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def set_partition(self, groups) -> None:
        """Install reachability *groups*: delivery between distinct groups
        drops until :meth:`heal_partition`.  Replaces any prior partition;
        processes named in no group keep full connectivity."""
        blocked = set()
        groups = [frozenset(int(p) for p in group) for group in groups]
        for i, side in enumerate(groups):
            for other in groups[i + 1:]:
                for p in side:
                    for q in other:
                        blocked.add((p, q))
                        blocked.add((q, p))
        self.blocked = blocked

    def heal_partition(self) -> None:
        """Dissolve the partition: full reachability restored."""
        self.blocked = set()

    def drop_process(self, pid: ProcessId) -> None:
        """Discard a crashed process's inbox and waiters."""
        self.inboxes[pid].clear()
        self.waiters[pid].clear()

    def pending_count(self, pid: ProcessId) -> int:
        return len(self.inboxes[pid])
