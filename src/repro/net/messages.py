"""Message envelopes.

Every message travels in an :class:`Envelope` stamped by the kernel with the
true sender — this is the link-integrity property from Section 3: a
Byzantine process may send arbitrary *payloads* but cannot make a message
appear to come from somebody else.  ``topic`` routes messages to the
protocol layer that should consume them (several protocol stacks share one
process's inbox, e.g. Cheap Quorum panic relays next to Paxos traffic).

Envelopes are allocated once per message on the kernel's hot path, so they
are a hand-written ``__slots__`` class: construction is a plain attribute
fill, and ``msg_id`` comes from a module-level integer counter.  Treat
instances as immutable once created.
"""

from __future__ import annotations

from typing import Any

from repro.types import ProcessId

_next_msg_id = 0


class Envelope:
    """One message in flight or delivered."""

    __slots__ = ("src", "dst", "topic", "payload", "sent_at", "msg_id", "ctx")

    def __init__(
        self,
        src: ProcessId,
        dst: ProcessId,
        topic: str,
        payload: Any,
        sent_at: float,
        msg_id: int | None = None,
    ) -> None:
        global _next_msg_id
        self.src = src
        self.dst = dst
        self.topic = topic
        self.payload = payload
        self.sent_at = sent_at
        if msg_id is None:
            _next_msg_id += 1
            msg_id = _next_msg_id
        self.msg_id = msg_id
        #: causal trace context riding the message (a repro.obs Span opened
        #: by the send path, closed at delivery); None when obs is detached
        self.ctx: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<msg#{self.msg_id} p{int(self.src)+1}->p{int(self.dst)+1} "
            f"{self.topic}: {self.payload!r}>"
        )
