"""Message envelopes.

Every message travels in an :class:`Envelope` stamped by the kernel with the
true sender — this is the link-integrity property from Section 3: a
Byzantine process may send arbitrary *payloads* but cannot make a message
appear to come from somebody else.  ``topic`` routes messages to the
protocol layer that should consume them (several protocol stacks share one
process's inbox, e.g. Cheap Quorum panic relays next to Paxos traffic).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.types import ProcessId

_msg_ids = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """One message in flight or delivered."""

    src: ProcessId
    dst: ProcessId
    topic: str
    payload: Any
    sent_at: float
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<msg#{self.msg_id} p{int(self.src)+1}->p{int(self.dst)+1} "
            f"{self.topic}: {self.payload!r}>"
        )
