"""The message-passing half of the M&M model (paper Section 3).

Links provide *integrity* (a message is received at most once and only if it
was sent — receivers learn the true sender identity from the link, which a
Byzantine process cannot spoof) and *no-loss* (a message between correct
processes is eventually delivered).  Delivery timing is governed by the
kernel's latency model.
"""

from repro.net.messages import Envelope
from repro.net.network import Network, RecvWaiter

__all__ = ["Envelope", "Network", "RecvWaiter"]
