"""Non-equivocating broadcast over SWMR registers (Algorithm 2).

Every process ``p`` owns a matrix of SWMR slots: ``slot[p, k, q]`` is p's
record of q's k-th broadcast (writable only by p, readable by all).  To
broadcast its k-th message, p writes a signed unit into ``slot[p, k, p]``.
To deliver q's k-th message, p:

1. reads ``slot[q, k, q]``; retries later if empty or badly signed;
2. copies the unit into its own ``slot[p, k, q]`` (witnessing);
3. reads ``slot[i, k, q]`` for every i; if any holds a *different* unit
   validly signed by q with the same sequence number, q equivocated and the
   message is never delivered; otherwise p delivers.

Properties (proved in the paper, tested in ``tests/test_nonequiv_*``):

1. a correct broadcaster's message is eventually delivered by all correct
   processes;
2. no two correct processes deliver different messages for the same
   ``(q, k)``;
3. delivery implies the (correct) sender broadcast it.

Signature format: the unit signature covers ``("neb", k, digest(payload),
dst_tag)`` — binding the sequence number and the *whole* payload (for
T-send the payload embeds the sender's history), so a Byzantine witness
cannot plant an altered copy that passes the signature check and falsely
convict an honest broadcaster of equivocation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.crypto.signatures import Signed, canonical_bytes
from repro.registers.swmr import ReplicatedRegister, read_many, swmr_regions
from repro.sim.environment import ProcessEnv
from repro.types import ProcessId, is_bottom

NAMESPACE = "neb"


def neb_regions(all_processes, namespace: str = NAMESPACE) -> list:
    """The SWMR slot regions for non-equivocating broadcast.

    *namespace* isolates independent broadcast instances (e.g. one per
    replicated-log slot): units are signed over the namespace, so a unit
    from one instance can never validate in another (no cross-instance
    replay).
    """
    processes = list(all_processes)
    return swmr_regions(namespace, processes, processes)


def payload_digest(payload: Any) -> bytes:
    return hashlib.sha256(canonical_bytes(payload)).digest()


@dataclass(frozen=True)
class BroadcastUnit:
    """What gets written into a slot: sequence number, payload, signature."""

    k: int
    payload: Any
    sig: Signed
    namespace: str = NAMESPACE

    def signed_tuple(self) -> tuple:
        return (self.namespace, self.k, payload_digest(self.payload))


def make_unit(
    env: ProcessEnv, k: int, payload: Any, namespace: str = NAMESPACE
) -> BroadcastUnit:
    """Sign and wrap *payload* as the caller's k-th broadcast unit."""
    sig = env.sign((namespace, k, payload_digest(payload)))
    return BroadcastUnit(k=k, payload=payload, sig=sig, namespace=namespace)


def unit_valid(
    env: ProcessEnv,
    sender: ProcessId,
    unit: Any,
    k: int,
    namespace: str = NAMESPACE,
) -> bool:
    """Is *unit* a correctly signed k-th broadcast of *sender*?"""
    if not isinstance(unit, BroadcastUnit):
        return False
    if unit.k != k or unit.namespace != namespace:
        return False
    if not env.valid(sender, unit.sig):
        return False
    return unit.sig.payload == unit.signed_tuple()


@dataclass(frozen=True)
class Delivery:
    """One delivered broadcast: ``deliver(k, m, q)`` in the paper."""

    sender: ProcessId
    k: int
    payload: Any
    unit: BroadcastUnit


class NonEquivocatingBroadcast:
    """Per-process broadcast endpoint plus delivery daemon.

    Deliveries are appended to :attr:`delivered` and handed to the optional
    ``on_deliver`` callback; the :attr:`gate` opens whenever something new
    arrives, so consumer tasks can park on it.
    """

    def __init__(
        self,
        env: ProcessEnv,
        on_deliver: Optional[Callable[[Delivery], None]] = None,
        poll_min: float = 0.5,
        poll_max: float = 4.0,
        namespace: str = NAMESPACE,
    ) -> None:
        self.env = env
        self.on_deliver = on_deliver
        self.poll_min = poll_min
        self.poll_max = poll_max
        self.namespace = namespace
        self.next_k = 1
        #: next sequence number expected from each sender (paper's Last[q])
        self.last: Dict[ProcessId, int] = {q: 1 for q in env.processes}
        self.delivered: List[Delivery] = []
        self.gate = env.new_gate(f"neb-deliveries-p{int(env.pid)+1}")
        #: senders caught equivocating (never delivered from again)
        self.convicted: set = set()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def _slot(self, owner: ProcessId, k: int, src: ProcessId) -> ReplicatedRegister:
        ns = self.namespace
        return ReplicatedRegister(
            region=f"{ns}:{int(owner)}", key=(ns, int(owner), k, int(src))
        )

    # ------------------------------------------------------------------
    # broadcast (Algorithm 2, line 4)
    # ------------------------------------------------------------------
    def broadcast(self, payload: Any) -> Generator:
        """Broadcast *payload* as this process's next message."""
        k = self.next_k
        self.next_k += 1
        unit = make_unit(self.env, k, payload, namespace=self.namespace)
        yield from self._slot(self.env.pid, k, self.env.pid).write(self.env, unit)
        return k

    # ------------------------------------------------------------------
    # delivery (Algorithm 2, try_deliver)
    # ------------------------------------------------------------------
    def try_deliver(self, q: ProcessId) -> Generator:
        """One delivery attempt for sender *q*; returns True on delivery."""
        env = self.env
        if q in self.convicted:
            return False
        k = self.last[q]
        value = yield from self._slot(q, k, q).read(env)
        if is_bottom(value) or not unit_valid(env, q, value, k, self.namespace):
            return False  # nothing broadcast yet, or badly signed: retry later
        unit: BroadcastUnit = value
        yield from self._slot(env.pid, k, q).write(env, unit)
        witnesses = [self._slot(i, k, q) for i in env.processes]
        view = yield from read_many(env, witnesses)
        for other in view.values():
            if is_bottom(other) or other == unit:
                continue
            if unit_valid(env, q, other, k, self.namespace):
                # Another witness holds a *different* validly signed unit:
                # q equivocated.  Never deliver from q again.
                self.convicted.add(q)
                return False
        delivery = Delivery(sender=q, k=k, payload=unit.payload, unit=unit)
        self.last[q] = k + 1
        self.delivered.append(delivery)
        if self.on_deliver is not None:
            self.on_deliver(delivery)
        env.signal(self.gate)
        self.gate.clear()
        return True

    def delivery_daemon(self) -> Generator:
        """Poll every sender forever, with adaptive backoff when idle."""
        env = self.env
        backoff = self.poll_min
        while True:
            progressed = False
            for q in env.processes:
                if q == env.pid:
                    # Deliver own broadcasts directly (a correct process
                    # trivially does not equivocate against itself).
                    progressed |= yield from self._self_deliver()
                    continue
                progressed = (yield from self.try_deliver(q)) or progressed
            if progressed:
                backoff = self.poll_min
            else:
                backoff = min(backoff * 2, self.poll_max)
            yield env.sleep(backoff)

    def _self_deliver(self) -> Generator:
        env = self.env
        k = self.last[env.pid]
        if k >= self.next_k:
            return False
        value = yield from self._slot(env.pid, k, env.pid).read(env)
        if is_bottom(value) or not isinstance(value, BroadcastUnit):
            return False
        delivery = Delivery(sender=env.pid, k=k, payload=value.payload, unit=value)
        self.last[env.pid] = k + 1
        self.delivered.append(delivery)
        if self.on_deliver is not None:
            self.on_deliver(delivery)
        env.signal(self.gate)
        self.gate.clear()
        return True
