"""Non-equivocating broadcast (paper Section 4.1, Algorithm 2)."""

from repro.broadcast.nonequivocating import (
    Delivery,
    NonEquivocatingBroadcast,
    neb_regions,
)

__all__ = ["Delivery", "NonEquivocatingBroadcast", "neb_regions"]
