"""Protection domains and memory-region registration (Section 7 semantics).

A host CPU registers a memory region into a protection domain with an
access level; registration mints an *rkey* that remote peers must present.
Deregistering invalidates the rkey — this is how Section 7 says dynamic
permission *revocation* is implemented ("p can revoke permissions
dynamically by simply deregistering the memory region").

The facade maps each registration onto the abstract model:

* an :class:`RdmaMemoryRegion` corresponds to one model region on one
  memory;
* the access level corresponds to the region's permission triple;
* presenting a stale rkey is caught locally (``PermissionError_``), while a
  racing revocation that the requester could not know about surfaces as a
  ``nak`` from the memory — both behaviours exist in real RDMA.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.errors import PermissionError_
from repro.mem.permissions import Permission
from repro.types import MemoryId, ProcessId, RegionId, RegisterKey

_rkey_counter = itertools.count(0x1000)

ACCESS_LEVELS = ("read", "write", "read-write")


@dataclass(frozen=True)
class RdmaMemoryRegion:
    """One registration: a region of one memory, an access level, an rkey."""

    rkey: int
    mid: MemoryId
    region: RegionId
    prefix: RegisterKey
    access: str
    domain_id: int

    def allows_read(self) -> bool:
        return self.access in ("read", "read-write")

    def allows_write(self) -> bool:
        return self.access in ("write", "read-write")


class ProtectionDomain:
    """A host-side container associating registrations and queue pairs.

    One process owns each domain; queue pairs created in the domain may be
    handed to remote peers, who can then access any region registered in
    the same domain (with that registration's access level) — exactly the
    association rule Section 7 describes.
    """

    _ids = itertools.count(1)

    def __init__(self, owner: ProcessId) -> None:
        self.domain_id = next(ProtectionDomain._ids)
        self.owner = owner
        self.registrations: Dict[int, RdmaMemoryRegion] = {}
        self.queue_pair_peers: Set[ProcessId] = set()

    def register(
        self,
        mid: MemoryId,
        region: RegionId,
        prefix: RegisterKey,
        access: str = "read",
    ) -> RdmaMemoryRegion:
        """Register a memory region; returns the registration with its rkey."""
        if access not in ACCESS_LEVELS:
            raise PermissionError_(f"unknown access level {access!r}")
        registration = RdmaMemoryRegion(
            rkey=next(_rkey_counter),
            mid=MemoryId(mid),
            region=region,
            prefix=tuple(prefix),
            access=access,
            domain_id=self.domain_id,
        )
        self.registrations[registration.rkey] = registration
        return registration

    def deregister(self, rkey: int) -> None:
        """Invalidate a registration (Section 7's revocation primitive)."""
        if rkey not in self.registrations:
            raise PermissionError_(f"rkey {rkey:#x} is not registered")
        del self.registrations[rkey]

    def lookup(self, rkey: int) -> Optional[RdmaMemoryRegion]:
        return self.registrations.get(rkey)

    def associate_peer(self, peer: ProcessId) -> None:
        self.queue_pair_peers.add(ProcessId(peer))

    def peer_allowed(self, peer: ProcessId) -> bool:
        return ProcessId(peer) in self.queue_pair_peers
