"""RDMA-flavoured facade over the abstract M&M memory (paper Section 7).

The paper's model is deliberately abstract; Section 7 explains how real
RDMA realises it: memory regions are *registered* into *protection
domains*, *queue pairs* are associated with a domain, remote access uses
per-registration keys (rkeys), and revocation = deregistration.  This
package provides that vocabulary on top of :mod:`repro.mem`, so examples
and tests can be written against an API shaped like ibverbs while running
on the simulator.
"""

from repro.rdma.protection_domain import ProtectionDomain, RdmaMemoryRegion
from repro.rdma.queue_pair import QueuePair
from repro.rdma.verbs import RdmaNic, WrBatch

__all__ = ["ProtectionDomain", "QueuePair", "RdmaMemoryRegion", "RdmaNic", "WrBatch"]
