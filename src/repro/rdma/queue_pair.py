"""Queue pairs: the RDMA connection abstraction (Section 7).

A queue pair connects two processes within a protection domain.  Work
requests (reads/writes with an rkey, or two-sided sends) are posted on the
QP; the :class:`~repro.rdma.verbs.RdmaNic` turns them into simulator
effects.  Destroying a QP severs the connection: further posts fail
locally, mirroring how DARE/APUS-style systems revoke access by tearing
down queue-pair state (the paper cites this in Section 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import PermissionError_
from repro.types import ProcessId


@dataclass
class QueuePair:
    """One directed RDMA connection inside a protection domain."""

    qp_num: int
    local: ProcessId
    remote: ProcessId
    domain_id: int
    destroyed: bool = False

    _ids = itertools.count(0x100)

    @classmethod
    def create(cls, local: ProcessId, remote: ProcessId, domain_id: int) -> "QueuePair":
        return cls(
            qp_num=next(cls._ids),
            local=ProcessId(local),
            remote=ProcessId(remote),
            domain_id=domain_id,
        )

    def destroy(self) -> None:
        self.destroyed = True

    def ensure_usable(self) -> None:
        if self.destroyed:
            raise PermissionError_(f"queue pair {self.qp_num:#x} was destroyed")
