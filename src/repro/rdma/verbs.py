"""Verbs: posting one-sided reads/writes and two-sided sends.

:class:`RdmaNic` is the per-process entry point.  One-sided verbs take a
queue pair plus an rkey; the NIC validates what a real NIC validates
locally (QP liveness, rkey registration, access level, domain match) and
then issues the abstract memory operation — where the *memory-side*
permission triple gives the final word, returning ``nak`` exactly as the
hardware would complete with a protection error.

All verbs are sub-generators (``yield from``), costing the model's usual
delays: two per one-sided operation, one per message send.

Doorbell batching: :meth:`RdmaNic.begin_batch` opens a :class:`WrBatch` —
work requests are added with the same per-WR validation as the standalone
verbs, and :meth:`WrBatch.finish` rings the doorbell: the whole chain goes
out as ONE fused memory operation with a single completion (the ibverbs
idiom of posting a linked WR list with only the last entry signalled).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import PermissionError_
from repro.mem.operations import ReadOp, SnapshotOp, WriteOp
from repro.rdma.protection_domain import ProtectionDomain, RdmaMemoryRegion
from repro.rdma.queue_pair import QueuePair
from repro.sim.environment import ProcessEnv
from repro.types import OpResult, ProcessId, RegisterKey


class RdmaNic:
    """One process's RDMA NIC facade."""

    def __init__(self, env: ProcessEnv) -> None:
        self.env = env
        self.domains: list = []

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def alloc_pd(self) -> ProtectionDomain:
        """Allocate a protection domain owned by this process."""
        domain = ProtectionDomain(self.env.pid)
        self.domains.append(domain)
        return domain

    def create_qp(self, domain: ProtectionDomain, remote: ProcessId) -> QueuePair:
        """Create a queue pair to *remote* inside *domain*."""
        domain.associate_peer(remote)
        return QueuePair.create(self.env.pid, remote, domain.domain_id)

    # ------------------------------------------------------------------
    # one-sided verbs
    # ------------------------------------------------------------------
    def _check(self, qp: QueuePair, registration: Optional[RdmaMemoryRegion]) -> None:
        qp.ensure_usable()
        if registration is None:
            raise PermissionError_("rkey is not (or no longer) registered")
        if registration.domain_id != qp.domain_id:
            raise PermissionError_("rkey belongs to a different protection domain")

    def post_read(
        self,
        qp: QueuePair,
        registration: Optional[RdmaMemoryRegion],
        key: RegisterKey,
    ) -> Generator:
        """RDMA read of one register; returns :class:`OpResult`."""
        self._check(qp, registration)
        if not registration.allows_read():
            raise PermissionError_("registration does not allow remote read")
        result = yield from self.env.read(registration.mid, registration.region, key)
        return result

    def post_read_array(
        self,
        qp: QueuePair,
        registration: Optional[RdmaMemoryRegion],
        prefix: Optional[RegisterKey] = None,
    ) -> Generator:
        """RDMA read of a whole registered buffer (one verb, one op)."""
        self._check(qp, registration)
        if not registration.allows_read():
            raise PermissionError_("registration does not allow remote read")
        result = yield from self.env.snapshot(
            registration.mid, registration.region, prefix or registration.prefix
        )
        return result

    def post_write(
        self,
        qp: QueuePair,
        registration: Optional[RdmaMemoryRegion],
        key: RegisterKey,
        value: Any,
    ) -> Generator:
        """RDMA write of one register; returns :class:`OpResult`.

        A write posted with a *write-capable registration* may still come
        back ``nak`` if the memory-side permission changed concurrently —
        the race Protected Memory Paxos exploits.
        """
        self._check(qp, registration)
        if not registration.allows_write():
            raise PermissionError_("registration does not allow remote write")
        result = yield from self.env.write(
            registration.mid, registration.region, key, value
        )
        return result

    # ------------------------------------------------------------------
    # doorbell batching
    # ------------------------------------------------------------------
    def begin_batch(self, qp: QueuePair) -> "WrBatch":
        """Open a work-request chain on *qp* (``BeginBatch`` in DARE-style
        code).  Add WRs with ``post_read``/``post_write``/
        ``post_read_array``, then ``yield from batch.finish()`` to ring
        the doorbell and wait for the chain's single completion."""
        qp.ensure_usable()
        return WrBatch(self, qp)

    # ------------------------------------------------------------------
    # two-sided verbs
    # ------------------------------------------------------------------
    def post_send(self, qp: QueuePair, payload: Any, topic: str = "rdma-send") -> Generator:
        """Two-sided message send over the queue pair."""
        qp.ensure_usable()
        yield self.env.send(qp.remote, payload, topic=topic)

    def poll_recv(self, topic: str = "rdma-send", timeout: Optional[float] = None) -> Generator:
        """Receive one two-sided message; None on timeout."""
        envelope = yield from self.env.recv(topic=topic, timeout=timeout)
        return envelope


class WrBatch:
    """A work-request chain under construction (one doorbell, one memory).

    Each ``post_*`` performs the same local validation as the standalone
    verb — QP liveness, rkey registration, access level, domain match —
    *at add time*, mirroring how a NIC rejects a malformed WR when it is
    posted, not when the chain completes.  All WRs must target the same
    memory: a doorbell rings one queue, and the fused chain applies
    atomically at one memory's arrival instant.

    :meth:`finish` posts the chain as a single
    :class:`~repro.mem.operations.BatchOp` and returns the chain's one
    :class:`~repro.types.OpResult`: ACK with the tuple of per-WR values,
    or NAK with a :class:`~repro.types.ChainAbort` naming the WR index
    where the memory-side permission check failed (the QP error flush).
    """

    def __init__(self, nic: RdmaNic, qp: QueuePair) -> None:
        self.nic = nic
        self.qp = qp
        self._ops: list = []
        self._mid = None

    def __len__(self) -> int:
        return len(self._ops)

    def _admit(self, registration: Optional[RdmaMemoryRegion]) -> None:
        self.nic._check(self.qp, registration)
        if self._mid is None:
            self._mid = registration.mid
        elif registration.mid != self._mid:
            raise PermissionError_(
                "work-request chain spans memories: a doorbell rings one queue"
            )

    def post_read(
        self, registration: Optional[RdmaMemoryRegion], key: RegisterKey
    ) -> "WrBatch":
        """Append an RDMA read WR; returns self (chainable)."""
        self._admit(registration)
        if not registration.allows_read():
            raise PermissionError_("registration does not allow remote read")
        self._ops.append(ReadOp(registration.region, key))
        return self

    def post_write(
        self, registration: Optional[RdmaMemoryRegion], key: RegisterKey, value: Any
    ) -> "WrBatch":
        """Append an RDMA write WR; returns self (chainable)."""
        self._admit(registration)
        if not registration.allows_write():
            raise PermissionError_("registration does not allow remote write")
        self._ops.append(WriteOp(registration.region, key, value))
        return self

    def post_read_array(
        self,
        registration: Optional[RdmaMemoryRegion],
        prefix: Optional[RegisterKey] = None,
    ) -> "WrBatch":
        """Append a whole-buffer read WR; returns self (chainable)."""
        self._admit(registration)
        if not registration.allows_read():
            raise PermissionError_("registration does not allow remote read")
        self._ops.append(
            SnapshotOp(registration.region, prefix or registration.prefix)
        )
        return self

    def finish(self) -> Generator:
        """Ring the doorbell: post the chain, wait for its single
        completion, and return the chain's :class:`OpResult`."""
        if not self._ops:
            raise ValueError("FinishBatch on an empty work-request chain")
        self.qp.ensure_usable()  # destroyed between posts and doorbell
        result = yield from self.nic.env.batch(self._mid, self._ops)
        return result
