"""Core value types shared across the library.

The paper's model (Section 3) has two kinds of agents: *processes*
``p_1..p_n`` and *memories* ``mu_1..mu_m``.  We identify both with small
integers in separate namespaces.  Registers are addressed by structured keys
(tuples of hashable components) so that protocols can carve the register
space into named slots such as ``("neb", "slot", p, k, q)`` without any
global coordination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, NewType, Tuple

ProcessId = NewType("ProcessId", int)
MemoryId = NewType("MemoryId", int)

#: Structured register address, e.g. ``("pmp", "slot", 2)``.
RegisterKey = Tuple[Any, ...]

#: Region identifiers are short strings, e.g. ``"cq:leader"``.
RegionId = str


class _BottomType:
    """The register initial value (the paper's ``⊥``).

    A dedicated singleton rather than ``None`` so protocol payloads may
    legitimately carry ``None`` without colliding with "never written".
    """

    _instance = None

    def __new__(cls) -> "_BottomType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_BottomType, ())


#: Singleton register bottom value.
BOTTOM = _BottomType()


def is_bottom(value: Any) -> bool:
    """Return True if *value* is the register initial value ``⊥``."""
    return isinstance(value, _BottomType)


class OpStatus(enum.Enum):
    """Status of a memory operation, per Section 3 ("Accessing memories")."""

    ACK = "ack"
    NAK = "nak"

    def __bool__(self) -> bool:  # lets callers write ``if status:``
        return self is OpStatus.ACK


class OpResult:
    """Result of a memory operation.

    ``status`` is ACK or NAK.  For reads, ``value`` carries the register
    contents (``BOTTOM`` when never written); for snapshot reads it carries a
    dict mapping register key to value; writes and permission changes carry
    ``None``.

    One result is allocated per memory operation, so this is a hand-written
    immutable ``__slots__`` class rather than a frozen dataclass, and ``ok``
    is precomputed (quorum checks read it repeatedly).
    """

    __slots__ = ("status", "value", "ok")

    def __init__(self, status: OpStatus, value: Any = None) -> None:
        fill = object.__setattr__
        fill(self, "status", status)
        fill(self, "value", value)
        fill(self, "ok", status is OpStatus.ACK)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"OpResult is immutable (tried to set {name!r})")

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, OpResult):
            return NotImplemented
        return self.status is other.status and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpResult(status={self.status!r}, value={self.value!r})"


class ChainAbort:
    """NAK payload of a batched operation chain (see ``mem.operations.BatchOp``).

    ``failed_index`` is the position of the first sub-operation that NAKed
    — everything before it was applied, everything after it was aborted,
    matching RDMA work-request-chain error semantics (the QP enters an
    error state and flushes the remaining WRs).  ``partial`` carries the
    result values of the sub-operations that did complete, in order.
    """

    __slots__ = ("failed_index", "partial")

    def __init__(self, failed_index: int, partial: Tuple[Any, ...] = ()) -> None:
        fill = object.__setattr__
        fill(self, "failed_index", failed_index)
        fill(self, "partial", tuple(partial))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"ChainAbort is immutable (tried to set {name!r})")

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ChainAbort):
            return NotImplemented
        return (
            self.failed_index == other.failed_index and self.partial == other.partial
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChainAbort(failed_index={self.failed_index}, partial={self.partial!r})"


def process_name(pid: ProcessId) -> str:
    """Human-readable process name used in traces (``p1`` is process 0)."""
    return f"p{int(pid) + 1}"


def memory_name(mid: MemoryId) -> str:
    """Human-readable memory name used in traces (``mu1`` is memory 0)."""
    return f"mu{int(mid) + 1}"
