"""Core value types shared across the library.

The paper's model (Section 3) has two kinds of agents: *processes*
``p_1..p_n`` and *memories* ``mu_1..mu_m``.  We identify both with small
integers in separate namespaces.  Registers are addressed by structured keys
(tuples of hashable components) so that protocols can carve the register
space into named slots such as ``("neb", "slot", p, k, q)`` without any
global coordination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, NewType, Tuple

ProcessId = NewType("ProcessId", int)
MemoryId = NewType("MemoryId", int)

#: Structured register address, e.g. ``("pmp", "slot", 2)``.
RegisterKey = Tuple[Any, ...]

#: Region identifiers are short strings, e.g. ``"cq:leader"``.
RegionId = str


class _BottomType:
    """The register initial value (the paper's ``⊥``).

    A dedicated singleton rather than ``None`` so protocol payloads may
    legitimately carry ``None`` without colliding with "never written".
    """

    _instance = None

    def __new__(cls) -> "_BottomType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_BottomType, ())


#: Singleton register bottom value.
BOTTOM = _BottomType()


def is_bottom(value: Any) -> bool:
    """Return True if *value* is the register initial value ``⊥``."""
    return isinstance(value, _BottomType)


class OpStatus(enum.Enum):
    """Status of a memory operation, per Section 3 ("Accessing memories")."""

    ACK = "ack"
    NAK = "nak"

    def __bool__(self) -> bool:  # lets callers write ``if status:``
        return self is OpStatus.ACK


@dataclass(frozen=True)
class OpResult:
    """Result of a memory operation.

    ``status`` is ACK or NAK.  For reads, ``value`` carries the register
    contents (``BOTTOM`` when never written); for snapshot reads it carries a
    dict mapping register key to value; writes and permission changes carry
    ``None``.
    """

    status: OpStatus
    value: Any = None

    @property
    def ok(self) -> bool:
        return self.status is OpStatus.ACK


def process_name(pid: ProcessId) -> str:
    """Human-readable process name used in traces (``p1`` is process 0)."""
    return f"p{int(pid) + 1}"


def memory_name(mid: MemoryId) -> str:
    """Human-readable memory name used in traces (``mu1`` is memory 0)."""
    return f"mu{int(mid) + 1}"
