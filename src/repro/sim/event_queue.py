"""A deterministic time-ordered event queue.

Ties at equal virtual time are broken by insertion order (a monotonically
increasing sequence number), which makes whole simulations reproducible from
their seed: no dict-ordering or hash randomisation can leak into schedules.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

EventFn = Callable[[], None]


class EventQueue:
    """Min-heap of ``(time, seq, callback)`` entries."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventFn]] = []
        self._seq = itertools.count()
        self.pushed = 0
        self.popped = 0

    def push(self, time: float, fn: EventFn) -> None:
        """Schedule *fn* to run at virtual *time*."""
        if time != time or time < 0:  # NaN or negative
            raise ValueError(f"invalid event time {time!r}")
        heapq.heappush(self._heap, (time, next(self._seq), fn))
        self.pushed += 1

    def pop(self) -> Tuple[float, EventFn]:
        """Remove and return the earliest ``(time, callback)``."""
        time, _seq, fn = heapq.heappop(self._heap)
        self.popped += 1
        return time, fn

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
