"""A deterministic time-ordered event queue with typed, allocation-lean entries.

Ties at equal virtual time are broken by insertion order (a monotonically
increasing sequence number), which makes whole simulations reproducible from
their seed: no dict-ordering or hash randomisation can leak into schedules.

Entry format
------------

Heap entries are flat tuples ``(time, seq, kind, a, b, c)``.  ``kind`` is a
small integer from the ``EV_*`` namespace below and ``a``/``b``/``c`` are the
handler's operands (task, token, envelope, future, ...).  The kernel owns the
meaning of each kind; the queue never inspects them.  Compared with the old
``(time, seq, closure)`` format this removes one lambda + closure-cell
allocation per scheduled event — the dominant allocation on the hot path.

Alongside the heap there is a *ready lane*: a FIFO of entries that must run
at the **current** instant, before any further heap entry.  The kernel uses
it to resume tasks woken by an event that is being processed right now
(message delivery, future resolution, gate signal) without round-tripping
through the heap — the "double event" wake path the heap version paid.
Ready entries carry no time: they are defined to run at ``Kernel.now``.

Both lanes count into ``pushed``/``popped``/``len`` so queue statistics keep
describing every scheduled event, whichever lane carried it.

Both lanes also share one sequence counter: ready entries store it as a
trailing fifth element ``(kind, a, b, c, seq)``.  The default run loop
ignores it; the pluggable-scheduler path (see :mod:`repro.sim.schedule`
and :mod:`repro.check`) uses it as a stable per-entry identity — two runs
that execute the same prefix of events assign the same seq to the same
entry, which is what lets a model checker name "the entry the other
schedule ran first" across runs.  The *relative* order of seqs within each
lane is exactly the insertion order either way, so sharing the counter
does not perturb the default schedule.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Deque, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Event kinds.  The kernel maps each to a handler via a flat dispatch list,
# so the numbering must stay dense and start at zero.
# ---------------------------------------------------------------------------
EV_CALL = 0          #: a = zero-argument callable (failure plans, ad-hoc timers)
EV_RESUME = 1        #: a = task, b = resume value
EV_WAKE = 2          #: a = task, b = suspension token, c = resume value
EV_DELIVER = 3       #: a = envelope whose flight time elapsed
EV_ARRIVE = 4        #: a = task, b = OpFuture (request leg reached the memory)
EV_RESOLVE = 5       #: a = task, b = OpFuture, c = OpResult (response leg)
EV_RECV_TIMEOUT = 6  #: a = task, b = suspension token (parked recv timed out)
EV_OP_ARRIVE = 7     #: a = task, b = token, c = (mid, op) — fused OpEffect request leg
EV_OP_RESOLVE = 8    #: a = task, b = token, c = (mid, result) — fused OpEffect response
EV_FAULT = 9         #: a = typed fault event (see repro.sim.faults) — no closure
EV_FAN_ARRIVE = 10   #: a = task, b = FanoutState, c = (index, mid, op) — fan-out request leg
EV_FAN_RESOLVE = 11  #: a = task, b = FanoutState, c = (index, mid, result) — fan-out response

#: One scheduled event: ``(time, seq, kind, a, b, c)``.
Entry = Tuple[float, int, int, Any, Any, Any]


class EventQueue:
    """Min-heap of ``(time, seq, kind, a, b, c)`` entries plus a ready lane."""

    __slots__ = ("_heap", "_ready", "_seq", "pushed", "popped")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self._ready: Deque[Tuple[int, Any, Any, Any]] = deque()
        self._seq = 0
        self.pushed = 0
        self.popped = 0

    # ------------------------------------------------------------------
    # heap lane
    # ------------------------------------------------------------------
    def push(self, time: float, kind: int, a: Any = None, b: Any = None, c: Any = None) -> None:
        """Schedule event *kind* with operands ``(a, b, c)`` at virtual *time*."""
        if time != time or time < 0:  # NaN or negative
            raise ValueError(f"invalid event time {time!r}")
        self._seq += 1
        heappush(self._heap, (time, self._seq, kind, a, b, c))
        self.pushed += 1

    def pop(self) -> Tuple[float, int, Any, Any, Any]:
        """Remove and return the earliest ``(time, kind, a, b, c)``.

        Only valid when the ready lane is empty — the kernel drains ready
        entries first so same-instant wakes never overtake their cause.
        """
        time, _seq, kind, a, b, c = heappop(self._heap)
        self.popped += 1
        return time, kind, a, b, c

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled heap time, or None when the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def idle_before(self, horizon: float) -> bool:
        """True when nothing is runnable strictly before virtual *horizon*.

        The conservative parallel driver's barrier predicate: a worker
        kernel stops at a time barrier when its ready lane is drained
        (ready entries run *now*, which is always inside the current
        window) and the earliest heap entry sits at or past the horizon.
        """
        if self._ready:
            return False
        return not self._heap or self._heap[0][0] >= horizon

    def next_time(self) -> Optional[float]:
        """The next instant this queue has work at, or None when drained.

        Only meaningful between run windows (ready lane empty); a ready
        entry has no time of its own, so with one pending this returns
        ``-inf`` to mean "immediately, at the owner's current now".
        """
        if self._ready:
            return float("-inf")
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    # ready lane (same-instant fast path)
    # ------------------------------------------------------------------
    def push_ready(self, kind: int, a: Any = None, b: Any = None, c: Any = None) -> None:
        """Enqueue event *kind* to run at the current instant, before the heap."""
        self._seq += 1
        self._ready.append((kind, a, b, c, self._seq))
        self.pushed += 1

    def pop_ready(self) -> Tuple[int, Any, Any, Any]:
        """Remove and return the oldest ready ``(kind, a, b, c)``."""
        entry = self._ready.popleft()
        self.popped += 1
        return entry[:4]

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    # ------------------------------------------------------------------
    # frontier support (pluggable-scheduler path only — never on the
    # default hot loop)
    # ------------------------------------------------------------------
    def ready_frontier(self) -> List[Tuple[int, Any, Any, Any, int]]:
        """The ready lane's entries ``(kind, a, b, c, seq)`` in FIFO order."""
        return list(self._ready)

    def heap_frontier(self, time: float) -> List[Entry]:
        """All heap entries scheduled exactly at *time*, in seq order.

        A linear scan: the scheduled path trades per-step cost for the
        ability to fire any same-instant entry, and model-checked
        configurations are small by design.
        """
        return sorted(entry for entry in self._heap if entry[0] == time)

    def take_ready(self, index: int) -> Tuple[int, Any, Any, Any, int]:
        """Remove and return the ready entry at *index* (scheduled mode)."""
        entry = self._ready[index]
        del self._ready[index]
        return entry

    def remove_heap_entry(self, entry: Entry) -> None:
        """Remove one specific heap entry (scheduled mode); restores the
        heap invariant afterwards.  Seq uniqueness guarantees the tuple
        comparison never reaches the (possibly unorderable) payloads."""
        self._heap.remove(entry)
        heapify(self._heap)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap) + len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._ready) or bool(self._heap)
