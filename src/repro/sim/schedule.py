"""Pluggable scheduling: the kernel's frontier/scheduler contract.

By default the kernel's run loop is a closed hot path: ready lane first,
then the heap in ``(time, seq)`` order.  Setting ``kernel.scheduler`` to a
:class:`Scheduler` switches ``Kernel.run`` onto a slower, *open* loop that
at every step materialises the **frontier** — the set of entries that may
legally fire at the current instant (the whole ready lane, plus every heap
entry whose time equals ``now``) — and lets the scheduler pick which one
fires next.  That choice is the only nondeterminism the deterministic
kernel has, which is exactly what a model checker wants to enumerate
(see :mod:`repro.check`).

The contract is deliberately tiny:

* the kernel calls ``scheduler.pick(kernel, now, frontier)`` once per step;
* ``frontier`` is a list of :class:`FrontierEntry`; the scheduler returns
  either an **int** — the frontier index to fire — or an
  :class:`Injection`, whose fault events the kernel executes at this
  instant instead of firing an entry (a crash/recover/revocation choice
  point);
* :class:`FifoScheduler` always returns 0, which reproduces the default
  loop's order bit-for-bit (asserted by trace-hash tests): the frontier
  lists ready entries before same-instant heap entries, both in seq order.

Nothing here is imported on the default path; the hook costs one
``is None`` check per ``run()`` call.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.sim.event_queue import (
    EV_ARRIVE,
    EV_CALL,
    EV_DELIVER,
    EV_FAN_ARRIVE,
    EV_FAN_RESOLVE,
    EV_FAULT,
    EV_OP_ARRIVE,
    EV_OP_RESOLVE,
    EV_RECV_TIMEOUT,
    EV_RESOLVE,
    EV_RESUME,
    EV_WAKE,
)

#: human-readable names, indexed by event kind
EV_NAMES = (
    "call",
    "resume",
    "wake",
    "deliver",
    "arrive",
    "resolve",
    "recv_timeout",
    "op_arrive",
    "op_resolve",
    "fault",
    "fan_arrive",
    "fan_resolve",
)


class FrontierEntry:
    """One same-instant-ready queue entry, as shown to a scheduler.

    ``seq`` is the queue's global sequence number — stable across runs
    that execute the same prefix, so it doubles as the entry's identity in
    counterexample traces and sleep sets.  ``lane`` is ``"ready"`` or
    ``"heap"``; ``index``/``raw`` hold what the kernel needs to remove the
    entry from its lane when chosen.
    """

    __slots__ = ("lane", "index", "raw", "time", "seq", "kind", "a", "b", "c")

    def __init__(self, lane, index, raw, time, seq, kind, a, b, c) -> None:
        self.lane = lane
        self.index = index
        self.raw = raw
        self.time = time
        self.seq = seq
        self.kind = kind
        self.a = a
        self.b = b
        self.c = c

    def label(self) -> str:
        """A compact human-readable description (for traces and dumps)."""
        kind = self.kind
        name = EV_NAMES[kind] if 0 <= kind < len(EV_NAMES) else f"ev{kind}"
        target = _target_of(kind, self.a, self.b, self.c)
        return f"{name}({target})" if target else name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FrontierEntry #{self.seq} {self.lane} {self.label()}>"


def _target_of(kind: int, a: Any, b: Any, c: Any) -> str:
    """Best-effort operand summary; never raises on foreign payloads."""
    try:
        if kind in (EV_RESUME, EV_WAKE, EV_RESOLVE, EV_RECV_TIMEOUT,
                    EV_OP_RESOLVE, EV_ARRIVE):
            return getattr(a, "label", None) or repr(a)
        if kind == EV_DELIVER:
            return f"p{int(a.dst) + 1}:{a.topic}"
        if kind == EV_OP_ARRIVE:
            mid, op = c
            return f"{a.label}->mu{int(mid) + 1}:{type(op).__name__}"
        if kind == EV_FAN_ARRIVE:
            _index, mid, op = c
            return f"{a.label}->mu{int(mid) + 1}:{type(op).__name__}"
        if kind == EV_FAN_RESOLVE:
            return getattr(a, "label", None) or repr(a)
        if kind == EV_FAULT:
            return repr(a)
        if kind == EV_CALL:
            return getattr(a, "__name__", "fn")
    except Exception:  # pragma: no cover - labels must never break a run
        pass
    return ""


class Injection(object):
    """A scheduler decision that fires fault events instead of an entry.

    ``events`` is a sequence of ``(delay, fault_event)`` pairs: delay 0
    executes at the current instant through the kernel's failure
    controller; a positive delay is armed as a normal ``EV_FAULT`` heap
    entry (e.g. a crash now with a scripted recovery later).  ``name``
    identifies the injection in traces and replay plans.
    """

    __slots__ = ("name", "events")

    def __init__(self, name: str, events: Sequence[Tuple[float, Any]]) -> None:
        self.name = name
        self.events = tuple(events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Injection({self.name})"


class Scheduler:
    """Base class of pluggable schedulers (duck-typed; subclassing is
    optional — the kernel only calls :meth:`pick`)."""

    def pick(self, kernel, now: float, frontier: List[FrontierEntry]):
        """Return the frontier index to fire, or an :class:`Injection`."""
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """The default order, made explicit: always fire ``frontier[0]``.

    Exists to pin the equivalence contract: a run under ``FifoScheduler``
    must be bit-for-bit identical (trace hash, counters, final time) to a
    run with ``kernel.scheduler is None``.
    """

    def pick(self, kernel, now: float, frontier: List[FrontierEntry]) -> int:
        return 0


class RandomScheduler(Scheduler):
    """Fire a uniformly random frontier entry (seeded — reproducible).

    Not a model checker: a cheap schedule-fuzzer for tests and examples,
    and a sanity baseline for the explorer ("random search finds the bug
    in N runs; DFS+sleep-sets in M").  Uses its own RNG, not the kernel's,
    so fuzzing the schedule never perturbs protocol randomness.
    """

    def __init__(self, seed: int = 0) -> None:
        import random

        self.rng = random.Random(seed)

    def pick(self, kernel, now: float, frontier: List[FrontierEntry]) -> int:
        return self.rng.randrange(len(frontier))


def build_frontier(queue, now: float) -> List[FrontierEntry]:
    """Materialise the frontier at *now*: ready lane (FIFO), then
    same-instant heap entries (seq order) — index 0 is always what the
    default loop would fire next."""
    frontier: List[FrontierEntry] = []
    for index, entry in enumerate(queue.ready_frontier()):
        kind, a, b, c, seq = entry
        frontier.append(
            FrontierEntry("ready", index, entry, now, seq, kind, a, b, c)
        )
    for entry in queue.heap_frontier(now):
        time, seq, kind, a, b, c = entry
        frontier.append(
            FrontierEntry("heap", None, entry, time, seq, kind, a, b, c)
        )
    return frontier
