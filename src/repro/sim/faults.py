"""Typed fault events and the kernel's :class:`FailureController`.

The failure plane used to be frozen at t=0: crash timers installed as
lambda closures, and nothing ever came back.  This module makes failures
*events on a timeline*: every fault is a typed, ``__slots__`` value object
with an integer ``kind`` tag (mirroring the kernel's effect/event tagging),
scheduled through the same typed event queue (``EV_FAULT`` entries — no
per-fault closure), and executed by the :class:`FailureController` that
every kernel owns.

Fault kinds cover the full churn vocabulary of the paper's model:

* **crash AND recover** for processes (tasks are killed on crash and
  re-spawned through registered recovery hooks — protocol state is rebuilt
  from the memory regions, e.g. Protected Memory Paxos' takeover read) and
  for memories (revived with registers intact, or wiped to boot state);
* **partitions and heals** — link-level reachability sets enforced at
  delivery time in :mod:`repro.net.network`;
* **link chaos** — per-directed-link delay inflation, probabilistic drop
  and duplication, composable as latency filters on the send path;
* **permission faults** — scripted adversarial ``changePermission``
  attempts applied directly at a memory (the storm adversary sits next to
  the NIC), still subject to the region's ``legalChange`` policy: the
  memory remains the enforcement point.

Every executed fault is recorded in the metrics ledger's fault timeline,
so benchmarks can plot recovery latency against the exact churn schedule.
The user-facing DSL that builds these events lives in
:mod:`repro.failures.script`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.mem.operations import ChangePermissionOp
from repro.mem.permissions import Permission, adversarial_grab
from repro.types import MemoryId, ProcessId, memory_name, process_name

# ---------------------------------------------------------------------------
# Fault kinds.  The controller maps each to a handler via a flat dispatch
# list, so the numbering must stay dense and start at zero.
# ---------------------------------------------------------------------------
FK_CRASH_PROC = 0    #: kill a process (tasks die, inbox dropped)
FK_RECOVER_PROC = 1  #: revive a process (recovery hooks re-spawn its tasks)
FK_CRASH_MEM = 2     #: crash a memory (subsequent ops hang)
FK_RECOVER_MEM = 3   #: revive a memory (regions intact, or wiped)
FK_PARTITION = 4     #: install link-level reachability groups
FK_HEAL = 5          #: dissolve the current partition
FK_LINK_SET = 6      #: install/compose a per-link chaos filter
FK_LINK_CLEAR = 7    #: remove a per-link chaos filter
FK_PERM_CHANGE = 8   #: one adversarial changePermission attempt at a memory

#: number of fault kinds the controller dispatch table covers
_N_FK = 9


class CrashProcess:
    """Crash process *pid*: its tasks are killed and never resume."""

    __slots__ = ("pid",)
    kind = FK_CRASH_PROC

    def __init__(self, pid: int) -> None:
        self.pid = int(pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrashProcess({process_name(self.pid)})"


class RecoverProcess:
    """Recover process *pid*: recovery hooks re-spawn its protocol tasks."""

    __slots__ = ("pid",)
    kind = FK_RECOVER_PROC

    def __init__(self, pid: int) -> None:
        self.pid = int(pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecoverProcess({process_name(self.pid)})"


class CrashMemory:
    """Crash memory *mid*: operations on it hang from now on."""

    __slots__ = ("mid",)
    kind = FK_CRASH_MEM

    def __init__(self, mid: int) -> None:
        self.mid = int(mid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrashMemory({memory_name(self.mid)})"


class RecoverMemory:
    """Revive memory *mid*; ``wipe`` clears registers and resets permissions.

    A non-wiped revival models a memory that was merely unreachable — its
    regions and permission state survive.  A wiped revival models replacing
    the hardware: safe for agreement only while the set of *ever-wiped*
    memories stays within the protocol's memory-failure budget, because a
    wipe forgets accepted values exactly like a permanent crash does.
    """

    __slots__ = ("mid", "wipe")
    kind = FK_RECOVER_MEM

    def __init__(self, mid: int, wipe: bool = False) -> None:
        self.mid = int(mid)
        self.wipe = bool(wipe)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecoverMemory({memory_name(self.mid)}, wipe={self.wipe})"


class Partition:
    """Split processes into reachability groups; cross-group delivery drops.

    ``groups`` are disjoint sets of pids.  Processes not named in any group
    keep full connectivity (they can relay — that is the scripted
    topology's business).  Installing a partition *replaces* the previous
    one; :class:`Heal` dissolves it entirely.
    """

    __slots__ = ("groups",)
    kind = FK_PARTITION

    def __init__(self, groups: Iterable[Iterable[int]]) -> None:
        self.groups: Tuple[frozenset, ...] = tuple(
            frozenset(int(p) for p in group) for group in groups
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sides = " | ".join(
            "{" + ",".join(process_name(p) for p in sorted(g)) + "}"
            for g in self.groups
        )
        return f"Partition({sides})"


class Heal:
    """Dissolve the current partition: full reachability restored."""

    __slots__ = ()
    kind = FK_HEAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Heal()"


class LinkFault:
    """A composable chaos filter on one directed process link.

    ``delay_factor`` multiplies and ``extra_delay`` adds to the model's
    flight time; ``drop_prob`` loses the message; ``duplicate_prob``
    delivers a second, independent copy (a fresh envelope — the network's
    exactly-once msg-id guard deliberately does not apply, which is what
    makes duplication a real protocol-idempotence test) one extra delay
    unit after the original.  All randomness flows through the kernel's
    seeded RNG, so chaos schedules replay deterministically.
    """

    __slots__ = ("delay_factor", "extra_delay", "drop_prob", "duplicate_prob")

    def __init__(
        self,
        delay_factor: float = 1.0,
        extra_delay: float = 0.0,
        drop_prob: float = 0.0,
        duplicate_prob: float = 0.0,
    ) -> None:
        if delay_factor <= 0:
            raise ValueError("delay_factor must be positive")
        if extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        if not 0.0 <= drop_prob <= 1.0 or not 0.0 <= duplicate_prob <= 1.0:
            raise ValueError("probabilities must be within [0, 1]")
        self.delay_factor = delay_factor
        self.extra_delay = extra_delay
        self.drop_prob = drop_prob
        self.duplicate_prob = duplicate_prob

    def compose(self, other: "LinkFault") -> "LinkFault":
        """Stack *other* on top of this filter (factors multiply, extras
        add, loss events union)."""
        return LinkFault(
            delay_factor=self.delay_factor * other.delay_factor,
            extra_delay=self.extra_delay + other.extra_delay,
            drop_prob=1.0 - (1.0 - self.drop_prob) * (1.0 - other.drop_prob),
            duplicate_prob=1.0
            - (1.0 - self.duplicate_prob) * (1.0 - other.duplicate_prob),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkFault(x{self.delay_factor:g}+{self.extra_delay:g}, "
            f"drop={self.drop_prob:g}, dup={self.duplicate_prob:g})"
        )


class SetLinkFault:
    """Install (or compose onto) the chaos filter of link ``src -> dst``."""

    __slots__ = ("src", "dst", "fault")
    kind = FK_LINK_SET

    def __init__(self, src: int, dst: int, fault: LinkFault) -> None:
        self.src = int(src)
        self.dst = int(dst)
        self.fault = fault

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetLinkFault({process_name(self.src)}->{process_name(self.dst)}, {self.fault!r})"


class ClearLinkFault:
    """Expire one chaos filter on link ``src -> dst``.

    ``fault`` identifies which stacked filter expires (the matching
    :class:`SetLinkFault`'s object); the remaining filters on the link are
    recomposed, so overlapping timed faults expire independently.
    ``fault=None`` clears the whole link.
    """

    __slots__ = ("src", "dst", "fault")
    kind = FK_LINK_CLEAR

    def __init__(self, src: int, dst: int, fault: Optional[LinkFault] = None) -> None:
        self.src = int(src)
        self.dst = int(dst)
        self.fault = fault

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        which = "all" if self.fault is None else repr(self.fault)
        return f"ClearLinkFault({process_name(self.src)}->{process_name(self.dst)}, {which})"


class PermissionChange:
    """One adversarial ``changePermission`` attempt on behalf of *pid*.

    Applied directly at each targeted memory (no request/response legs —
    the adversary sits at the memory), and still filtered by the region's
    ``legalChange`` policy: an illegal request is a recorded NAK, exactly
    as for a Byzantine process.  ``permission=None`` requests the
    exclusive-writer grab shape for *pid* — the legal takeover move of
    Protected Memory Paxos, which makes a storm of these the paper's
    permission-churn adversary.
    """

    __slots__ = ("pid", "region", "mids", "permission")
    kind = FK_PERM_CHANGE

    def __init__(
        self,
        pid: int,
        region: str,
        mids: Optional[Tuple[int, ...]] = None,
        permission: Optional[Permission] = None,
    ) -> None:
        self.pid = int(pid)
        self.region = region
        self.mids = None if mids is None else tuple(int(m) for m in mids)
        self.permission = permission

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "all" if self.mids is None else self.mids
        return f"PermissionChange({process_name(self.pid)}, {self.region!r}, mids={where})"


#: Any of the event classes above.
FaultEvent = Any

#: Recovery/crash hook: called with the affected pid.
ProcessHook = Callable[[ProcessId], None]


class FailureController:
    """Executes fault events and owns the kernel's failure-plane state.

    The controller is deliberately thin at runtime: partition reachability
    and link filters live on the :class:`~repro.net.network.Network` (where
    the delivery path reads them), crash flags live on the kernel and the
    memories — the controller mutates them, dispatches per-kind through a
    flat handler table, notifies registered hooks, and writes the fault
    timeline into the metrics ledger.
    """

    def __init__(self, kernel) -> None:
        self._kernel = kernel
        self._recover_hooks: List[ProcessHook] = []
        self._crash_hooks: List[ProcessHook] = []
        #: per-link stack of active filters; the network's ``link_faults``
        #: holds their composition (what the send path reads), and expiring
        #: one filter recomposes the survivors
        self._link_stack: dict = {}
        # Flat dispatch table, indexed by fault kind; order must match the
        # FK_* numbering exactly.
        self._handlers = [
            self._fk_crash_proc,    # FK_CRASH_PROC
            self._fk_recover_proc,  # FK_RECOVER_PROC
            self._fk_crash_mem,     # FK_CRASH_MEM
            self._fk_recover_mem,   # FK_RECOVER_MEM
            self._fk_partition,     # FK_PARTITION
            self._fk_heal,          # FK_HEAL
            self._fk_link_set,      # FK_LINK_SET
            self._fk_link_clear,    # FK_LINK_CLEAR
            self._fk_perm_change,   # FK_PERM_CHANGE
        ]

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_crash(self, hook: ProcessHook) -> None:
        """Call *hook(pid)* whenever a process crashes."""
        self._crash_hooks.append(hook)

    def on_recover(self, hook: ProcessHook) -> None:
        """Call *hook(pid)* whenever a process recovers (re-spawn tasks here)."""
        self._recover_hooks.append(hook)

    def notify_crash(self, pid: ProcessId) -> None:
        for hook in self._crash_hooks:
            hook(pid)

    def notify_recover(self, pid: ProcessId) -> None:
        for hook in self._recover_hooks:
            hook(pid)

    # ------------------------------------------------------------------
    # execution (dispatch table: FK_* numbering)
    # ------------------------------------------------------------------
    def execute(self, event: FaultEvent) -> None:
        """Run one fault event at the current virtual instant."""
        kind = getattr(event, "kind", None)
        if kind.__class__ is not int or not 0 <= kind < _N_FK:
            raise TypeError(f"unknown fault event {event!r}")
        self._handlers[kind](event)

    def _fk_crash_proc(self, event: CrashProcess) -> None:
        self._kernel.crash_process(ProcessId(event.pid))

    def _fk_recover_proc(self, event: RecoverProcess) -> None:
        self._kernel.recover_process(ProcessId(event.pid))

    def _fk_crash_mem(self, event: CrashMemory) -> None:
        self._kernel.crash_memory(MemoryId(event.mid))

    def _fk_recover_mem(self, event: RecoverMemory) -> None:
        self._kernel.recover_memory(MemoryId(event.mid), wipe=event.wipe)

    def _fk_partition(self, event: Partition) -> None:
        kernel = self._kernel
        kernel.network.set_partition(event.groups)
        sides = "|".join(
            ",".join(process_name(p) for p in sorted(g)) for g in event.groups
        )
        kernel.metrics.record_fault(kernel.now, "partition", sides)
        kernel.tracer.record(kernel.now, "partition", sides)

    def _fk_heal(self, event: Heal) -> None:
        kernel = self._kernel
        kernel.network.heal_partition()
        kernel.metrics.record_fault(kernel.now, "heal", "net")
        kernel.tracer.record(kernel.now, "heal", "net")

    def _recompose_link(self, pair: tuple) -> None:
        """Rebuild the link's effective filter from its surviving stack."""
        stack = self._link_stack.get(pair)
        links = self._kernel.network.link_faults
        if not stack:
            self._link_stack.pop(pair, None)
            links.pop(pair, None)
            return
        composed = stack[0]
        for fault in stack[1:]:
            composed = composed.compose(fault)
        links[pair] = composed

    def _fk_link_set(self, event: SetLinkFault) -> None:
        kernel = self._kernel
        pair = (event.src, event.dst)
        self._link_stack.setdefault(pair, []).append(event.fault)
        self._recompose_link(pair)
        kernel.metrics.record_fault(
            kernel.now,
            "link_chaos",
            f"{process_name(event.src)}->{process_name(event.dst)}",
            fault=repr(kernel.network.link_faults[pair]),
        )

    def _fk_link_clear(self, event: ClearLinkFault) -> None:
        kernel = self._kernel
        pair = (event.src, event.dst)
        stack = self._link_stack.get(pair)
        if stack:
            if event.fault is None:
                stack.clear()
            elif event.fault in stack:
                stack.remove(event.fault)
        self._recompose_link(pair)
        kernel.metrics.record_fault(
            kernel.now,
            "link_clear",
            f"{process_name(event.src)}->{process_name(event.dst)}",
        )

    def _fk_perm_change(self, event: PermissionChange) -> None:
        kernel = self._kernel
        mids = (
            event.mids
            if event.mids is not None
            else tuple(range(kernel.config.n_memories))
        )
        permission = event.permission
        if permission is None:
            permission = adversarial_grab(event.pid, kernel.config.n_processes)
        op = ChangePermissionOp(event.region, permission)
        for mid in mids:
            memory = kernel.memories[mid]
            if memory.crashed:
                continue  # a dead memory enforces nothing and changes nothing
            result = memory.apply(ProcessId(event.pid), op)
            kernel.metrics.record_fault(
                kernel.now,
                "perm_change",
                memory_name(mid),
                pid=process_name(event.pid),
                region=event.region,
                ok=result.ok,
                permission=permission.summary(),
            )
