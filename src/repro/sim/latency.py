"""Latency models: who controls time.

The paper splits its analysis in two: safety must hold under full asynchrony
(arbitrary delays), while the delay-count results are stated for common-case
executions where the system is synchronous.  We mirror that split with
pluggable latency models:

* :class:`NominalLatency` — the common case.  A message takes exactly one
  unit, each memory-operation leg exactly one unit (so an operation takes
  two).  Measured decision times equal the paper's delay counts.
* :class:`JitteredSynchrony` — synchronous but noisy; used to check that
  protocols do not accidentally depend on exact timing.
* :class:`PartialSynchrony` — arbitrary (seeded-random, possibly huge)
  delays before GST, bounded after; the standard liveness assumption.
* :class:`AdversarialLatency` — a programmable adversary; tests use it to
  build specific bad schedules (e.g. the Theorem 6.1 construction delays one
  process's writes past another's entire execution).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.types import MemoryId, ProcessId


class LatencyModel:
    """Base latency model: nominal unit delays.

    A model whose delays are *fixed* may declare them through the three
    ``constant_*`` class attributes.  The kernel caches these at
    construction and, when set, skips the per-message/per-leg method and
    RNG dispatch entirely — the hot-path contract behind
    :class:`NominalLatency`.  Dynamic models must leave them ``None``
    (the default): the kernel then calls the ``*_delay`` methods.
    """

    #: fixed message delay, or None when ``message_delay`` must be called
    constant_message_delay: Optional[float] = None
    #: fixed request leg, or None when ``memory_request_delay`` must be called
    constant_request_delay: Optional[float] = None
    #: fixed response leg, or None when ``memory_response_delay`` must be called
    constant_response_delay: Optional[float] = None
    #: fixed per-WR issue cost within a batched chain, or None when
    #: ``memory_issue_delay`` must be called (see below)
    constant_issue_delay: Optional[float] = 0.0

    #: a *dynamic* model may still promise the FIFO queue-pair property
    #: (two ops posted to one memory in order arrive — and apply — in that
    #: order) by setting this True.  The kernel's ``fifo_memory_ops``
    #: check consults it when any constant is None; constant models get
    #: FIFO for free.  ``LatencyOverride`` (repro.obs.whatif) sets it when
    #: its per-component scaling is order-preserving, so counterfactual
    #: replays keep the same fused-read code paths as the baseline run.
    fifo_memory_ops: bool = False

    #: Virtual delay for traffic that crosses a *cell* (partition)
    #: boundary under the parallel driver (see :mod:`repro.sim.parallel`).
    #: It doubles as the conservative lookahead: cross-cell messages are
    #: delayed exactly this much, so a worker that has reached the global
    #: time floor ``t`` cannot be affected by any message sent after ``t``
    #: until ``t + cross_partition_delay`` — the barrier horizon.  It is a
    #: constant, never drawn from an RNG: per-cell RNG streams differ, and
    #: any dependence on them would make the merged schedule vary with the
    #: worker layout.  Two units = one nominal hop out of the source cell
    #: plus one into the destination; models may override (a WAN-tier
    #: model would raise it), but it must stay strictly positive.
    cross_partition_delay: float = 2.0

    def lookahead(self) -> float:
        """The conservative cross-partition lookahead for barrier sync."""
        if self.cross_partition_delay <= 0:
            raise ValueError(
                f"cross_partition_delay must be positive, got {self.cross_partition_delay!r}"
            )
        return self.cross_partition_delay

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Self-enforcing constant contract: a subclass that overrides a
        # *_delay method without re-declaring the matching constant would
        # otherwise inherit the constant and have its override silently
        # ignored by the kernel — reset the constant so the method is used.
        for method, constant in (
            ("message_delay", "constant_message_delay"),
            ("memory_request_delay", "constant_request_delay"),
            ("memory_response_delay", "constant_response_delay"),
            ("memory_issue_delay", "constant_issue_delay"),
        ):
            if method in cls.__dict__ and constant not in cls.__dict__:
                setattr(cls, constant, None)

    def bind(self, kernel) -> None:
        """Hook called when a kernel adopts this model.

        Runs once from ``Kernel.__init__`` and again from
        ``Kernel.set_latency`` when a model is swapped in mid-assembly.
        Models that price by *simulation state* rather than by arguments —
        the what-if :class:`~repro.obs.whatif.LatencyOverride` matches
        open phase spans through ``kernel.obs`` — grab their kernel
        reference here.  The default is a no-op.
        """

    def message_delay(
        self, src: ProcessId, dst: ProcessId, now: float, rng: random.Random
    ) -> float:
        return 1.0

    def memory_request_delay(
        self, pid: ProcessId, mid: MemoryId, now: float, rng: random.Random
    ) -> float:
        return 1.0

    def memory_response_delay(
        self, pid: ProcessId, mid: MemoryId, now: float, rng: random.Random
    ) -> float:
        return 1.0

    def memory_issue_delay(
        self, pid: ProcessId, mid: MemoryId, now: float, rng: random.Random
    ) -> float:
        """Per-work-request issue cost inside a batched chain.

        Doorbell batching models *unsignaled* operations: only the last WR
        of a chain signals, so a chain of ``k`` operations costs one
        request leg, ``k`` issue increments, and one response leg — never
        ``k`` full round-trips.  The NIC streams chained WRs back-to-back,
        so the nominal issue cost is zero: the chain collapses to the same
        two delays as a single operation, which is exactly the paper's
        delay accounting for slot-array verbs.  Models that want to charge
        for chain length override this (or the constant).
        """
        return 0.0


class NominalLatency(LatencyModel):
    """The common-case schedule: 1 delay per message, 2 per memory op.

    Declares its delays as constants so the kernel's fast path never calls
    into the model per message.  A subclass that overrides a ``*_delay``
    method automatically drops the matching constant (see
    ``LatencyModel.__init_subclass__``), so overrides always take effect.
    """

    constant_message_delay = 1.0
    constant_request_delay = 1.0
    constant_response_delay = 1.0


class JitteredSynchrony(LatencyModel):
    """Synchronous with bounded multiplicative jitter."""

    def __init__(self, jitter: float = 0.2) -> None:
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self.jitter = jitter

    def _draw(self, rng: random.Random) -> float:
        return 1.0 + rng.uniform(0, self.jitter)

    def message_delay(self, src, dst, now, rng) -> float:
        return self._draw(rng)

    def memory_request_delay(self, pid, mid, now, rng) -> float:
        return self._draw(rng)

    def memory_response_delay(self, pid, mid, now, rng) -> float:
        return self._draw(rng)


class PartialSynchrony(LatencyModel):
    """Arbitrary delays before GST, bounded delays afterwards."""

    def __init__(self, gst: float = 50.0, bound: float = 1.5, chaos: float = 20.0):
        self.gst = gst
        self.bound = bound
        self.chaos = chaos

    def _draw(self, now: float, rng: random.Random) -> float:
        if now < self.gst:
            return rng.uniform(1.0, self.chaos)
        return rng.uniform(1.0, self.bound)

    def message_delay(self, src, dst, now, rng) -> float:
        return self._draw(now, rng)

    def memory_request_delay(self, pid, mid, now, rng) -> float:
        return self._draw(now, rng)

    def memory_response_delay(self, pid, mid, now, rng) -> float:
        return self._draw(now, rng)


DelayFn = Callable[[str, ProcessId, int, float], Optional[float]]


class AdversarialLatency(LatencyModel):
    """A programmable adversary with per-edge override hooks.

    ``override(kind, actor, peer, now)`` may return a delay to impose, or
    None to fall back to the base model.  ``kind`` is one of ``"msg"``,
    ``"mem_req"``, ``"mem_resp"``; for messages ``actor``/``peer`` are
    (src, dst), for memory legs they are (pid, mid).
    """

    def __init__(self, override: DelayFn, base: Optional[LatencyModel] = None):
        self.override = override
        self.base = base or NominalLatency()

    def message_delay(self, src, dst, now, rng) -> float:
        forced = self.override("msg", src, dst, now)
        return forced if forced is not None else self.base.message_delay(src, dst, now, rng)

    def memory_request_delay(self, pid, mid, now, rng) -> float:
        forced = self.override("mem_req", pid, mid, now)
        if forced is not None:
            return forced
        return self.base.memory_request_delay(pid, mid, now, rng)

    def memory_response_delay(self, pid, mid, now, rng) -> float:
        forced = self.override("mem_resp", pid, mid, now)
        if forced is not None:
            return forced
        return self.base.memory_response_delay(pid, mid, now, rng)
