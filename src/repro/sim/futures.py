"""Futures for in-flight memory operations, and gates (condition latches).

An :class:`OpFuture` resolves when the memory's response arrives; it *never*
resolves if the memory crashed — callers must wait on quorums (e.g.
``m - f_M`` of ``m`` futures), which is exactly how the paper's algorithms
are written.

A :class:`Gate` is a local (same-process) level-triggered latch used to hand
items between tasks of one process, e.g. the non-equivocating broadcast
delivery daemon feeding the trusted-transport receive queue.  Gates are
purely local and cost zero delays, consistent with computation being
instantaneous in the model.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.types import OpResult

_next_future_id = 0


class OpFuture:
    """Completion handle for one invoked memory operation."""

    __slots__ = ("future_id", "op", "mid", "pid", "done", "result", "_waiters")

    def __init__(self, pid, mid, op) -> None:
        global _next_future_id
        _next_future_id += 1
        self.future_id = _next_future_id
        self.pid = pid
        self.mid = mid
        self.op = op
        self.done = False
        self.result: Optional[OpResult] = None
        self._waiters: List[Callable[[], None]] = []

    def resolve(self, result: OpResult) -> List[Callable[[], None]]:
        """Mark complete; return the callbacks to notify (kernel runs them)."""
        if self.done:
            return []
        self.done = True
        self.result = result
        waiters, self._waiters = self._waiters, []
        return waiters

    def add_waiter(self, notify: Callable[[], None]) -> None:
        if self.done:
            notify()
        else:
            self._waiters.append(notify)

    @property
    def ok(self) -> bool:
        """True if resolved with an ACK result."""
        return self.done and self.result is not None and self.result.ok

    @property
    def value(self) -> Any:
        """The result value (only meaningful when :attr:`ok`)."""
        return self.result.value if self.result is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done={self.result!r}" if self.done else "pending"
        return f"<OpFuture#{self.future_id} mu{int(self.mid)+1} {state}>"


class FanoutState:
    """Shared completion state of one :class:`~repro.sim.effects.OpFanoutEffect`.

    One object replaces N OpFutures plus their waiter closures: each
    response leg updates the counters in place, and the kernel resumes the
    issuing task (once) with this state when the verdict is in.  Tasks
    woken by a timeout inspect the same fields — ``results[i]`` is the
    i-th target's :class:`~repro.types.OpResult`, or ``None`` while (or
    forever if, e.g. on a crashed memory) that op is outstanding.
    """

    __slots__ = ("results", "acked", "naked", "done", "need", "count_acks",
                 "spare_naks", "token", "fired")

    def __init__(self, size: int, need: int, count_acks: bool,
                 spare_naks: int, token: int) -> None:
        self.results: List[Optional[OpResult]] = [None] * size
        self.acked = 0
        self.naked = 0
        self.done = 0
        self.need = need
        self.count_acks = count_acks
        self.spare_naks = spare_naks
        self.token = token
        self.fired = False

    @property
    def satisfied(self) -> bool:
        """The success verdict: *need* ACKs (``count_acks``) or *need*
        completions (quorum-wait mode)."""
        if self.count_acks:
            return self.acked >= self.need
        return self.done >= self.need

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FanoutState {self.done}/{len(self.results)} done "
            f"ack={self.acked} nak={self.naked} need={self.need}>"
        )


class Gate:
    """A level-triggered latch connecting tasks of the same process.

    Waiters come in two shapes: plain callables (the public
    :meth:`add_waiter` API) and ``(task, token)`` pairs parked by the
    kernel's ``gate_wait`` handler via :meth:`park` — the latter avoids a
    closure per wait on the hot path.  ``ProcessEnv.signal`` understands
    both when draining :meth:`set`.
    """

    __slots__ = ("name", "is_set", "_waiters")

    def __init__(self, name: str = "gate") -> None:
        self.name = name
        self.is_set = False
        self._waiters: List[Any] = []

    def set(self) -> List[Any]:
        """Open the gate; return waiters (callables or kernel parks) to wake."""
        self.is_set = True
        if not self._waiters:
            return _NO_WAITERS
        waiters, self._waiters = self._waiters, []
        return waiters

    def park(self, task: Any, token: int) -> None:
        """Kernel fast path: park ``(task, token)`` without a closure."""
        self._waiters.append((task, token))

    def clear(self) -> None:
        """Close the gate; future waiters block until the next :meth:`set`."""
        self.is_set = False

    def add_waiter(self, notify: Callable[[], None]) -> None:
        if self.is_set:
            notify()
        else:
            self._waiters.append(notify)

    def remove_waiter(self, notify: Callable[[], None]) -> None:
        if notify in self._waiters:
            self._waiters.remove(notify)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gate {self.name} {'set' if self.is_set else 'clear'}>"


#: shared empty list returned by ``Gate.set`` when nobody waits (the common
#: case for repeated signals); callers only iterate it, never mutate it
_NO_WAITERS: List[Any] = []


def count_done(futures: Tuple[OpFuture, ...]) -> int:
    """How many of *futures* have resolved."""
    return sum(1 for f in futures if f.done)


def count_acked(futures: Tuple[OpFuture, ...]) -> int:
    """How many of *futures* resolved with ACK."""
    return sum(1 for f in futures if f.ok)
