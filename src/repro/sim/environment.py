"""The process-facing API: what a protocol step may do.

A :class:`ProcessEnv` wraps the kernel for one process.  Methods come in
three flavours:

* *effect builders* (``send``, ``invoke``, ``wait``, ``recv_effect``,
  ``sleep``, ``spawn``, ``gate_wait``) return effect objects for the
  protocol generator to ``yield``;
* *sub-generators* (``write``, ``read``, ``snapshot``, ``change_permission``,
  ``recv``, ``broadcast``) bundle an invoke+wait round trip and are used
  with ``yield from``;
* *instant helpers* (``sign``, ``verify``, ``decide``, ``now``, ``leader``)
  are plain calls — they model instantaneous local computation.

Byzantine strategies receive the same environment; the kernel and memories
enforce everything a Byzantine process must not be able to do (permissions,
signature forgery, sender spoofing).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.signatures import Signed, SigningKey
from repro.mem.operations import (
    BatchOp,
    ChangePermissionOp,
    MemoryOp,
    ProbeOp,
    ReadOp,
    ReadSnapshotOp,
    SnapshotOp,
    WriteOp,
)
from repro.mem.permissions import Permission
from repro.net.messages import Envelope
from repro.sim.effects import (
    BatchOpEffect,
    GateWaitEffect,
    InvokeEffect,
    OpEffect,
    OpFanoutEffect,
    RecvEffect,
    SendEffect,
    SleepEffect,
    SpawnEffect,
    WaitEffect,
)
from repro.sim.futures import Gate, OpFuture
from repro.types import MemoryId, OpResult, OpStatus, ProcessId, RegionId, RegisterKey


class ProcessEnv:
    """One process's window onto the simulated world."""

    def __init__(self, kernel, pid: ProcessId) -> None:
        self._kernel = kernel
        self.pid = ProcessId(pid)
        self.key: SigningKey = kernel.authority.key_for(self.pid)

    # ------------------------------------------------------------------
    # instantaneous helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._kernel.now

    @property
    def n_processes(self) -> int:
        return self._kernel.config.n_processes

    @property
    def n_memories(self) -> int:
        return self._kernel.config.n_memories

    @property
    def processes(self) -> List[ProcessId]:
        return [ProcessId(p) for p in range(self.n_processes)]

    @property
    def memories(self) -> List[MemoryId]:
        return [MemoryId(m) for m in range(self.n_memories)]

    @property
    def rng(self):
        return self._kernel.rng

    @property
    def strict_outstanding(self) -> bool:
        """True when the kernel enforces one outstanding op per memory per
        task (the model-conformance mode of Section 3)."""
        return self._kernel.config.strict_outstanding

    @property
    def fifo_memory_ops(self) -> bool:
        """True when the latency model guarantees FIFO memory-op delivery
        (all delays are model constants).  Fused single-round read chains
        gate on this; see ``Kernel.fifo_memory_ops``."""
        return self._kernel.fifo_memory_ops

    @property
    def obs(self):
        """The attached observability runtime, or None.

        Protocol code opens phase spans with the short-circuit idiom
        ``ph = env.obs and env.obs.phase("name")`` so a detached runtime
        costs one attribute read — no kwargs dict is ever built.
        """
        return self._kernel.obs

    def leader(self) -> ProcessId:
        """The Ω failure-detector oracle's current leader."""
        return ProcessId(self._kernel.omega(self._kernel.now))

    def sign(self, payload: Any) -> Signed:
        """Sign *payload* with this process's key (the paper's ``sign``)."""
        self._kernel.metrics.count_signature(self.pid)
        return self._kernel.authority.sign(self.key, payload)

    def valid(self, signer: ProcessId, signed: Any) -> bool:
        """The paper's ``sValid(p, v)``."""
        return self._kernel.authority.verify(ProcessId(signer), signed)

    def valid_any(self, signed: Any) -> bool:
        """Verify a signature against its claimed signer."""
        return self._kernel.authority.valid(signed)

    @property
    def authority(self):
        return self._kernel.authority

    def mark_proposed(self) -> None:
        """Start the delay clock for this process's decision."""
        if self._kernel.obs is not None:
            self._kernel.obs.proposed(self.pid, self.now)
        self._kernel.metrics.record_proposal(self.pid, self.now)

    def decide(self, value: Any, instance: Any = None) -> None:
        """Record an irrevocable decision (checked for agreement).

        Multi-shot protocols pass ``instance`` (e.g. a log-slot index) so
        the ledger checks agreement per instance rather than treating a
        second slot's decision as a revocation.
        """
        tracer = self._kernel.tracer
        if tracer.enabled:
            tracer.record(
                self.now, "decide", f"p{int(self.pid)+1}", value=value, instance=instance
            )
        if self._kernel.obs is not None:
            self._kernel.obs.decided(self.pid, value, instance, self.now)
        self._kernel.metrics.record_decision(self.pid, value, self.now, instance)

    def has_decided(self) -> bool:
        return self.pid in self._kernel.metrics.decisions

    def decision(self) -> Any:
        record = self._kernel.metrics.decisions.get(self.pid)
        return None if record is None else record.value

    # ------------------------------------------------------------------
    # effect builders (``yield env.xxx(...)``)
    # ------------------------------------------------------------------
    def send(self, dst: ProcessId, payload: Any, topic: str = "default") -> SendEffect:
        return SendEffect(dst=ProcessId(dst), topic=topic, payload=payload)

    def invoke(self, mid: MemoryId, op: MemoryOp) -> InvokeEffect:
        return InvokeEffect(mid=MemoryId(mid), op=op)

    def wait(
        self,
        futures: Sequence[OpFuture],
        count: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> WaitEffect:
        needed = len(futures) if count is None else count
        return WaitEffect(futures=tuple(futures), count=needed, timeout=timeout)

    def recv_effect(
        self,
        topic: Optional[str] = None,
        match: Optional[Callable[[Envelope], bool]] = None,
        timeout: Optional[float] = None,
    ) -> RecvEffect:
        return RecvEffect(topic=topic, match=match, timeout=timeout)

    def sleep(self, duration: float) -> SleepEffect:
        return SleepEffect(duration=duration)

    def spawn(self, name: str, gen: Generator, daemon: bool = True) -> SpawnEffect:
        return SpawnEffect(name=name, gen=gen, daemon=daemon)

    def new_gate(self, name: str = "gate") -> Gate:
        return Gate(name)

    def gate_wait(self, gate: Gate, timeout: Optional[float] = None) -> GateWaitEffect:
        return GateWaitEffect(gate=gate, timeout=timeout)

    def signal(self, gate: Gate) -> None:
        """Open *gate*, waking its waiters (instant local action)."""
        waiters = gate.set()
        if waiters:
            wake = self._kernel._wake
            for waiter in waiters:
                if waiter.__class__ is tuple:  # kernel-parked (task, token)
                    wake(waiter[0], waiter[1], True)
                else:
                    waiter()

    # ------------------------------------------------------------------
    # sub-generators (``yield from env.xxx(...)``)
    # ------------------------------------------------------------------
    def recv(
        self,
        topic: Optional[str] = None,
        match: Optional[Callable[[Envelope], bool]] = None,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Receive one matching message; returns the Envelope or None."""
        env = yield self.recv_effect(topic=topic, match=match, timeout=timeout)
        return env

    def broadcast(
        self, payload: Any, topic: str = "default", include_self: bool = True
    ) -> Generator:
        """Send *payload* to every process (optionally including ourselves)."""
        for dst in self.processes:
            if not include_self and dst == self.pid:
                continue
            yield self.send(dst, payload, topic=topic)

    def read(self, mid: MemoryId, region: RegionId, key: RegisterKey) -> Generator:
        """Read one register on one memory; returns :class:`OpResult`."""
        result = yield OpEffect(MemoryId(mid), ReadOp(region, key))
        return result

    def write(
        self, mid: MemoryId, region: RegionId, key: RegisterKey, value: Any
    ) -> Generator:
        """Write one register on one memory; returns :class:`OpResult`."""
        result = yield OpEffect(MemoryId(mid), WriteOp(region, key, value))
        return result

    def snapshot(self, mid: MemoryId, region: RegionId, prefix: RegisterKey) -> Generator:
        """Snapshot-read a slot array on one memory; returns :class:`OpResult`."""
        result = yield OpEffect(MemoryId(mid), SnapshotOp(region, prefix))
        return result

    def probe(self, mid: MemoryId, region: RegionId, access: str = "write") -> Generator:
        """Zero-length permission probe on one memory; returns :class:`OpResult`.

        ACK iff this process currently holds *access* on *region* — the
        one-sided fence check of the permission-fenced read path.
        """
        result = yield OpEffect(MemoryId(mid), ProbeOp(region, access))
        return result

    def read_snapshot(
        self, mid: MemoryId, region: RegionId, prefix: RegisterKey, floor: Any = None
    ) -> Generator:
        """Floor-filtered snapshot of a slot array; returns :class:`OpResult`.

        Integer-indexed registers below *floor* are filtered at the memory
        (the quorum read path's bounded catch-up read).
        """
        result = yield OpEffect(MemoryId(mid), ReadSnapshotOp(region, prefix, floor))
        return result

    def change_permission(
        self, mid: MemoryId, region: RegionId, new_permission: Permission
    ) -> Generator:
        """Request a permission change on one memory; returns :class:`OpResult`."""
        result = yield OpEffect(MemoryId(mid), ChangePermissionOp(region, new_permission))
        return result

    def invoke_on_all(self, make_op: Callable[[MemoryId], MemoryOp]) -> Generator:
        """Start ``make_op(mid)`` on every memory; returns the futures list."""
        futures = []
        for mid in self.memories:
            future = yield self.invoke(mid, make_op(mid))
            futures.append(future)
        return futures

    def majority_of_memories(self) -> int:
        """Quorum size over memories: ``floor(m/2) + 1``."""
        return self.n_memories // 2 + 1

    # ------------------------------------------------------------------
    # doorbell batching (fused op chains + single-completion fan-outs)
    # ------------------------------------------------------------------
    def batch(self, mid: MemoryId, ops: Iterable[MemoryOp]) -> Generator:
        """Post *ops* to memory *mid* as one fused chain; returns
        :class:`OpResult` — ACK with the tuple of per-op values, or NAK
        with a :class:`~repro.types.ChainAbort` naming the failing index.

        The chain is applied in order, atomically at its arrival instant,
        and costs the same two delays as a single operation (plus the
        model's per-WR issue increments, nominally zero).
        """
        result = yield BatchOpEffect(MemoryId(mid), BatchOp(ops))
        return result

    def write_batch(
        self,
        mid: MemoryId,
        writes: Iterable[Tuple[RegionId, RegisterKey, Any]],
    ) -> Generator:
        """Fused multi-register write to one memory; returns :class:`OpResult`.

        ``writes`` is an iterable of ``(region, key, value)`` triples,
        applied in order with chain-abort semantics — the doorbell-batched
        analogue of N ``env.write`` round trips.
        """
        ops = [WriteOp(region, key, value) for region, key, value in writes]
        result = yield BatchOpEffect(MemoryId(mid), BatchOp(ops))
        return result

    def read_batch(
        self,
        mid: MemoryId,
        reads: Iterable[Tuple[RegionId, RegisterKey]],
    ) -> Generator:
        """Fused multi-register read from one memory; returns
        :class:`OpResult` whose ACK value is the tuple of register values
        in request order."""
        ops = [ReadOp(region, key) for region, key in reads]
        result = yield BatchOpEffect(MemoryId(mid), BatchOp(ops))
        return result

    def op_fanout(
        self,
        targets: Iterable[Tuple[MemoryId, MemoryOp]],
        need: int,
        count_acks: bool = False,
        spare_naks: int = 0,
        timeout: Optional[float] = None,
    ) -> OpFanoutEffect:
        """Effect builder: post one op (or chain) per ``(mid, op)`` target
        and park for a single completion verdict; the task resumes with the
        shared :class:`~repro.sim.futures.FanoutState`.  See
        :class:`~repro.sim.effects.OpFanoutEffect` for the verdict rules.
        """
        return OpFanoutEffect(
            tuple((MemoryId(mid), op) for mid, op in targets),
            need,
            count_acks=count_acks,
            spare_naks=spare_naks,
            timeout=timeout,
        )

    def fanout_to_all(
        self,
        make_op: Callable[[MemoryId], MemoryOp],
        need: Optional[int] = None,
        count_acks: bool = False,
        spare_naks: int = 0,
        timeout: Optional[float] = None,
    ) -> OpFanoutEffect:
        """``op_fanout`` over every memory: ``make_op(mid)`` per memory,
        default *need* = a majority — the phase-2 fan-out idiom in one
        effect (single completion, no futures, no waiter closures)."""
        if need is None:
            need = self.majority_of_memories()
        return OpFanoutEffect(
            tuple((mid, make_op(mid)) for mid in self.memories),
            need,
            count_acks=count_acks,
            spare_naks=spare_naks,
            timeout=timeout,
        )
