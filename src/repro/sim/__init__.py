"""Deterministic discrete-event simulation kernel for the M&M model.

Protocol code is written as Python generators that yield *effects* (send a
message, invoke a memory operation, wait, receive, sleep).  The kernel owns
virtual time: a message costs one delay, a memory operation two (request +
response), and computation is instantaneous — matching the complexity metric
of the paper (Section 3), so measured decision times under the nominal
latency model are exactly the paper's "k-deciding" delay counts.

Everything is deterministic given a seed: the event queue breaks ties by
insertion order and all randomness flows through one ``random.Random``.
"""

from repro.sim.effects import (
    GateWaitEffect,
    InvokeEffect,
    OpEffect,
    RecvEffect,
    SendEffect,
    SleepEffect,
    SpawnEffect,
    WaitEffect,
)
from repro.sim.environment import ProcessEnv
from repro.sim.faults import FailureController, LinkFault
from repro.sim.futures import Gate, OpFuture
from repro.sim.kernel import Kernel, SimConfig, Task
from repro.sim.latency import (
    AdversarialLatency,
    JitteredSynchrony,
    LatencyModel,
    NominalLatency,
    PartialSynchrony,
)
from repro.sim.tracing import TraceEvent, Tracer

__all__ = [
    "AdversarialLatency",
    "FailureController",
    "Gate",
    "GateWaitEffect",
    "InvokeEffect",
    "LinkFault",
    "OpEffect",
    "JitteredSynchrony",
    "Kernel",
    "LatencyModel",
    "NominalLatency",
    "OpFuture",
    "PartialSynchrony",
    "ProcessEnv",
    "RecvEffect",
    "SendEffect",
    "SimConfig",
    "SleepEffect",
    "SpawnEffect",
    "Task",
    "TraceEvent",
    "Tracer",
    "WaitEffect",
]
