"""Structured execution traces.

Tracing is off by default (simulations run millions of events); when
enabled, every interesting kernel action appends a :class:`TraceEvent`.
Tests assert on traces (e.g. "the leader issued no reads before deciding"),
and failed benchmark shapes can be debugged by dumping them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One kernel action at one virtual instant."""

    time: float
    kind: str
    actor: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.kind:<14} {self.actor:<8} {extras}"


class Tracer:
    """Bounded in-memory trace log (a ring: overflow drops the *oldest*).

    ``enabled`` is the zero-cost contract with the hot path: callers on the
    kernel's inner loop check ``tracer.enabled`` *before* computing labels
    or building ``record()`` kwargs, so a disabled tracer costs one
    attribute read per action — no f-strings, no dicts, no call.
    ``record`` still self-guards for callers off the hot path.

    Overflow keeps the **newest** events: a trace is debugged from its
    failure backward, so the ring evicts from the front and ``dropped``
    counts what scrolled out (also surfaced by :meth:`dump`).
    """

    __slots__ = ("enabled", "max_events", "_events", "dropped")

    def __init__(self, enabled: bool = False, max_events: int = 200_000) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self._events: deque = deque(maxlen=max_events)
        self.dropped = 0

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a list copy)."""
        return list(self._events)

    @property
    def truncated(self) -> bool:
        """True when the ring overflowed and early events were dropped."""
        return self.dropped > 0

    def record(self, time: float, kind: str, actor: str, **detail: Any) -> None:
        if not self.enabled:
            return
        events = self._events
        if len(events) == self.max_events:
            self.dropped += 1
        events.append(TraceEvent(time, kind, actor, detail))

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (e for e in self._events if e.kind == kind)

    def by_actor(self, actor: str) -> Iterator[TraceEvent]:
        return (e for e in self._events if e.actor == actor)

    def first(self, kind: str) -> Optional[TraceEvent]:
        return next(self.of_kind(kind), None)

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable trace (optionally only the first *limit* retained
        events); a header line reports how many older events the ring
        dropped."""
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if self.dropped:
            lines.insert(0, f"[... {self.dropped} earlier events dropped ...]")
        return "\n".join(lines)
