"""Effects: the requests protocol generators yield to the kernel.

A protocol step is a generator; each ``yield <effect>`` hands control to the
kernel, which performs the effect and resumes the generator with the
effect's result:

================  ==========================================  ==============
effect            meaning                                      resume value
================  ==========================================  ==============
SendEffect        send a message (1 delay, non-blocking)       None
InvokeEffect      start a memory operation (non-blocking)      OpFuture
WaitEffect        park until k of the futures resolve          True/False*
RecvEffect        park until a matching message arrives        Envelope/None*
SleepEffect       park for a fixed virtual duration            None
GateWaitEffect    park until a local gate opens                True/False*
SpawnEffect       start another task on this process           Task
================  ==========================================  ==============

(*) False/None indicates the optional timeout elapsed first.

``SendEffect``/``InvokeEffect``/``SpawnEffect`` resume immediately at the
same virtual instant — computation is instantaneous in the model — so a
process may, e.g., start writes to all memories in the same step and then
``WaitEffect`` on a majority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple

from repro.mem.operations import MemoryOp
from repro.net.messages import Envelope
from repro.sim.futures import Gate, OpFuture
from repro.types import MemoryId, ProcessId


class Effect:
    """Marker base class for everything a protocol generator may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class SendEffect(Effect):
    """Send *payload* to process *dst* on *topic* (fire-and-forget)."""

    dst: ProcessId
    topic: str
    payload: Any


@dataclass(frozen=True)
class InvokeEffect(Effect):
    """Invoke *op* on memory *mid*; resumes immediately with an OpFuture."""

    mid: MemoryId
    op: MemoryOp


@dataclass(frozen=True)
class WaitEffect(Effect):
    """Park until *count* of *futures* resolve, or *timeout* elapses."""

    futures: Tuple[OpFuture, ...]
    count: int
    timeout: Optional[float] = None


@dataclass(frozen=True)
class RecvEffect(Effect):
    """Park until a message matching (*topic*, *match*) arrives."""

    topic: Optional[str] = None
    match: Optional[Callable[[Envelope], bool]] = None
    timeout: Optional[float] = None


@dataclass(frozen=True)
class SleepEffect(Effect):
    """Park for *duration* units of virtual time."""

    duration: float


@dataclass(frozen=True)
class GateWaitEffect(Effect):
    """Park until *gate* is set, or *timeout* elapses."""

    gate: Gate
    timeout: Optional[float] = None


@dataclass(frozen=True)
class SpawnEffect(Effect):
    """Start *gen* as a sibling task of the current process."""

    name: str
    gen: Generator
    daemon: bool = True
