"""Effects: the requests protocol generators yield to the kernel.

A protocol step is a generator; each ``yield <effect>`` hands control to the
kernel, which performs the effect and resumes the generator with the
effect's result:

================  ==========================================  ==============
effect            meaning                                      resume value
================  ==========================================  ==============
SendEffect        send a message (1 delay, non-blocking)       None
InvokeEffect      start a memory operation (non-blocking)      OpFuture
WaitEffect        park until k of the futures resolve          True/False*
RecvEffect        park until a matching message arrives        Envelope/None*
SleepEffect       park for a fixed virtual duration            None
GateWaitEffect    park until a local gate opens                True/False*
SpawnEffect       start another task on this process           Task
OpEffect          one memory op, park until it resolves        OpResult
BatchOpEffect     one fused op chain, park until it resolves   OpResult
OpFanoutEffect    ops to many memories, park until a quorum    FanoutState
================  ==========================================  ==============

(*) False/None indicates the optional timeout elapsed first.

``SendEffect``/``InvokeEffect``/``SpawnEffect`` resume immediately at the
same virtual instant — computation is instantaneous in the model — so a
process may, e.g., start writes to all memories in the same step and then
``WaitEffect`` on a majority.

Dispatch contract
-----------------

The kernel does **not** dispatch on ``isinstance``.  Every effect class
carries a small integer class attribute ``kind`` (one of the ``FX_*``
constants below), and the kernel indexes a flat handler table with it —
one list subscript per effect instead of a seven-way type scan.  The
contract for anything a task yields:

* ``effect.kind`` must be an ``FX_*`` integer, and the object must expose
  the fields the matching handler reads (the constructor signatures below
  are the authoritative field lists);
* the numbering is dense and stable: handler tables are built as flat
  lists, so new effect kinds append — they never renumber existing ones;
* yielding an object without a usable ``kind`` is a :class:`SimulationError`
  (the kernel reports it as a non-effect).

Effects are plain ``__slots__`` value objects rather than dataclasses: they
are allocated on every hot-path yield, and a hand-written ``__init__`` with
slots is the cheapest construction Python offers.  Treat instances as
immutable — the kernel may defer reading their fields until the effect is
performed.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from repro.mem.operations import MemoryOp
from repro.net.messages import Envelope
from repro.sim.futures import Gate, OpFuture
from repro.types import MemoryId, ProcessId

# ---------------------------------------------------------------------------
# Effect kinds: indices into the kernel's effect-handler table.
# ---------------------------------------------------------------------------
FX_SEND = 0
FX_INVOKE = 1
FX_WAIT = 2
FX_RECV = 3
FX_SLEEP = 4
FX_GATE_WAIT = 5
FX_SPAWN = 6
FX_OP = 7
FX_BATCH_OP = 8
FX_OP_FANOUT = 9


class Effect:
    """Base class for everything a protocol generator may yield.

    Subclassing is optional sugar: the kernel dispatches purely on the
    ``kind`` tag (see the module docstring's dispatch contract).
    """

    __slots__ = ()
    kind: int = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    __hash__ = None  # effects are mutable-shaped value objects; not hashable


class SendEffect(Effect):
    """Send *payload* to process *dst* on *topic* (fire-and-forget)."""

    __slots__ = ("dst", "topic", "payload")
    kind = FX_SEND

    def __init__(self, dst: ProcessId, topic: str, payload: Any) -> None:
        self.dst = dst
        self.topic = topic
        self.payload = payload


class InvokeEffect(Effect):
    """Invoke *op* on memory *mid*; resumes immediately with an OpFuture."""

    __slots__ = ("mid", "op")
    kind = FX_INVOKE

    def __init__(self, mid: MemoryId, op: MemoryOp) -> None:
        self.mid = mid
        self.op = op


class WaitEffect(Effect):
    """Park until *count* of *futures* resolve, or *timeout* elapses."""

    __slots__ = ("futures", "count", "timeout")
    kind = FX_WAIT

    def __init__(
        self,
        futures: Tuple[OpFuture, ...],
        count: int,
        timeout: Optional[float] = None,
    ) -> None:
        # Normalised defensively: the kernel iterates futures repeatedly
        # (count, register, re-count), which a generator argument would
        # silently break.  tuple() of a tuple is identity-cheap.
        self.futures = tuple(futures)
        self.count = count
        self.timeout = timeout


class RecvEffect(Effect):
    """Park until a message matching (*topic*, *match*) arrives."""

    __slots__ = ("topic", "match", "timeout")
    kind = FX_RECV

    def __init__(
        self,
        topic: Optional[str] = None,
        match: Optional[Callable[[Envelope], bool]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.topic = topic
        self.match = match
        self.timeout = timeout


class SleepEffect(Effect):
    """Park for *duration* units of virtual time."""

    __slots__ = ("duration",)
    kind = FX_SLEEP

    def __init__(self, duration: float) -> None:
        self.duration = duration


class GateWaitEffect(Effect):
    """Park until *gate* is set, or *timeout* elapses."""

    __slots__ = ("gate", "timeout")
    kind = FX_GATE_WAIT

    def __init__(self, gate: Gate, timeout: Optional[float] = None) -> None:
        self.gate = gate
        self.timeout = timeout


class SpawnEffect(Effect):
    """Start *gen* as a sibling task of the current process."""

    __slots__ = ("name", "gen", "daemon")
    kind = FX_SPAWN

    def __init__(self, name: str, gen: Generator, daemon: bool = True) -> None:
        self.name = name
        self.gen = gen
        self.daemon = daemon


class OpEffect(Effect):
    """Invoke *op* on memory *mid* and park until it resolves.

    The fused form of the ubiquitous ``InvokeEffect`` + one-future
    ``WaitEffect`` sequence (``env.write``/``read``/``snapshot``/
    ``change_permission``): same two-delay timing, but the kernel resumes
    the task with the :class:`~repro.types.OpResult` directly — no future,
    no waiter closure, one fewer queue entry.  Like a lone unresolved
    future, the task hangs forever if the memory crashed; quorum callers
    needing timeouts keep using invoke + wait.
    """

    __slots__ = ("mid", "op")
    kind = FX_OP

    def __init__(self, mid: MemoryId, op: MemoryOp) -> None:
        self.mid = mid
        self.op = op


class BatchOpEffect(Effect):
    """Post a fused op chain (a :class:`~repro.mem.operations.BatchOp`)
    to memory *mid* and park until its single completion.

    The doorbell-batched sibling of :class:`OpEffect`: one queue entry
    carries the whole chain to the memory, the memory applies the sub-ops
    in order (abort-on-NAK), and one completion event resumes the task
    with the chain's :class:`~repro.types.OpResult` — ACK with the tuple
    of sub-values, or NAK with a :class:`~repro.types.ChainAbort`.  The
    request leg is priced at ``request + k·issue`` (only the last WR
    signals), so a nominal chain costs the same two delays as a single
    operation.  Under ``strict_outstanding`` the chain counts as ONE
    outstanding operation on its memory, matching single-completion
    semantics.
    """

    __slots__ = ("mid", "op")
    kind = FX_BATCH_OP

    def __init__(self, mid: MemoryId, op: MemoryOp) -> None:
        self.mid = mid
        self.op = op


class OpFanoutEffect(Effect):
    """Post one op (or chain) per target memory; park for ONE completion
    verdict instead of one resolution closure per future.

    ``targets`` is a tuple of ``(mid, op)`` pairs, all posted at the same
    instant.  The kernel tracks completions in a single shared
    :class:`~repro.sim.futures.FanoutState` and resumes the task exactly
    once, with that state, when the verdict is in:

    * ``count_acks=False`` — after *need* completions (ACK or NAK), the
      quorum-wait idiom of a phase-2 write fan-out;
    * ``count_acks=True`` — after *need* ACKs (success) or more than
      *spare_naks* NAKs (failure short-circuit), the probe-verdict idiom;
    * either way after *timeout*, when given.

    Late completions still land in ``state.results`` (the state outlives
    the wake, like futures do), but never resume the task again.  Ops on
    crashed memories simply never complete — exactly the model's futures
    semantics, which is why quorum callers must size *need* accordingly.
    """

    __slots__ = ("targets", "need", "count_acks", "spare_naks", "timeout")
    kind = FX_OP_FANOUT

    def __init__(
        self,
        targets,
        need: int,
        count_acks: bool = False,
        spare_naks: int = 0,
        timeout: Optional[float] = None,
    ) -> None:
        self.targets = tuple(targets)
        self.need = need
        self.count_acks = count_acks
        self.spare_naks = spare_naks
        self.timeout = timeout
