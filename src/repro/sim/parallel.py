"""Parallel simulation: partitioned cells under conservative time barriers.

The single-threaded kernel caps every benchmark, but the workloads it
carries are mostly *embarrassingly partitionable*: shards are independent
consensus groups, and the only cross-shard coupling is client traffic.
This module exploits that by composing **cells** — each cell is one
complete, UNMODIFIED :class:`~repro.sim.kernel.Kernel` hosting a service
(or a set of bare client tasks) with its own processes, memories, RNG
stream and virtual clock — under a coordinator that keeps their clocks
consistent with conservative (null-message/lookahead) synchronization:

* Cross-cell traffic travels on a **fabric** overlay, never through a
  kernel's own network: a task calls ``port.post(dst_cell, dst_pid,
  topic, payload)``, which buffers the message in the source cell's
  outbox with an arrival time at least ``lookahead`` in the future.
* Each round, the coordinator computes the global time floor ``t_min``
  (the earliest pending event across all cells) and lets every cell run
  freely to the **barrier horizon** ``B = t_min + lookahead``.  Any
  message posted during the round was sent at some ``s >= t_min`` and
  so arrives at ``s + delay >= B`` — no cell can have executed past an
  injection point, which is the whole conservative-correctness argument.
* At the barrier, outboxes are merged **deterministically** — sorted by
  ``(arrival, src_cell, dst_cell, chan_seq)`` — and injected into the
  destination kernels via :meth:`Kernel.inject`.  Barriers, injection
  sets and injection order are all pure functions of the cells' own
  (worker-independent) executions, so per-cell traces are bit-identical
  for ANY worker count, including W=1 against the plain sequential loop.

Two execution modes share the barrier protocol:

* ``inline`` — one OS process; workers are accounting buckets.  Per
  round, each worker's wall-clock slice is measured, and the result
  reports a **critical-path projection**: what the round structure would
  yield with truly concurrent workers (``total_busy / (sum of per-round
  max worker slices + coordinator overhead)``).  This is the honest
  number on a single-core container, and the default for benchmarks.
* ``fork`` — real OS processes (Linux ``fork`` start method), one per
  worker, each building only its assigned cells and exchanging outboxes
  with the coordinator over pipes.  Same barriers, same merge key, same
  hashes; used to validate that the protocol survives real parallelism.

Cells are described by **factories** (``factory(port) -> Cell``) rather
than pre-built kernels so fork workers can construct their partition in
their own address space; in inline mode the factories run eagerly at
coordinator construction.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.messages import Envelope
from repro.types import ProcessId

INF = float("inf")


class Cell:
    """One partition of a parallel simulation.

    Wraps an unmodified kernel plus the partition-level metadata the
    coordinator needs: a *goal* (checked only at barriers, so it is
    evaluated at the same virtual instants for every worker count) and
    an optional *summarize* hook whose (picklable) result rides back to
    the coordinator from fork workers.
    """

    __slots__ = ("id", "kernel", "goal", "label", "summarize", "port")

    def __init__(
        self,
        cell_id: int,
        kernel,
        goal: Optional[Callable[[], bool]] = None,
        label: Optional[str] = None,
        summarize: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.id = int(cell_id)
        self.kernel = kernel
        self.goal = goal
        self.label = label or f"cell-{cell_id}"
        self.summarize = summarize
        self.port: Optional[FabricPort] = None

    def next_time(self) -> float:
        """Earliest pending instant, or +inf when drained."""
        pending = self.kernel.queue.next_time()
        if pending is None:
            return INF
        if pending == -INF:  # ready-lane entry: runs at the cell's now
            return self.kernel.now
        return pending

    def goal_met(self) -> bool:
        return True if self.goal is None else bool(self.goal())


class FabricPort:
    """A cell's handle for posting messages across the fabric.

    ``post`` is a plain synchronous call made from inside a running cell
    task (it costs no kernel event in the source cell); the message sits
    in the outbox until the coordinator drains it at the barrier.  Every
    ``(src_cell, dst_cell)`` channel carries its own sequence counter —
    the final tie-breaker of the deterministic merge, and the uniqueness
    component of the injected envelope's ``msg_id``.
    """

    __slots__ = ("cell_id", "lookahead", "outbox", "posted", "_seq", "_kernel")

    def __init__(self, cell_id: int, lookahead: float) -> None:
        self.cell_id = int(cell_id)
        self.lookahead = float(lookahead)
        self.outbox: List[Tuple] = []
        self.posted = 0
        self._seq: Dict[int, int] = {}
        self._kernel = None

    def bind(self, kernel) -> None:
        self._kernel = kernel

    def post(self, dst_cell: int, dst_pid: int, topic: str, payload: Any) -> None:
        """Queue *payload* for delivery to ``(dst_cell, dst_pid)``.

        The arrival time is exactly ``now + lookahead`` — a constant,
        never drawn from any RNG: per-cell RNG streams differ between
        layouts, and any dependence on them would make the merged
        schedule vary with the worker count.
        """
        if self._kernel is None:
            raise RuntimeError("fabric port used before its cell was built")
        now = self._kernel.now
        seq = self._seq.get(dst_cell, 0) + 1
        self._seq[dst_cell] = seq
        self.outbox.append(
            (now + self.lookahead, self.cell_id, int(dst_cell), seq,
             int(dst_pid), topic, payload, now)
        )
        self.posted += 1

    def drain(self) -> List[Tuple]:
        entries, self.outbox = self.outbox, []
        return entries


def inject_entry(kernel, entry: Tuple) -> None:
    """Materialize one fabric entry as an envelope in *kernel*.

    The envelope's ``src`` is set to the destination pid: cross-cell
    messages are outside any cell's partition/chaos scenario, and the
    failure plane only ever severs ``(src, dst)`` pairs with
    ``src != dst``, so a self-sourced envelope can never be dropped by a
    partition the destination cell happens to be simulating.  The
    ``msg_id`` tuple is globally unique per channel sequence, so the
    network's duplicate-delivery guard accepts it; it never feeds trace
    hashes (see ``repro.obs.whatif.run_hash``), keeping determinism
    independent of allocation order.
    """
    arrival, src_cell, dst_cell, seq, dst_pid, topic, payload, sent_at = entry
    envelope = Envelope(
        ProcessId(dst_pid),
        ProcessId(dst_pid),
        topic,
        payload,
        sent_at,
        msg_id=("x", src_cell, dst_cell, seq),
    )
    kernel.inject(envelope, arrival)


#: deterministic merge key: arrival instant, then source cell, then
#: destination cell, then per-channel sequence — a total order that is a
#: pure function of the (worker-independent) cell executions.
def merge_key(entry: Tuple) -> Tuple:
    return (entry[0], entry[1], entry[2], entry[3])


class ParallelRunResult:
    """Outcome and accounting of one :meth:`ParallelKernel.run`."""

    __slots__ = (
        "goal_met", "rounds", "virtual_time", "wall", "workers", "mode",
        "worker_busy", "critical_path", "total_busy", "coordinator_wall",
        "projected_speedup", "messages_crossed", "lookahead",
    )

    def __init__(self, **kw: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, kw.get(name))

    def as_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelRunResult(W={self.workers}, rounds={self.rounds}, "
            f"t={self.virtual_time}, projected={self.projected_speedup:.2f}x)"
        )


class ParallelKernel:
    """Coordinator of a partitioned simulation.

    *factories* is a sequence of ``factory(port) -> Cell`` callables, one
    per cell; cell ids are the factory indices.  *workers* buckets cells
    via :class:`~repro.shard.partitioner.WorkerAssignment` (LPT packing,
    ring-reweightable); pass *assignment* to control placement directly.

    *lookahead* is the fabric's cross-cell delay and the barrier slack.
    When None it is derived as the minimum of the cells' latency models'
    ``lookahead()`` — "keyed off the latency model's minimum
    cross-partition delay".
    """

    def __init__(
        self,
        factories: Sequence[Callable[[FabricPort], Cell]],
        workers: int = 1,
        mode: str = "inline",
        lookahead: Optional[float] = None,
        assignment=None,
    ) -> None:
        if not factories:
            raise ValueError("need at least one cell factory")
        if mode not in ("inline", "fork"):
            raise ValueError(f"unknown mode {mode!r}; pick 'inline' or 'fork'")
        self.factories = list(factories)
        self.mode = mode
        self.n_cells = len(self.factories)
        if assignment is None:
            from repro.shard.partitioner import WorkerAssignment

            assignment = WorkerAssignment(range(self.n_cells), workers)
        self.assignment = assignment
        self.workers = assignment.n_workers
        self._lookahead_arg = lookahead
        self.lookahead = lookahead if lookahead is not None else 2.0
        self.cells: List[Cell] = []
        self.ports: List[FabricPort] = []
        self.result: Optional[ParallelRunResult] = None
        if mode == "inline":
            self.cells, self.ports = self._build_cells(range(self.n_cells))
            if lookahead is None:
                self.lookahead = min(
                    cell.kernel.config.latency.lookahead() for cell in self.cells
                )
                for port in self.ports:
                    port.lookahead = self.lookahead

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _build_cells(
        self, cell_ids: Sequence[int]
    ) -> Tuple[List[Cell], List[FabricPort]]:
        cells: List[Cell] = []
        ports: List[FabricPort] = []
        for cell_id in cell_ids:
            port = FabricPort(cell_id, self.lookahead)
            cell = self.factories[cell_id](port)
            if cell.id != cell_id:
                raise ValueError(
                    f"factory {cell_id} built cell id {cell.id}; ids must match"
                )
            cell.port = port
            port.bind(cell.kernel)
            cells.append(cell)
            ports.append(port)
        return cells, ports

    def worker_cells(self, worker: int) -> List[int]:
        return list(self.assignment.workers[worker])

    # ------------------------------------------------------------------
    # the conservative barrier loop
    # ------------------------------------------------------------------
    def run(
        self,
        deadline: Optional[float] = None,
        max_rounds: Optional[int] = None,
    ) -> ParallelRunResult:
        """Run all cells to their goals (or *deadline*), barrier by barrier.

        Deadline semantics match ``Kernel.run(until=deadline)``: events
        at times ``<= deadline`` execute, later ones do not.  Goals are
        evaluated only at barriers, so the stop point is identical for
        every worker count.
        """
        if (
            deadline is None
            and self.mode == "inline"
            and all(cell.goal is None for cell in self.cells)
        ):
            raise ValueError("need a deadline or at least one cell goal")
        if self.mode == "fork":
            return self._run_fork(deadline, max_rounds)
        self._has_goal = any(cell.goal is not None for cell in self.cells)
        return self._run_inline(deadline, max_rounds)

    def _barrier_plan(
        self, next_times: List[float], goals: List[bool], deadline: Optional[float]
    ) -> Tuple[bool, float, float]:
        """``(done, t_min, barrier)`` for one round — shared by both modes
        so they produce identical barrier sequences."""
        t_min = min(next_times)
        # goal-less cells report goal_met()=True, so "all goals met" is
        # only a stop condition when some cell actually has a goal;
        # otherwise the run is bounded by the deadline or quiescence
        if self._has_goal and all(goals):
            return True, t_min, t_min
        if t_min == INF:
            return True, t_min, t_min
        if deadline is not None and t_min > deadline:
            return True, t_min, t_min
        return False, t_min, t_min + self.lookahead

    def _run_inline(
        self, deadline: Optional[float], max_rounds: Optional[int]
    ) -> ParallelRunResult:
        started = time.perf_counter()
        cells, ports = self.cells, self.ports
        buckets = [
            [cells[cell_id] for cell_id in self.assignment.workers[w]]
            for w in range(self.workers)
        ]
        worker_busy = [0.0] * self.workers
        critical_path = 0.0
        total_busy = 0.0
        coordinator = 0.0
        rounds = 0
        crossed = 0
        goal_met = False
        t_min = 0.0
        # Same round shape as fork mode: the coordinator only drains,
        # sorts and plans; injections execute inside the destination
        # worker's timed slice at the top of the next round (that is
        # where the work lands with real concurrent workers, so the
        # critical-path accounting must charge it there too).  Pending
        # arrivals are folded into the time floor exactly as fork does —
        # equivalent to planning after injection, since an injection only
        # ever adds an event at its arrival time.
        pending: List[Tuple] = []
        while True:
            tick = time.perf_counter()
            done, t_min, barrier = self._barrier_plan(
                [cell.next_time() for cell in cells]
                + [entry[0] for entry in pending],
                [cell.goal_met() for cell in cells],
                deadline,
            )
            coordinator += time.perf_counter() - tick
            if done:
                goal_met = all(cell.goal_met() for cell in cells)
                break
            if max_rounds is not None and rounds >= max_rounds:
                break
            by_worker: List[List[Tuple]] = [[] for _ in range(self.workers)]
            for entry in pending:
                by_worker[self.assignment.worker_of[entry[2]]].append(entry)
            crossed += len(pending)
            pending = []
            round_slices = []
            for worker, bucket in enumerate(buckets):
                slice_start = time.perf_counter()
                for entry in by_worker[worker]:
                    inject_entry(cells[entry[2]].kernel, entry)
                for cell in bucket:
                    kernel = cell.kernel
                    queue = kernel.queue
                    kernel.run(
                        until=deadline,
                        stop_when=lambda q=queue, b=barrier: q.idle_before(b),
                    )
                slice_wall = time.perf_counter() - slice_start
                worker_busy[worker] += slice_wall
                round_slices.append(slice_wall)
            critical_path += max(round_slices) if round_slices else 0.0
            total_busy += sum(round_slices)
            tick = time.perf_counter()
            for port in ports:
                pending.extend(port.drain())
            pending.sort(key=merge_key)
            coordinator += time.perf_counter() - tick
            rounds += 1
        # leftover cross-cell messages are injected (not run) so final
        # queue state and counters match fork mode's finish path
        crossed += len(pending)
        for entry in pending:
            inject_entry(cells[entry[2]].kernel, entry)
        wall = time.perf_counter() - started
        parallel_wall = critical_path + coordinator
        projected = (total_busy + coordinator) / parallel_wall if parallel_wall > 0 else 1.0
        self.result = ParallelRunResult(
            goal_met=goal_met,
            rounds=rounds,
            virtual_time=t_min if t_min != INF else max(
                (cell.kernel.now for cell in cells), default=0.0
            ),
            wall=wall,
            workers=self.workers,
            mode="inline",
            worker_busy=worker_busy,
            critical_path=critical_path,
            total_busy=total_busy,
            coordinator_wall=coordinator,
            projected_speedup=projected,
            messages_crossed=crossed,
            lookahead=self.lookahead,
        )
        return self.result

    # ------------------------------------------------------------------
    # fork mode (real OS processes)
    # ------------------------------------------------------------------
    def _run_fork(
        self, deadline: Optional[float], max_rounds: Optional[int]
    ) -> ParallelRunResult:
        import multiprocessing as mp

        context = mp.get_context("fork")
        started = time.perf_counter()
        procs = []
        pipes = []
        for worker in range(self.workers):
            parent_end, child_end = context.Pipe()
            proc = context.Process(
                target=self._fork_worker,
                args=(worker, child_end, deadline),
                daemon=True,
            )
            proc.start()
            child_end.close()
            procs.append(proc)
            pipes.append(parent_end)
        try:
            # handshake: each worker builds its cells, reports its local
            # minimum lookahead and initial cell states
            states: Dict[int, Tuple[float, bool]] = {}
            lookaheads = []
            self._has_goal = False
            for pipe in pipes:
                tag, local_lookahead, has_goal, cell_states = pipe.recv()
                assert tag == "ready", tag
                lookaheads.append(local_lookahead)
                self._has_goal = self._has_goal or has_goal
                for cell_id, next_time, goal in cell_states:
                    states[cell_id] = (next_time, goal)
            if self._lookahead_arg is None:
                self.lookahead = min(lookaheads)
            for pipe in pipes:
                pipe.send(("lookahead", self.lookahead))
            rounds = 0
            crossed = 0
            goal_met = False
            t_min = 0.0
            worker_busy = [0.0] * self.workers
            pending: List[Tuple] = []
            while True:
                # Children report next_time BEFORE this round's injections
                # land, so fold the pending arrivals into the floor — an
                # injection only ever adds an event at its arrival time,
                # which makes this exactly the post-injection t_min the
                # inline loop computes.
                done, t_min, barrier = self._barrier_plan(
                    [state[0] for state in states.values()]
                    + [entry[0] for entry in pending],
                    [state[1] for state in states.values()],
                    deadline,
                )
                if done:
                    goal_met = all(state[1] for state in states.values())
                    break
                if max_rounds is not None and rounds >= max_rounds:
                    break
                # ship this round's injections (already globally sorted)
                # and the barrier; collect each worker's outbox and new
                # cell states
                by_worker: Dict[int, List[Tuple]] = {w: [] for w in range(self.workers)}
                for entry in pending:
                    by_worker[self.assignment.worker_of[entry[2]]].append(entry)
                crossed += len(pending)
                for worker, pipe in enumerate(pipes):
                    pipe.send(("round", barrier, by_worker[worker]))
                pending = []
                for worker, pipe in enumerate(pipes):
                    tag, outbox, cell_states, busy = pipe.recv()
                    assert tag == "ran", tag
                    pending.extend(outbox)
                    worker_busy[worker] += busy
                    for cell_id, next_time, goal in cell_states:
                        states[cell_id] = (next_time, goal)
                pending.sort(key=merge_key)
                rounds += 1
            # leftover injections ride the finish message so fork-mode
            # injection counters match the inline loop (which injects
            # before its final goal check) even though nothing runs after
            summaries: Dict[int, Dict[str, Any]] = {}
            leftover: Dict[int, List[Tuple]] = {w: [] for w in range(self.workers)}
            for entry in pending:
                leftover[self.assignment.worker_of[entry[2]]].append(entry)
            crossed += len(pending)
            for worker, pipe in enumerate(pipes):
                pipe.send(("finish", leftover[worker]))
            for pipe in pipes:
                tag, worker_summaries = pipe.recv()
                assert tag == "summary", tag
                summaries.update(worker_summaries)
            self._fork_summaries = summaries
        finally:
            for pipe in pipes:
                pipe.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - hang guard
                    proc.terminate()
        wall = time.perf_counter() - started
        self.result = ParallelRunResult(
            goal_met=goal_met,
            rounds=rounds,
            virtual_time=t_min if t_min != INF else 0.0,
            wall=wall,
            workers=self.workers,
            mode="fork",
            worker_busy=worker_busy,
            critical_path=None,
            total_busy=sum(worker_busy),
            coordinator_wall=None,
            projected_speedup=None,
            messages_crossed=crossed,
            lookahead=self.lookahead,
        )
        return self.result

    def _fork_worker(self, worker: int, pipe, deadline: Optional[float]) -> None:
        """Child body: build this worker's cells, serve barrier rounds."""
        cell_ids = list(self.assignment.workers[worker])
        cells, ports = self._build_cells(cell_ids)
        by_id = {cell.id: cell for cell in cells}
        local_lookahead = min(
            cell.kernel.config.latency.lookahead() for cell in cells
        ) if self._lookahead_arg is None else self.lookahead
        pipe.send((
            "ready",
            local_lookahead,
            any(cell.goal is not None for cell in cells),
            [(cell.id, cell.next_time(), cell.goal_met()) for cell in cells],
        ))
        tag, lookahead = pipe.recv()
        assert tag == "lookahead", tag
        for port in ports:
            port.lookahead = lookahead
        while True:
            message = pipe.recv()
            if message[0] == "finish":
                for entry in message[1]:
                    inject_entry(by_id[entry[2]].kernel, entry)
                pipe.send(("summary", {cell.id: cell_summary(cell) for cell in cells}))
                return
            _tag, barrier, injections = message
            for entry in injections:
                inject_entry(by_id[entry[2]].kernel, entry)
            busy_start = time.perf_counter()
            for cell in cells:
                queue = cell.kernel.queue
                cell.kernel.run(
                    until=deadline,
                    stop_when=lambda q=queue, b=barrier: q.idle_before(b),
                )
            busy = time.perf_counter() - busy_start
            outbox: List[Tuple] = []
            for port in ports:
                outbox.extend(port.drain())
            pipe.send((
                "ran",
                outbox,
                [(cell.id, cell.next_time(), cell.goal_met()) for cell in cells],
                busy,
            ))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def summaries(self) -> Dict[int, Dict[str, Any]]:
        """Per-cell determinism digests (inline: live; fork: shipped back)."""
        if self.mode == "fork":
            return dict(getattr(self, "_fork_summaries", {}))
        return {cell.id: cell_summary(cell) for cell in self.cells}

    def run_report(self) -> Dict[str, Any]:
        """One aggregated report across all cells plus the run accounting."""
        summaries = self.summaries()
        totals = {
            "events": sum(s["events"] for s in summaries.values()),
            "sim_events": sum(s["sim_events"] for s in summaries.values()),
            "messages": sum(s["messages"] for s in summaries.values()),
            "crossed": 0 if self.result is None else self.result.messages_crossed,
        }
        report: Dict[str, Any] = {
            "cells": summaries,
            "totals": totals,
            "combined_hash": combined_hash(summaries),
        }
        if self.result is not None:
            report["run"] = self.result.as_dict()
        return report


def cell_summary(cell: Cell) -> Dict[str, Any]:
    """The picklable per-cell digest the determinism contract compares."""
    from repro.obs.whatif import run_hash

    kernel = cell.kernel
    metrics = kernel.metrics
    messages = metrics.total_messages()
    op_legs = 2 * metrics.total_mem_ops()
    return {
        "cell": cell.id,
        "label": cell.label,
        "now": kernel.now,
        "events": kernel.queue.popped,
        "messages": messages,
        "sim_events": messages + op_legs,
        "injected": kernel.network.injected,
        "posted": 0 if cell.port is None else cell.port.posted,
        "run_hash": run_hash(kernel),
        "summary": None if cell.summarize is None else cell.summarize(),
    }


def combined_hash(summaries: Dict[int, Dict[str, Any]]) -> str:
    """One hash over every cell's ``run_hash``, in cell-id order."""
    import hashlib

    digest = hashlib.sha256()
    for cell_id in sorted(summaries):
        digest.update(f"{cell_id}:{summaries[cell_id]['run_hash']};".encode())
    return digest.hexdigest()
