"""The simulation kernel: tasks, effects, virtual time, failures.

One :class:`Kernel` simulates one M&M system: ``n`` processes (each running
one or more generator *tasks*), ``m`` memories, a message network, a
signature authority and a metrics ledger.  The kernel is single-threaded and
deterministic: all scheduling flows through a time-ordered event queue with
FIFO tie-breaking, and all randomness through one seeded ``Random``.

Timing semantics (paper Section 3, "Complexity of algorithms"):

* computation is instantaneous — a resumed task runs through any number of
  non-blocking effects (sends, memory-op invocations, spawns) at the same
  virtual instant until it parks on a wait/recv/sleep;
* a message takes ``latency.message_delay`` (nominal: 1 unit);
* a memory operation takes a request leg plus a response leg (nominal: 2).

Failure semantics:

* a crashed process never runs again (its tasks are killed, its inbox is
  dropped) — until a scripted *recovery* removes the crash flag and the
  registered recovery hooks re-spawn fresh protocol tasks, which rebuild
  their state from the memory regions;
* a crashed memory silently swallows requests — the invoking future simply
  never resolves, indistinguishable from slowness; a recovered memory
  answers again, with its regions intact or wiped (see ``recover_memory``);
* the crash sets are *time-varying state*, consulted on every delivery and
  resume — nothing may cache "p is faulty" across instants;
* partitions sever link-level reachability (checked per delivery), and
  per-link chaos filters inflate/drop/duplicate messages on the send path
  (see :mod:`repro.sim.faults` — all of it scheduled as typed ``EV_FAULT``
  queue entries executed by the kernel's :class:`FailureController`);
* a Byzantine process runs whatever strategy generator was installed, but
  the memories still enforce permissions and the signature authority still
  only gives it its own key.

Hot-path structure
------------------

The kernel is also the inner loop of every experiment, so the scheduling
machinery is built around flat dispatch tables instead of type scans and
closures:

* every queue entry is a typed tuple ``(time, seq, kind, a, b, c)`` (see
  :mod:`repro.sim.event_queue`); ``run`` dispatches through
  ``_ev_handlers[kind]`` — no per-event lambda is ever allocated;
* every effect carries an integer ``kind`` tag (see
  :mod:`repro.sim.effects`); ``_resume`` dispatches through
  ``_fx_handlers[kind]`` — no isinstance chain;
* a task woken at the current instant (message delivered, quorum reached,
  gate signalled) is resumed through the queue's *ready lane* rather than
  a second heap round-trip;
* tracing and metrics are guarded by ``tracer.enabled`` before any label
  or kwargs are built, and the nominal latency model's constant delays are
  cached so the common case skips per-message method dispatch;
* the causal observability layer (:mod:`repro.obs`) hooks the same points
  behind ``self.obs is not None`` — detached (the default), every hook is
  one attribute load and one branch; attached, spans ride envelopes
  (``env.ctx``) and memory-op completion tokens across the scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappop
from typing import Any, Callable, Dict, Generator, List, Optional, Set

from repro.crypto.signatures import SignatureAuthority
from repro.errors import LivelockError, OutstandingOpError, SimulationError
from repro.mem.layout import MemoryLayout
from repro.mem.memory import Memory
from repro.mem.operations import OP_BATCH
from repro.metrics.ledger import MetricsLedger
from repro.net.messages import Envelope
from repro.net.network import Network, RecvWaiter
from repro.sim.effects import (
    Effect,
    GateWaitEffect,
    InvokeEffect,
    RecvEffect,
    SendEffect,
    SleepEffect,
    SpawnEffect,
    WaitEffect,
)
from repro.sim.event_queue import (
    EV_ARRIVE,
    EV_CALL,
    EV_DELIVER,
    EV_FAN_ARRIVE,
    EV_FAN_RESOLVE,
    EV_FAULT,
    EV_OP_ARRIVE,
    EV_OP_RESOLVE,
    EV_RECV_TIMEOUT,
    EV_RESOLVE,
    EV_RESUME,
    EV_WAKE,
    EventQueue,
)
from repro.sim.faults import FailureController
from repro.sim.futures import FanoutState, OpFuture
from repro.sim.latency import LatencyModel, NominalLatency
from repro.sim.tracing import Tracer
from repro.types import MemoryId, ProcessId, memory_name, process_name

#: Ω failure-detector oracle: maps virtual time to the current leader pid.
OmegaFn = Callable[[float], int]

#: number of effect kinds the dispatch table covers (FX_SEND..FX_OP_FANOUT)
_N_FX = 10


@dataclass
class SimConfig:
    """Static configuration of one simulation."""

    n_processes: int
    n_memories: int = 0
    latency: LatencyModel = field(default_factory=NominalLatency)
    seed: int = 0
    trace: bool = False
    strict_safety: bool = True
    #: enforce the model's one-outstanding-op-per-memory rule per task
    strict_outstanding: bool = False
    #: cap on same-instant effects one task may run (runaway detector)
    max_inline_steps: int = 100_000
    #: Ω oracle; default: p1 is always the leader
    omega: Optional[OmegaFn] = None
    #: the disk model of Section 3 has no links: sending raises
    links_enabled: bool = True

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("need at least one process")
        if self.n_memories < 0:
            raise ValueError("n_memories must be >= 0")


class Task:
    """One generator running on one process."""

    __slots__ = (
        "task_id",
        "pid",
        "name",
        "gen",
        "started",
        "done",
        "result",
        "daemon",
        "pending_token",
        "_token_counter",
        "outstanding",
        "ctx",
    )

    def __init__(
        self,
        task_id: int,
        pid: ProcessId,
        name: str,
        gen: Generator,
        daemon: bool,
        ctx: Any = None,
    ):
        self.task_id = task_id
        self.pid = pid
        self.name = name
        self.gen = gen
        self.started = False
        self.done = False
        self.result: Any = None
        self.daemon = daemon
        self.pending_token: Optional[int] = None
        self._token_counter = 0
        self.outstanding: Dict[MemoryId, int] = {}
        #: causal trace context (a repro.obs Span) new child spans parent
        #: under; None whenever observability is detached
        self.ctx = ctx

    def new_token(self) -> int:
        self._token_counter += 1
        self.pending_token = self._token_counter
        return self._token_counter

    @property
    def label(self) -> str:
        return f"{process_name(self.pid)}/{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("parked" if self.pending_token else "ready")
        return f"<Task {self.label} {state}>"


class Kernel:
    """Deterministic discrete-event simulator of one M&M system."""

    def __init__(self, config: SimConfig, layout: Optional[MemoryLayout] = None):
        self.config = config
        self.now = 0.0
        self.queue = EventQueue()
        self.rng = random.Random(config.seed)
        self.tracer = Tracer(enabled=config.trace)
        #: attached observability runtime (repro.obs), or None — the
        #: zero-cost default every hook below checks first
        self.obs: Optional[Any] = None
        #: pluggable scheduler (see repro.sim.schedule / repro.check), or
        #: None — the default, which keeps run() on the closed hot loop.
        #: Costs one ``is None`` check per run() call, never per event.
        self.scheduler: Optional[Any] = None
        self.metrics = MetricsLedger(strict_safety=config.strict_safety)
        self.network = Network(config.n_processes)
        self.layout = layout or MemoryLayout([])
        self.memories: List[Memory] = [
            Memory(MemoryId(mid), self.layout) for mid in range(config.n_memories)
        ]
        self.authority = SignatureAuthority(seed=config.seed)
        self.crashed_processes: Set[ProcessId] = set()
        self.byzantine_processes: Set[ProcessId] = set()
        self.tasks: List[Task] = []
        self._next_task_id = 0
        self.omega: OmegaFn = config.omega or (lambda now: 0)
        # Constant delays of the latency model, or None when the model is
        # dynamic.  NominalLatency declares all three as 1.0, letting the
        # common case skip the method + RNG dispatch per message/leg.
        latency = config.latency
        self._msg_delay: Optional[float] = latency.constant_message_delay
        self._req_delay: Optional[float] = latency.constant_request_delay
        self._resp_delay: Optional[float] = latency.constant_response_delay
        self._issue_delay: Optional[float] = latency.constant_issue_delay
        latency.bind(self)
        # Static config and ledger references hoisted off the per-event path.
        # links_enabled and strict_outstanding are NOT hoisted: callers
        # toggle both on the config post-init (e.g. the disk-model cluster).
        self._max_inline_steps = config.max_inline_steps
        self._msg_counter = self.metrics.messages_sent
        self._mem_op_counter = self.metrics.mem_ops
        # Flat dispatch tables, indexed by event kind / effect kind.  Order
        # must match the EV_* / FX_* numbering exactly.
        self.failures = FailureController(self)
        self._ev_handlers = [
            self._ev_call,          # EV_CALL
            self._ev_resume,        # EV_RESUME
            self._ev_wake,          # EV_WAKE
            self._ev_deliver,       # EV_DELIVER
            self._ev_arrive,        # EV_ARRIVE
            self._ev_resolve,       # EV_RESOLVE
            self._ev_recv_timeout,  # EV_RECV_TIMEOUT
            self._ev_op_arrive,     # EV_OP_ARRIVE
            self._ev_op_resolve,    # EV_OP_RESOLVE
            self._ev_fault,         # EV_FAULT
            self._ev_fan_arrive,    # EV_FAN_ARRIVE
            self._ev_fan_resolve,   # EV_FAN_RESOLVE
        ]
        self._fx_handlers = [
            self._fx_send,       # FX_SEND
            self._fx_invoke,     # FX_INVOKE
            self._fx_wait,       # FX_WAIT
            self._fx_recv,       # FX_RECV
            self._fx_sleep,      # FX_SLEEP
            self._fx_gate_wait,  # FX_GATE_WAIT
            self._fx_spawn,      # FX_SPAWN
            self._fx_op,         # FX_OP
            self._fx_op,         # FX_BATCH_OP (chains share the fused-op path)
            self._fx_op_fanout,  # FX_OP_FANOUT
        ]

    def set_latency(self, latency) -> None:
        """Swap the latency model, invalidating the cached constants.

        The constructor caches the model's ``constant_*`` delays so the
        hot path can skip method dispatch; installing a model after
        construction (what-if counterfactuals wrapping the baseline in a
        :class:`~repro.obs.whatif.LatencyOverride`) must re-derive them or
        the kernel would silently keep pricing with the old model.  Also
        re-runs :meth:`LatencyModel.bind` so state-dependent models pick
        up this kernel.
        """
        self.config.latency = latency
        self._msg_delay = latency.constant_message_delay
        self._req_delay = latency.constant_request_delay
        self._resp_delay = latency.constant_response_delay
        self._issue_delay = latency.constant_issue_delay
        latency.bind(self)

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------
    def spawn(
        self,
        pid: ProcessId,
        name: str,
        gen: Generator,
        daemon: bool = False,
        ctx: Any = None,
    ) -> Task:
        """Register *gen* as a task of process *pid*; first step runs at ``now``.

        *ctx* seeds the task's causal trace context (tasks spawned by a
        running task inherit the spawner's — see ``_fx_spawn``).
        """
        self._next_task_id += 1
        task = Task(self._next_task_id, ProcessId(pid), name, gen, daemon, ctx)
        self.tasks.append(task)
        if self.tracer.enabled:
            self.tracer.record(self.now, "spawn", task.label)
        if self.obs is not None:
            self.obs.task_spawned(task)
        self.queue.push(self.now, EV_RESUME, task, None)
        return task

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run *fn* at virtual *time* (ad-hoc timers, test probes)."""
        self.queue.push(max(time, self.now), EV_CALL, fn)

    def schedule_fault(self, time: float, event) -> None:
        """Arm one typed fault event (see :mod:`repro.sim.faults`) at
        virtual *time* — the closure-free replacement for ``call_at``-based
        fault timers: the queue entry carries the event object itself."""
        self.queue.push(max(time, self.now), EV_FAULT, event)

    def inject(self, envelope: Envelope, arrival: float) -> None:
        """Schedule an externally produced *envelope* for delivery at
        *arrival* — the parallel fabric's entry point into a worker kernel.

        Conservative synchronization requires ``arrival >= now``: the
        coordinator only injects at a barrier every cell has reached, and
        cross-cell delay is at least the fabric lookahead, so a violation
        here means the lookahead contract was broken, not a race to paper
        over.
        """
        if arrival < self.now:
            raise ValueError(
                f"injection at t={arrival} is in this kernel's past (now={self.now})"
            )
        self.network.injected += 1
        self.queue.push(arrival, EV_DELIVER, envelope)

    def register_regions(self, specs) -> None:
        """Register new memory regions at runtime (elastic reconfiguration).

        Mirrors RDMA memory registration: the shared layout grows and the
        region's boot permission is installed on every memory — crashed
        ones included, since a region's permission state is hardware
        state that is simply present when the memory revives.  Idempotent
        per region id, so a coordinator re-running an epoch after a crash
        neither duplicates regions nor resets permissions its first
        attempt already moved.
        """
        for spec in specs:
            if self.layout.by_id(spec.region_id) is None:
                self.layout.add(spec)
            for memory in self.memories:
                memory.add_region(spec)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def crash_process(self, pid: ProcessId) -> None:
        """Crash *pid* now: its tasks are killed, its inbox dropped.

        Killing (rather than merely never resuming) the tasks is what makes
        recovery sound: a stale timer for a pre-crash task must never fire
        into the process's next incarnation.
        """
        pid = ProcessId(pid)
        if pid in self.crashed_processes:
            return
        self.crashed_processes.add(pid)
        obs = self.obs
        for task in self.tasks:
            if task.pid == pid and not task.done:
                task.done = True
                if obs is not None:
                    obs.task_killed(task, self.now)
        self.network.drop_process(pid)
        self.tracer.record(self.now, "crash_proc", process_name(pid))
        self.metrics.record_fault(self.now, "crash_proc", process_name(pid))
        self.failures.notify_crash(pid)

    def recover_process(self, pid: ProcessId) -> None:
        """Recover *pid* now: delivery resumes and the failure controller's
        recovery hooks re-spawn its protocol tasks (with state rebuilt from
        the memory regions — the cluster runners register those hooks)."""
        pid = ProcessId(pid)
        if pid not in self.crashed_processes:
            return
        self.crashed_processes.discard(pid)
        self.tracer.record(self.now, "recover_proc", process_name(pid))
        self.metrics.record_fault(self.now, "recover_proc", process_name(pid))
        self.failures.notify_recover(pid)

    def crash_memory(self, mid: MemoryId) -> None:
        """Crash memory *mid* now: subsequent operations on it hang."""
        memory = self.memories[mid]
        if not memory.crashed:
            memory.crash()
            self.tracer.record(self.now, "crash_mem", memory_name(mid))
            self.metrics.record_fault(self.now, "crash_mem", memory_name(mid))

    def recover_memory(self, mid: MemoryId, wipe: bool = False) -> None:
        """Revive memory *mid* now, regions intact (or wiped to boot state)."""
        memory = self.memories[mid]
        if memory.crashed:
            memory.recover(wipe=wipe)
            self.tracer.record(self.now, "recover_mem", memory_name(mid), wipe=wipe)
            self.metrics.record_fault(
                self.now, "recover_mem", memory_name(mid), wipe=wipe
            )

    def mark_byzantine(self, pid: ProcessId) -> None:
        """Exempt *pid* from agreement accounting (its strategy is installed
        by the cluster runner)."""
        pid = ProcessId(pid)
        self.byzantine_processes.add(pid)
        self.metrics.byzantine.add(pid)

    def is_faulty(self, pid: ProcessId) -> bool:
        return pid in self.crashed_processes or pid in self.byzantine_processes

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the queue drains, *until* passes, or
        *stop_when* returns True.  Returns the final virtual time.

        This IS the hot loop: dispatch for the frequent event kinds is
        inlined as an integer ``if``/``elif`` chain (cheaper than a table
        call), with the rare kinds falling through to ``_ev_handlers``.
        The queue's two lanes are drained ready-first through local
        bindings; counters are maintained inline.

        With a pluggable scheduler attached the call is delegated to the
        open-frontier loop instead — same semantics for the default pick,
        but every same-instant entry becomes a choice point.
        """
        if self.scheduler is not None:
            return self._run_scheduled(until, max_events, stop_when)
        processed = 0
        queue = self.queue
        ready = queue._ready
        heap = queue._heap
        pop_ready = ready.popleft
        handlers = self._ev_handlers
        resume = self._resume
        deliver = self._deliver
        try:
            while ready or heap:
                if stop_when is not None and stop_when():
                    break
                if ready:
                    # Same-instant fast path: tasks woken by the event that
                    # just ran resume now, before anything more off the heap.
                    if until is not None and self.now > until:
                        break
                    kind, a, b, c, _seq = pop_ready()
                else:
                    time = heap[0][0]
                    if until is not None and time > until:
                        break
                    time, _seq, kind, a, b, c = heappop(heap)
                    if time < self.now:
                        raise SimulationError(
                            f"time went backwards: {time} < {self.now}"
                        )
                    self.now = time
                if kind == EV_RESUME:
                    resume(a, b)
                elif kind == EV_DELIVER:
                    deliver(a)
                elif kind == EV_WAKE:
                    # Timer-driven wake (sleep, wait/gate timeout): token-
                    # checked and folded straight into the resume — no
                    # second entry.
                    if a.pending_token == b and not a.done:
                        resume(a, c)
                elif kind == EV_OP_ARRIVE:
                    self._ev_op_arrive(a, b, c)
                elif kind == EV_OP_RESOLVE:
                    self._ev_op_resolve(a, b, c)
                elif kind == EV_FAN_ARRIVE:
                    self._ev_fan_arrive(a, b, c)
                elif kind == EV_FAN_RESOLVE:
                    self._ev_fan_resolve(a, b, c)
                elif kind == EV_ARRIVE:
                    self._ev_arrive(a, b, c)
                elif kind == EV_RESOLVE:
                    self._resolve(a, b, c)
                else:
                    handlers[kind](a, b, c)
                processed += 1
                if max_events is not None and processed > max_events:
                    self._raise_livelock(max_events)
        finally:
            # Counter maintained in bulk: one attribute RMW per run() call
            # instead of one per event.
            queue.popped += processed
        return self.now

    def _run_scheduled(
        self,
        until: Optional[float],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> float:
        """The open-frontier run loop behind ``kernel.scheduler``.

        Each step materialises the frontier (ready lane in FIFO order,
        then heap entries at the current instant in seq order) and asks
        the scheduler which entry fires — or which fault injection to
        execute instead.  Firing ``frontier[0]`` at every step reproduces
        the default loop's schedule bit-for-bit; any other pick is a legal
        same-instant reordering the default loop simply never chooses.
        Dispatch goes through ``_ev_handlers`` (not the inlined chain), so
        instrumented/patched handlers take effect under exploration.
        """
        from repro.sim.schedule import build_frontier

        queue = self.queue
        ready = queue._ready
        heap = queue._heap
        scheduler = self.scheduler
        handlers = self._ev_handlers
        processed = 0
        try:
            while ready or heap:
                if stop_when is not None and stop_when():
                    break
                if ready:
                    if until is not None and self.now > until:
                        break
                else:
                    time = heap[0][0]
                    if until is not None and time > until:
                        break
                    if time < self.now:
                        raise SimulationError(
                            f"time went backwards: {time} < {self.now}"
                        )
                    self.now = time
                frontier = build_frontier(queue, self.now)
                choice = scheduler.pick(self, self.now, frontier)
                if choice.__class__ is int:
                    entry = frontier[choice]
                    if entry.lane == "ready":
                        queue.take_ready(entry.index)
                    else:
                        queue.remove_heap_entry(entry.raw)
                    handlers[entry.kind](entry.a, entry.b, entry.c)
                    processed += 1
                    if max_events is not None and processed > max_events:
                        self._raise_livelock(max_events)
                else:
                    # An Injection: fire its fault events at this instant
                    # (delayed ones are armed as ordinary EV_FAULT entries).
                    for delay, event in choice.events:
                        if delay <= 0.0:
                            self.failures.execute(event)
                        else:
                            self.schedule_fault(self.now + delay, event)
        finally:
            queue.popped += processed
        return self.now

    def _raise_livelock(self, max_events: int) -> None:
        """Diagnose and raise a :class:`LivelockError`: queue-depth
        snapshot by event kind, parked-task census, and (when obs is
        attached) a flight-recorder dump of every open span."""
        from collections import Counter

        queue = self.queue
        kinds: Counter = Counter()
        for entry in queue._heap:
            kinds[entry[2]] += 1
        for entry in queue._ready:
            kinds[entry[0]] += 1
        from repro.sim.schedule import EV_NAMES

        pending = ", ".join(
            f"{EV_NAMES[kind]}={count}"
            for kind, count in sorted(kinds.items(), key=lambda kv: -kv[1])
        )
        parked = sum(
            1 for t in self.tasks if not t.done and t.pending_token is not None
        )
        flight_dump = None
        detail = ""
        if self.obs is not None:
            flight_dump = self.obs.flight.trip(
                f"livelock: max_events={max_events}", self.now
            )
            detail = f"; flight dump captured ({len(flight_dump['open'])} open spans)"
        raise LivelockError(
            f"exceeded max_events={max_events} at t={self.now:g}: "
            f"{len(queue._heap)} heap + {len(queue._ready)} ready entries "
            f"pending ({pending or 'none'}), {parked} tasks parked{detail}",
            flight_dump=flight_dump,
        )

    def run_until_decided(
        self,
        pids: Optional[Set[ProcessId]] = None,
        deadline: float = 10_000.0,
    ) -> bool:
        """Run until every pid in *pids* (default: all correct) decided.

        Returns True when the goal was reached before *deadline*.
        """
        if pids is None:
            pids = {
                ProcessId(p)
                for p in range(self.config.n_processes)
                if not self.is_faulty(ProcessId(p))
            }

        def goal() -> bool:
            return all(p in self.metrics.decisions for p in pids)

        self.run(until=deadline, stop_when=goal)
        return goal()

    # ------------------------------------------------------------------
    # event handlers (dispatch table: EV_* numbering)
    # ------------------------------------------------------------------
    def _ev_call(self, fn, _b, _c) -> None:
        fn()

    def _ev_resume(self, task, value, _c) -> None:
        self._resume(task, value)

    def _ev_wake(self, task, token, value) -> None:
        # A timer-driven wake (sleep, wait/gate timeout): token-checked and
        # folded straight into the resume — no second queue entry.
        if task.pending_token == token and not task.done:
            self._resume(task, value)

    def _ev_deliver(self, env, _b, _c) -> None:
        self._deliver(env)

    def _ev_fault(self, event, _b, _c) -> None:
        self.failures.execute(event)

    def _memory_apply_leg(self, pid, mid, op):
        """Shared arrival leg of both memory-op paths: apply *op* at the
        memory (unless it crashed) and price the response leg.  Returns
        ``(result, response_delay)``, or ``(None, None)`` when the memory
        is down and the op must hang."""
        memory = self.memories[mid]
        if memory.crashed:
            if self.tracer.enabled:
                self.tracer.record(self.now, "mem_drop", memory_name(mid))
            return None, None
        result = memory.apply(pid, op)
        resp = self._resp_delay
        if resp is None:
            resp = self.config.latency.memory_response_delay(pid, mid, self.now, self.rng)
        return result, resp

    def _op_response_bookkeeping(self, task: Task, mid, result) -> None:
        """Shared response-leg bookkeeping of both memory-op paths."""
        if self.config.strict_outstanding:
            task.outstanding[mid] = max(0, task.outstanding.get(mid, 1) - 1)
        if self.tracer.enabled:
            self.tracer.record(
                self.now,
                "op_result",
                task.label,
                mem=memory_name(mid),
                status=result.status.value,
            )

    def _ev_arrive(self, task, future, _c) -> None:
        result, resp = self._memory_apply_leg(future.pid, future.mid, future.op)
        if result is None:
            return  # the future never resolves: the op hangs
        self.queue.push(self.now + resp, EV_RESOLVE, task, future, result)

    def _ev_resolve(self, task, future, result) -> None:
        self._resolve(task, future, result)

    def _ev_recv_timeout(self, task, token, _c) -> None:
        # Heap context (ready lane empty): unpark and resume directly.
        if task.pending_token == token:
            self.network.unpark(task.pid, token, task)
            if not task.done and task.pid not in self.crashed_processes:
                task.pending_token = None
                self._resume(task, None)

    def _ev_op_arrive(self, task, token, mid_op) -> None:
        mid, op = mid_op
        result, resp = self._memory_apply_leg(task.pid, mid, op)
        if result is None:
            return  # the op hangs: the parked task is never woken
        self.queue.push(self.now + resp, EV_OP_RESOLVE, task, token, (mid, result))

    def _ev_op_resolve(self, task, token, mid_result) -> None:
        mid, result = mid_result
        self._op_response_bookkeeping(task, mid, result)
        if self.obs is not None:
            self.obs.op_resolved((task.task_id, token), self.now, result.status.value)
        # Fold the wake straight into the resume (like EV_WAKE).
        if task.pending_token == token and not task.done:
            self._resume(task, result)

    def _ev_fan_arrive(self, task, state, idx_mid_op) -> None:
        index, mid, op = idx_mid_op
        result, resp = self._memory_apply_leg(task.pid, mid, op)
        if result is None:
            return  # crashed memory: this leg of the fan-out never completes
        self.queue.push(
            self.now + resp, EV_FAN_RESOLVE, task, state, (index, mid, result)
        )

    def _ev_fan_resolve(self, task, state, idx_mid_result) -> None:
        index, mid, result = idx_mid_result
        self._op_response_bookkeeping(task, mid, result)
        if self.obs is not None:
            self.obs.op_resolved(
                (task.task_id, state.token, index), self.now, result.status.value
            )
        state.results[index] = result
        state.done += 1
        if result.ok:
            state.acked += 1
        else:
            state.naked += 1
        if state.fired:
            return  # late completion: recorded above, never resumes the task
        if state.count_acks:
            verdict = state.acked >= state.need or state.naked > state.spare_naks
        else:
            verdict = state.done >= state.need
        if verdict:
            state.fired = True
            if self.obs is not None:
                self.obs.fanout_verdict(task, state, self.now)
            self._wake(task, state.token, state)

    # ------------------------------------------------------------------
    # task stepping
    # ------------------------------------------------------------------
    def _resume(self, task: Task, value: Any) -> None:
        if task.done or task.pid in self.crashed_processes:
            return
        task.pending_token = None
        if not task.started:
            task.started = True
            value = None
        obs = self.obs
        if obs is not None:
            obs.enter_task(task)
        gen_send = task.gen.send
        handlers = self._fx_handlers
        max_steps = self._max_inline_steps
        steps = 0
        while True:
            try:
                effect = gen_send(value)
            except StopIteration as stop:
                task.done = True
                task.result = stop.value
                if self.tracer.enabled:
                    self.tracer.record(self.now, "task_done", task.label, result=stop.value)
                if obs is not None:
                    obs.exit_task(task, self.now)
                return
            steps += 1
            if steps > max_steps:
                raise SimulationError(
                    f"task {task.label} ran {steps} effects at t={self.now} "
                    "without parking (runaway loop?)"
                )
            try:
                kind = effect.kind
            except AttributeError:
                kind = None
            if kind.__class__ is not int or not 0 <= kind < _N_FX:
                raise SimulationError(
                    f"task {task.label} yielded non-effect {effect!r}"
                )
            value = handlers[kind](task, effect)
            if value is _PARKED:
                if obs is not None:
                    obs.exit_task(task, self.now)
                return

    def _wake(self, task: Task, token: int, value: Any) -> None:
        """Resume *task* at the current instant if *token* is still pending.

        The resume goes through the queue's ready lane: it runs as soon as
        the event that triggered the wake finishes, ahead of any further
        heap entry, and never allocates a closure or a heap slot.
        """
        if task.done or task.pending_token != token:
            return
        if task.pid in self.crashed_processes:
            return
        task.pending_token = None
        self.queue.push_ready(EV_RESUME, task, value)

    # ------------------------------------------------------------------
    # effect handlers (dispatch table: FX_* numbering)
    # ------------------------------------------------------------------
    def _fx_send(self, task: Task, effect: SendEffect) -> None:
        if not self.config.links_enabled:
            raise SimulationError(
                f"{task.label} sent a message in the link-free disk model"
            )
        dst = effect.dst
        env = Envelope(task.pid, dst, effect.topic, effect.payload, self.now)
        if self.obs is not None:
            # The open msg span rides the envelope; delivery closes it and
            # the receiver adopts it as its causal context.
            env.ctx = self.obs.msg_sent(task, env, self.now)
        self._msg_counter[task.pid] += 1
        delay = self._msg_delay
        if delay is None:
            delay = self.config.latency.message_delay(task.pid, dst, self.now, self.rng)
        if self.tracer.enabled:
            self.tracer.record(
                self.now, "send", task.label, dst=process_name(dst), topic=effect.topic
            )
        network = self.network
        if network.link_faults:
            fault = network.link_faults.get((task.pid, dst))
            if fault is not None:
                if fault.drop_prob and self.rng.random() < fault.drop_prob:
                    network.chaos_dropped += 1
                    if self.tracer.enabled:
                        self.tracer.record(
                            self.now, "chaos_drop", task.label, dst=process_name(dst)
                        )
                    return None  # the send completes; the message is lost
                delay = delay * fault.delay_factor + fault.extra_delay
                if fault.duplicate_prob and self.rng.random() < fault.duplicate_prob:
                    # A fresh envelope (new msg id): the duplicate must pass
                    # the network's exactly-once guard to test idempotence.
                    twin = Envelope(task.pid, dst, effect.topic, effect.payload, self.now)
                    self.queue.push(self.now + delay + 1.0, EV_DELIVER, twin)
        self.queue.push(self.now + delay, EV_DELIVER, env)
        return None

    def _deliver(self, env: Envelope) -> None:
        if env.dst in self.crashed_processes:
            return
        blocked = self.network.blocked
        if blocked and (env.src, env.dst) in blocked:
            # Reachability is time-varying state checked per delivery: a
            # message sent before the partition but landing during it is
            # lost, exactly like a packet on a just-severed link.
            self.network.partition_dropped += 1
            if self.tracer.enabled:
                self.tracer.record(
                    self.now, "partition_drop", process_name(env.dst),
                    src=process_name(env.src), topic=env.topic,
                )
            return
        if self.tracer.enabled:
            self.tracer.record(
                self.now, "deliver", process_name(env.dst),
                src=process_name(env.src), topic=env.topic,
            )
        obs = self.obs
        if obs is not None and env.ctx is not None:
            obs.msg_delivered(env, self.now)
        waiter = self.network.deliver(env)
        if waiter is not None:
            task = waiter.task
            if task is not None:
                # _deliver only runs off the heap, where the ready lane is
                # empty by construction — resuming directly here is order-
                # identical to a ready-lane round trip, minus the round trip.
                if (
                    task.pending_token == waiter.token
                    and not task.done
                    and task.pid not in self.crashed_processes
                ):
                    task.pending_token = None
                    if obs is not None and env.ctx is not None:
                        task.ctx = env.ctx
                    self._resume(task, env)
            else:  # pragma: no cover - compat for externally built waiters
                waiter.wake(env)

    def _op_request_leg(self, task: Task, mid, op) -> float:
        """Shared request leg of both memory-op paths: validate the target,
        enforce the one-outstanding rule (strict mode only — the permissive
        default skips the dict traffic entirely), count and trace the op.
        Returns the request delay."""
        if mid >= len(self.memories):
            raise SimulationError(f"no such memory mu{int(mid) + 1}")
        if self.config.strict_outstanding:
            if task.outstanding.get(mid, 0) >= 1:
                raise OutstandingOpError(
                    f"{task.label} already has an outstanding op on {memory_name(mid)}"
                )
            task.outstanding[mid] = task.outstanding.get(mid, 0) + 1
        req = self._req_delay
        if req is None:
            req = self.config.latency.memory_request_delay(task.pid, mid, self.now, self.rng)
        if op.kind != OP_BATCH:
            self._mem_op_counter[task.pid, type(op).__name__] += 1
        else:
            # A chain is ONE queue entry (and one outstanding op under the
            # strict rule), but each sub-op is real work: count them under
            # their own names so ledgers stay comparable between batched
            # and unbatched runs.  Delay: only the last WR signals, so the
            # chain costs the request leg plus one issue increment per WR
            # (nominal issue cost: zero — see LatencyModel).
            counter = self._mem_op_counter
            pid = task.pid
            for sub in op.ops:
                counter[pid, type(sub).__name__] += 1
            issue = self._issue_delay
            if issue is not None:
                req += issue * len(op.ops)
            else:
                latency = self.config.latency
                for _ in op.ops:
                    req += latency.memory_issue_delay(pid, mid, self.now, self.rng)
        if self.tracer.enabled:
            self.tracer.record(
                self.now, "invoke", task.label, mem=memory_name(mid), op=type(op).__name__
            )
        return req

    def _fx_invoke(self, task: Task, effect: InvokeEffect) -> OpFuture:
        mid = effect.mid
        op = effect.op
        req = self._op_request_leg(task, mid, op)
        future = OpFuture(task.pid, mid, op)
        if self.obs is not None:
            self.obs.op_started(task, future, mid, op, self.now)
        self.queue.push(self.now + req, EV_ARRIVE, task, future)
        return future

    def _resolve(self, task: Task, future: OpFuture, result) -> None:
        self._op_response_bookkeeping(task, future.mid, result)
        if self.obs is not None:
            self.obs.op_resolved(future, self.now, result.status.value)
        for notify in future.resolve(result):
            notify()

    def _fx_wait(self, task: Task, effect: WaitEffect):
        futures = effect.futures
        needed = effect.count
        done_now = 0
        for f in futures:
            if f.done:
                done_now += 1
        if needed <= 0 or done_now >= needed:
            # Already satisfied: resume at this instant through the ready
            # lane (one entry, no closures) instead of a heap round-trip.
            self.queue.push_ready(EV_RESUME, task, True)
            return _PARKED
        token = task.new_token()

        def check() -> None:
            done = 0
            for f in futures:
                if f.done:
                    done += 1
            if done >= needed:
                self._wake(task, token, True)

        for f in futures:
            f.add_waiter(check)
        if effect.timeout is not None:
            self.queue.push(self.now + effect.timeout, EV_WAKE, task, token, False)
        return _PARKED

    def _fx_recv(self, task: Task, effect: RecvEffect):
        env = self.network.try_consume(task.pid, effect.topic, effect.match)
        if env is not None:
            if self.obs is not None and env.ctx is not None:
                task.ctx = env.ctx
            return env
        token = task.new_token()
        self.network.park(
            RecvWaiter(
                pid=task.pid,
                token=token,
                topic=effect.topic,
                match=effect.match,
                task=task,
            )
        )
        if effect.timeout is not None:
            self.queue.push(self.now + effect.timeout, EV_RECV_TIMEOUT, task, token)
        return _PARKED

    def _fx_sleep(self, task: Task, effect: SleepEffect):
        token = task.new_token()
        self.queue.push(self.now + effect.duration, EV_WAKE, task, token, None)
        return _PARKED

    def _fx_gate_wait(self, task: Task, effect: GateWaitEffect):
        gate = effect.gate
        if gate.is_set:
            self.queue.push_ready(EV_RESUME, task, True)
            return _PARKED
        token = task.new_token()
        gate.park(task, token)
        if effect.timeout is not None:
            self.queue.push(self.now + effect.timeout, EV_WAKE, task, token, False)
        return _PARKED

    def _fx_spawn(self, task: Task, effect: SpawnEffect):
        return self.spawn(
            task.pid, effect.name, effect.gen, daemon=effect.daemon, ctx=task.ctx
        )

    def _fx_op(self, task: Task, effect):
        """Fused invoke + one-future wait (see :class:`OpEffect`).

        Also the handler for :class:`BatchOpEffect`: a chain rides the same
        two queue entries — ``_op_request_leg`` prices its issue increments
        and the memory's dispatch table applies it abort-on-NAK.
        """
        mid = effect.mid
        op = effect.op
        req = self._op_request_leg(task, mid, op)
        token = task.new_token()
        if self.obs is not None:
            self.obs.op_started(task, (task.task_id, token), mid, op, self.now)
        self.queue.push(self.now + req, EV_OP_ARRIVE, task, token, (mid, op))
        return _PARKED

    def _fx_op_fanout(self, task: Task, effect):
        """Post one op (or chain) per target memory with single-completion
        semantics (see :class:`OpFanoutEffect`): all completions fold into
        one shared :class:`FanoutState`, and the task resumes exactly once
        when the verdict is in — no per-future waiter closures."""
        targets = effect.targets
        token = task.new_token()
        state = FanoutState(
            len(targets), effect.need, effect.count_acks, effect.spare_naks, token
        )
        queue = self.queue
        obs = self.obs
        for index, (mid, op) in enumerate(targets):
            req = self._op_request_leg(task, mid, op)
            if obs is not None:
                obs.op_started(task, (task.task_id, token, index), mid, op, self.now)
            queue.push(self.now + req, EV_FAN_ARRIVE, task, state, (index, mid, op))
        if state.satisfied:
            # Degenerate verdict (need <= 0): resume at this instant; the
            # posted ops still complete into the state later.
            state.fired = True
            queue.push_ready(EV_RESUME, task, state)
        elif effect.timeout is not None:
            queue.push(self.now + effect.timeout, EV_WAKE, task, token, state)
        return _PARKED

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def fifo_memory_ops(self) -> bool:
        """True when every memory-op delay is a model constant, so two
        operations posted to one memory in order also arrive — and apply —
        in that order (the FIFO queue-pair property).  Fused read chains
        that adopt a watermark and the entries it covers from ONE snapshot
        rely on this; under jittered/adversarial models it is False and
        callers fall back to sequential rounds."""
        if (
            self._req_delay is not None
            and self._resp_delay is not None
            and self._issue_delay is not None
        ):
            return True
        # Dynamic models may still promise order preservation explicitly
        # (e.g. a what-if override scaling a constant base per component).
        return self.config.latency.fifo_memory_ops

    def correct_processes(self) -> List[ProcessId]:
        return [
            ProcessId(p)
            for p in range(self.config.n_processes)
            if not self.is_faulty(ProcessId(p))
        ]

    def memory(self, mid: int) -> Memory:
        return self.memories[mid]


class _ParkedType:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<parked>"


_PARKED = _ParkedType()
