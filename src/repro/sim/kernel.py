"""The simulation kernel: tasks, effects, virtual time, failures.

One :class:`Kernel` simulates one M&M system: ``n`` processes (each running
one or more generator *tasks*), ``m`` memories, a message network, a
signature authority and a metrics ledger.  The kernel is single-threaded and
deterministic: all scheduling flows through a time-ordered event queue with
FIFO tie-breaking, and all randomness through one seeded ``Random``.

Timing semantics (paper Section 3, "Complexity of algorithms"):

* computation is instantaneous — a resumed task runs through any number of
  non-blocking effects (sends, memory-op invocations, spawns) at the same
  virtual instant until it parks on a wait/recv/sleep;
* a message takes ``latency.message_delay`` (nominal: 1 unit);
* a memory operation takes a request leg plus a response leg (nominal: 2).

Failure semantics:

* a crashed process never runs again and its inbox is dropped;
* a crashed memory silently swallows requests — the invoking future simply
  never resolves, indistinguishable from slowness;
* a Byzantine process runs whatever strategy generator was installed, but
  the memories still enforce permissions and the signature authority still
  only gives it its own key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Set

from repro.crypto.signatures import SignatureAuthority
from repro.errors import OutstandingOpError, SimulationError
from repro.mem.layout import MemoryLayout
from repro.mem.memory import Memory
from repro.metrics.ledger import MetricsLedger
from repro.net.messages import Envelope
from repro.net.network import Network, RecvWaiter
from repro.sim.effects import (
    Effect,
    GateWaitEffect,
    InvokeEffect,
    RecvEffect,
    SendEffect,
    SleepEffect,
    SpawnEffect,
    WaitEffect,
)
from repro.sim.event_queue import EventQueue
from repro.sim.futures import OpFuture
from repro.sim.latency import LatencyModel, NominalLatency
from repro.sim.tracing import Tracer
from repro.types import MemoryId, ProcessId, memory_name, process_name

#: Ω failure-detector oracle: maps virtual time to the current leader pid.
OmegaFn = Callable[[float], int]


@dataclass
class SimConfig:
    """Static configuration of one simulation."""

    n_processes: int
    n_memories: int = 0
    latency: LatencyModel = field(default_factory=NominalLatency)
    seed: int = 0
    trace: bool = False
    strict_safety: bool = True
    #: enforce the model's one-outstanding-op-per-memory rule per task
    strict_outstanding: bool = False
    #: cap on same-instant effects one task may run (runaway detector)
    max_inline_steps: int = 100_000
    #: Ω oracle; default: p1 is always the leader
    omega: Optional[OmegaFn] = None
    #: the disk model of Section 3 has no links: sending raises
    links_enabled: bool = True

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("need at least one process")
        if self.n_memories < 0:
            raise ValueError("n_memories must be >= 0")


class Task:
    """One generator running on one process."""

    __slots__ = (
        "task_id",
        "pid",
        "name",
        "gen",
        "started",
        "done",
        "result",
        "daemon",
        "pending_token",
        "_token_counter",
        "outstanding",
    )

    def __init__(self, task_id: int, pid: ProcessId, name: str, gen: Generator, daemon: bool):
        self.task_id = task_id
        self.pid = pid
        self.name = name
        self.gen = gen
        self.started = False
        self.done = False
        self.result: Any = None
        self.daemon = daemon
        self.pending_token: Optional[int] = None
        self._token_counter = 0
        self.outstanding: Dict[MemoryId, int] = {}

    def new_token(self) -> int:
        self._token_counter += 1
        self.pending_token = self._token_counter
        return self._token_counter

    @property
    def label(self) -> str:
        return f"{process_name(self.pid)}/{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("parked" if self.pending_token else "ready")
        return f"<Task {self.label} {state}>"


class Kernel:
    """Deterministic discrete-event simulator of one M&M system."""

    def __init__(self, config: SimConfig, layout: Optional[MemoryLayout] = None):
        self.config = config
        self.now = 0.0
        self.queue = EventQueue()
        self.rng = random.Random(config.seed)
        self.tracer = Tracer(enabled=config.trace)
        self.metrics = MetricsLedger(strict_safety=config.strict_safety)
        self.network = Network(config.n_processes)
        self.layout = layout or MemoryLayout([])
        self.memories: List[Memory] = [
            Memory(MemoryId(mid), self.layout) for mid in range(config.n_memories)
        ]
        self.authority = SignatureAuthority(seed=config.seed)
        self.crashed_processes: Set[ProcessId] = set()
        self.byzantine_processes: Set[ProcessId] = set()
        self.tasks: List[Task] = []
        self._task_ids = iter(range(1, 1 << 30))
        self.omega: OmegaFn = config.omega or (lambda now: 0)

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------
    def spawn(self, pid: ProcessId, name: str, gen: Generator, daemon: bool = False) -> Task:
        """Register *gen* as a task of process *pid*; first step runs at ``now``."""
        task = Task(next(self._task_ids), ProcessId(pid), name, gen, daemon)
        self.tasks.append(task)
        self.tracer.record(self.now, "spawn", task.label)
        self.queue.push(self.now, lambda: self._resume(task, None))
        return task

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run *fn* at virtual *time* (used by failure plans)."""
        self.queue.push(max(time, self.now), fn)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def crash_process(self, pid: ProcessId) -> None:
        """Crash *pid* now: its tasks never run again, inbox dropped."""
        pid = ProcessId(pid)
        if pid in self.crashed_processes:
            return
        self.crashed_processes.add(pid)
        self.network.drop_process(pid)
        self.tracer.record(self.now, "crash_proc", process_name(pid))

    def crash_memory(self, mid: MemoryId) -> None:
        """Crash memory *mid* now: subsequent operations on it hang."""
        memory = self.memories[mid]
        if not memory.crashed:
            memory.crash()
            self.tracer.record(self.now, "crash_mem", memory_name(mid))

    def mark_byzantine(self, pid: ProcessId) -> None:
        """Exempt *pid* from agreement accounting (its strategy is installed
        by the cluster runner)."""
        pid = ProcessId(pid)
        self.byzantine_processes.add(pid)
        self.metrics.byzantine.add(pid)

    def is_faulty(self, pid: ProcessId) -> bool:
        return pid in self.crashed_processes or pid in self.byzantine_processes

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the queue drains, *until* passes, or
        *stop_when* returns True.  Returns the final virtual time."""
        processed = 0
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time > until:
                break
            if stop_when is not None and stop_when():
                break
            time, fn = self.queue.pop()
            if time < self.now:
                raise SimulationError(f"time went backwards: {time} < {self.now}")
            self.now = time
            fn()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        return self.now

    def run_until_decided(
        self,
        pids: Optional[Set[ProcessId]] = None,
        deadline: float = 10_000.0,
    ) -> bool:
        """Run until every pid in *pids* (default: all correct) decided.

        Returns True when the goal was reached before *deadline*.
        """
        if pids is None:
            pids = {
                ProcessId(p)
                for p in range(self.config.n_processes)
                if not self.is_faulty(ProcessId(p))
            }

        def goal() -> bool:
            return all(p in self.metrics.decisions for p in pids)

        self.run(until=deadline, stop_when=goal)
        return goal()

    # ------------------------------------------------------------------
    # task stepping
    # ------------------------------------------------------------------
    def _resume(self, task: Task, value: Any) -> None:
        if task.done or task.pid in self.crashed_processes:
            return
        task.pending_token = None
        steps = 0
        while True:
            try:
                if task.started:
                    effect = task.gen.send(value)
                else:
                    task.started = True
                    effect = task.gen.send(None)
            except StopIteration as stop:
                task.done = True
                task.result = stop.value
                self.tracer.record(self.now, "task_done", task.label, result=stop.value)
                return
            steps += 1
            if steps > self.config.max_inline_steps:
                raise SimulationError(
                    f"task {task.label} ran {steps} effects at t={self.now} "
                    "without parking (runaway loop?)"
                )
            value = self._perform(task, effect)
            if value is _PARKED:
                return

    def _perform(self, task: Task, effect: Effect) -> Any:
        """Execute one effect; return the resume value or ``_PARKED``."""
        if isinstance(effect, SendEffect):
            self._send(task, effect)
            return None
        if isinstance(effect, InvokeEffect):
            return self._invoke(task, effect)
        if isinstance(effect, WaitEffect):
            self._wait(task, effect)
            return _PARKED
        if isinstance(effect, RecvEffect):
            return self._recv(task, effect)
        if isinstance(effect, SleepEffect):
            token = task.new_token()
            self.queue.push(self.now + effect.duration, lambda: self._wake(task, token, None))
            return _PARKED
        if isinstance(effect, GateWaitEffect):
            self._gate_wait(task, effect)
            return _PARKED
        if isinstance(effect, SpawnEffect):
            return self.spawn(task.pid, effect.name, effect.gen, daemon=effect.daemon)
        raise SimulationError(f"task {task.label} yielded non-effect {effect!r}")

    def _wake(self, task: Task, token: int, value: Any) -> None:
        """Resume *task* if suspension *token* is still pending."""
        if task.done or task.pending_token != token:
            return
        if task.pid in self.crashed_processes:
            return
        task.pending_token = None
        self.queue.push(self.now, lambda: self._resume(task, value))

    # ------------------------------------------------------------------
    # effect implementations
    # ------------------------------------------------------------------
    def _send(self, task: Task, effect: SendEffect) -> None:
        if not self.config.links_enabled:
            raise SimulationError(
                f"{task.label} sent a message in the link-free disk model"
            )
        env = Envelope(
            src=task.pid,
            dst=ProcessId(effect.dst),
            topic=effect.topic,
            payload=effect.payload,
            sent_at=self.now,
        )
        self.metrics.count_message(task.pid)
        delay = self.config.latency.message_delay(task.pid, env.dst, self.now, self.rng)
        self.tracer.record(
            self.now, "send", task.label, dst=process_name(env.dst), topic=effect.topic
        )
        self.queue.push(self.now + delay, lambda: self._deliver(env))

    def _deliver(self, env: Envelope) -> None:
        if env.dst in self.crashed_processes:
            return
        self.tracer.record(
            self.now, "deliver", process_name(env.dst), src=process_name(env.src), topic=env.topic
        )
        waiter = self.network.deliver(env)
        if waiter is not None:
            waiter.wake(env)

    def _invoke(self, task: Task, effect: InvokeEffect) -> OpFuture:
        mid = MemoryId(effect.mid)
        if mid >= len(self.memories):
            raise SimulationError(f"no such memory mu{int(mid) + 1}")
        if self.config.strict_outstanding:
            if task.outstanding.get(mid, 0) >= 1:
                raise OutstandingOpError(
                    f"{task.label} already has an outstanding op on {memory_name(mid)}"
                )
        task.outstanding[mid] = task.outstanding.get(mid, 0) + 1
        future = OpFuture(task.pid, mid, effect.op)
        self.metrics.count_mem_op(task.pid, type(effect.op).__name__)
        memory = self.memories[mid]
        req = self.config.latency.memory_request_delay(task.pid, mid, self.now, self.rng)
        self.tracer.record(
            self.now, "invoke", task.label, mem=memory_name(mid), op=type(effect.op).__name__
        )

        def arrive() -> None:
            if memory.crashed:
                self.tracer.record(self.now, "mem_drop", memory_name(mid))
                return  # the future never resolves: the op hangs
            result = memory.apply(task.pid, effect.op)
            resp = self.config.latency.memory_response_delay(task.pid, mid, self.now, self.rng)
            self.queue.push(self.now + resp, lambda: self._resolve(task, future, result))

        self.queue.push(self.now + req, arrive)
        return future

    def _resolve(self, task: Task, future: OpFuture, result) -> None:
        task.outstanding[future.mid] = max(0, task.outstanding.get(future.mid, 1) - 1)
        self.tracer.record(
            self.now,
            "op_result",
            task.label,
            mem=memory_name(future.mid),
            status=result.status.value,
        )
        for notify in future.resolve(result):
            notify()

    def _wait(self, task: Task, effect: WaitEffect) -> None:
        token = task.new_token()
        futures = tuple(effect.futures)
        needed = effect.count

        def check() -> None:
            if sum(1 for f in futures if f.done) >= needed:
                self._wake(task, token, True)

        if needed <= 0 or sum(1 for f in futures if f.done) >= needed:
            self.queue.push(self.now, lambda: self._wake(task, token, True))
            return
        for f in futures:
            f.add_waiter(check)
        if effect.timeout is not None:
            self.queue.push(
                self.now + effect.timeout, lambda: self._wake(task, token, False)
            )

    def _recv(self, task: Task, effect: RecvEffect) -> Any:
        env = self.network.try_consume(task.pid, effect.topic, effect.match)
        if env is not None:
            return env
        token = task.new_token()
        waiter = RecvWaiter(
            pid=task.pid,
            token=token,
            topic=effect.topic,
            match=effect.match,
            wake=lambda e: self._wake(task, token, e),
        )
        self.network.park(waiter)
        if effect.timeout is not None:

            def timeout_fired() -> None:
                self.network.unpark(task.pid, token)
                self._wake(task, token, None)

            self.queue.push(self.now + effect.timeout, timeout_fired)
        return _PARKED

    def _gate_wait(self, task: Task, effect: GateWaitEffect) -> None:
        token = task.new_token()
        effect.gate.add_waiter(lambda: self._wake(task, token, True))
        if effect.timeout is not None:
            self.queue.push(self.now + effect.timeout, lambda: self._wake(task, token, False))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def correct_processes(self) -> List[ProcessId]:
        return [
            ProcessId(p)
            for p in range(self.config.n_processes)
            if not self.is_faulty(ProcessId(p))
        ]

    def memory(self, mid: int) -> Memory:
        return self.memories[mid]


class _ParkedType:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<parked>"


_PARKED = _ParkedType()
