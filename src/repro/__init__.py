"""repro — a reproduction of *The Impact of RDMA on Agreement* (PODC 2019).

The package simulates the paper's message-and-memory (M&M) model —
processes plus fail-prone shared memories with dynamically permissioned
regions, the abstraction RDMA provides — and implements every algorithm the
paper introduces, alongside the baselines it compares against:

* **Fast & Robust** (`FastRobust`): 2-deciding weak Byzantine agreement
  with ``n >= 2f_P + 1`` (Theorem 4.9), composed from **Cheap Quorum** and
  **Preferential Paxos** over **Robust Backup**.
* **Protected Memory Paxos** (`ProtectedMemoryPaxos`): 2-deciding crash
  consensus with ``n >= f_P + 1`` (Theorem 5.1).
* **Aligned Paxos** (`AlignedPaxos`): survives any minority of combined
  process+memory crashes (Section 5.2).
* Baselines: `MessagePaxos`, `FastPaxos`, `DiskPaxos`.

Quickstart::

    from repro import ProtectedMemoryPaxos, run_consensus

    result = run_consensus(ProtectedMemoryPaxos(), n_processes=3, n_memories=3)
    print(result.decisions, result.earliest_decision_delay)  # 2 delays
"""

from repro.consensus.aligned_paxos import AlignedConfig, AlignedPaxos
from repro.consensus.ballots import Ballot
from repro.consensus.cheap_quorum import CheapQuorum, CheapQuorumConfig, CqOutcome
from repro.consensus.disk_paxos import DiskPaxos, DiskPaxosConfig
from repro.consensus.fast_paxos import FastPaxos, FastPaxosConfig
from repro.consensus.fast_robust import FastRobust, FastRobustConfig
from repro.consensus.message_paxos import MessagePaxos
from repro.consensus.omega import crash_aware_omega, leader_schedule, stable_leader
from repro.consensus.paxos import PaxosConfig
from repro.consensus.preferential_paxos import PreferentialPaxosConfig
from repro.consensus.protected_memory_paxos import PmpConfig, ProtectedMemoryPaxos
from repro.consensus.robust_backup import RobustBackup
from repro.core.cluster import (
    Cluster,
    ClusterConfig,
    MultiGroupCluster,
    RunResult,
    run_consensus,
)
from repro.failures.byzantine import (
    ByzantineStrategy,
    CheapQuorumEquivocatorLeader,
    EquivocatingBroadcaster,
    PaxosValueLiar,
    PermissionAbuser,
    ProofForger,
    SilentByzantine,
    SlotRewriter,
)
from repro.failures.plans import FaultPlan
from repro.reconfig import (
    AddReplica,
    Autoscaler,
    AutoscalerConfig,
    ElasticConfig,
    ElasticKV,
    MergeShard,
    MoveLeader,
    RemoveReplica,
    SplitShard,
)
from repro.failures.script import FaultScript
from repro.sim.faults import LinkFault
from repro.shard import (
    ClosedLoopClient,
    ConsistentHashPartitioner,
    OpenLoopClient,
    OperationMix,
    READ_CONSENSUS,
    READ_LEADER,
    READ_LOCAL,
    READ_MODES,
    READ_QUORUM,
    ReadSession,
    ScriptedClient,
    ShardConfig,
    ShardedKV,
    UniformKeys,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    ZipfianKeys,
)
from repro.sim.latency import (
    AdversarialLatency,
    JitteredSynchrony,
    NominalLatency,
    PartialSynchrony,
)
from repro.smr import (
    Batch,
    ByzantineLogConfig,
    ByzantineReplicatedLog,
    KVCommand,
    KVStateMachine,
    ReplicatedLog,
    SmrConfig,
)
from repro.types import BOTTOM, OpStatus

__version__ = "1.0.0"

__all__ = [
    "AddReplica",
    "AdversarialLatency",
    "AlignedConfig",
    "AlignedPaxos",
    "Autoscaler",
    "AutoscalerConfig",
    "BOTTOM",
    "Ballot",
    "Batch",
    "ByzantineLogConfig",
    "ByzantineReplicatedLog",
    "ByzantineStrategy",
    "CheapQuorum",
    "CheapQuorumConfig",
    "CheapQuorumEquivocatorLeader",
    "ClosedLoopClient",
    "Cluster",
    "ClusterConfig",
    "ConsistentHashPartitioner",
    "CqOutcome",
    "DiskPaxos",
    "DiskPaxosConfig",
    "ElasticConfig",
    "ElasticKV",
    "EquivocatingBroadcaster",
    "FastPaxos",
    "FastPaxosConfig",
    "FastRobust",
    "FastRobustConfig",
    "FaultPlan",
    "FaultScript",
    "JitteredSynchrony",
    "KVCommand",
    "LinkFault",
    "KVStateMachine",
    "MergeShard",
    "MessagePaxos",
    "MoveLeader",
    "MultiGroupCluster",
    "NominalLatency",
    "OpStatus",
    "OpenLoopClient",
    "OperationMix",
    "PaxosConfig",
    "PaxosValueLiar",
    "PartialSynchrony",
    "PermissionAbuser",
    "ProofForger",
    "PmpConfig",
    "PreferentialPaxosConfig",
    "ProtectedMemoryPaxos",
    "READ_CONSENSUS",
    "READ_LEADER",
    "READ_LOCAL",
    "READ_MODES",
    "READ_QUORUM",
    "ReadSession",
    "RemoveReplica",
    "ReplicatedLog",
    "RobustBackup",
    "RunResult",
    "ScriptedClient",
    "ShardConfig",
    "ShardedKV",
    "SilentByzantine",
    "SlotRewriter",
    "SmrConfig",
    "SplitShard",
    "UniformKeys",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "ZipfianKeys",
    "crash_aware_omega",
    "leader_schedule",
    "run_consensus",
    "stable_leader",
]
