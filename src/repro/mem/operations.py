"""Memory operations a process can invoke (paper Section 3).

``read``/``write`` address a single register within a region.  ``snapshot``
reads every register of one region sharing a key prefix in a single
operation — the RDMA analogue of reading a contiguous slot array with one
verb (Section 7 describes slot arrays being read this way), and it costs the
same two delays as any other memory operation.  ``changePermission``
requests a permission change, subject to the region's ``legalChange``.

Dispatch contract: each operation class carries an integer ``kind`` tag
(one of the ``OP_*`` constants) so the memory applies ops through a flat
handler table instead of an isinstance chain — the same discipline as the
kernel's effect dispatch.  The numbering is dense and stable; new
operations append.  Operations are allocated on the simulation hot path,
so they are hand-written ``__slots__`` value objects (register keys are
normalised to tuples once, at construction); treat instances as immutable.
"""

from __future__ import annotations

from typing import Any

from repro.mem.permissions import Permission
from repro.types import RegionId, RegisterKey

OP_READ = 0
OP_WRITE = 1
OP_SNAPSHOT = 2
OP_CHANGE_PERMISSION = 3
OP_PROBE = 4
OP_READ_SNAPSHOT = 5
OP_BATCH = 6


class _OpBase:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    __hash__ = None


class ReadOp(_OpBase):
    """Read one register. Resolves to ``OpResult(ACK, value)`` or NAK."""

    __slots__ = ("region", "key")
    kind = OP_READ

    def __init__(self, region: RegionId, key: RegisterKey) -> None:
        self.region = region
        self.key = tuple(key)


class WriteOp(_OpBase):
    """Write one register. Resolves to ``OpResult(ACK)`` or NAK."""

    __slots__ = ("region", "key", "value")
    kind = OP_WRITE

    def __init__(self, region: RegionId, key: RegisterKey, value: Any = None) -> None:
        self.region = region
        self.key = tuple(key)
        self.value = value


class SnapshotOp(_OpBase):
    """Read all registers of *region* whose key starts with *prefix*.

    Resolves to ``OpResult(ACK, {key: value, ...})`` containing only
    registers that have been written; callers treat absent keys as ``⊥``.
    """

    __slots__ = ("region", "prefix")
    kind = OP_SNAPSHOT

    def __init__(self, region: RegionId, prefix: RegisterKey) -> None:
        self.region = region
        self.prefix = tuple(prefix)


class ChangePermissionOp(_OpBase):
    """Request a permission change on *region*.

    The memory evaluates the region's ``legalChange`` policy; an illegal
    change is a no-op (the paper's semantics).  The result status reports
    whether the change took effect (ACK) or was a no-op (NAK) — protocols in
    the paper never rely on this status, but tests do.
    """

    __slots__ = ("region", "new_permission")
    kind = OP_CHANGE_PERMISSION

    def __init__(self, region: RegionId, new_permission: Permission) -> None:
        self.region = region
        self.new_permission = new_permission


class ProbeOp(_OpBase):
    """A zero-length permission probe: does the caller hold *access*?

    The RDMA idiom is a zero-byte verb posted on the queue pair: it moves
    no data, but it completes successfully only if the caller's permission
    on the region is still installed — which is exactly the fence check a
    Protected-Memory-Paxos leader needs before serving a linearizable
    read from local state.  ``access`` is ``"write"`` (the exclusive-grant
    fence) or ``"read"``.  Resolves to ``OpResult(ACK)`` when the
    permission is held, NAK otherwise; no register is touched either way.
    """

    __slots__ = ("region", "access")
    kind = OP_PROBE

    def __init__(self, region: RegionId, access: str = "write") -> None:
        if access not in ("read", "write"):
            raise ValueError(f"unknown probe access {access!r}")
        self.region = region
        self.access = access


class ReadSnapshotOp(_OpBase):
    """Snapshot a slot array, skipping integer-indexed entries below *floor*.

    The quorum read path's op: a reader that has already applied slots
    ``< floor`` asks each memory only for the suffix it is missing (plus
    any non-integer-indexed registers, e.g. commit watermarks) — the
    doorbell/merge discipline of batching one bounded read per memory
    instead of re-transferring the whole region per read.  Filtering
    happens at the memory (the RDMA analogue of an offset read), so the
    response payload stays proportional to the reader's lag, not to the
    log length.  Same permission rule and two-delay cost as
    :class:`SnapshotOp`; ``floor=None`` degenerates to a plain snapshot.

    A register rides the response iff its key extends *prefix* and the
    key component right after the prefix is either not an ``int`` (named
    registers always ride along) or ``>= floor``.
    """

    __slots__ = ("region", "prefix", "floor")
    kind = OP_READ_SNAPSHOT

    def __init__(
        self, region: RegionId, prefix: RegisterKey, floor: Any = None
    ) -> None:
        self.region = region
        self.prefix = tuple(prefix)
        self.floor = floor


class BatchOp(_OpBase):
    """A doorbell-batched chain of operations against **one** memory.

    The RDMA idiom (Snippet-3-style ``BeginBatch``/``FinishBatch``): N work
    requests posted through one doorbell, with only the last WR signalled —
    one queue entry out, one completion back, however long the chain.  The
    memory applies the sub-operations **in order, atomically at the chain's
    arrival instant**; the first NAK aborts the remainder (the QP error
    flush) and the chain resolves to
    ``OpResult(NAK, ChainAbort(failed_index, partial))``.  A fully-ACKed
    chain resolves to ``OpResult(ACK, tuple_of_sub_values)``.

    Chains do not nest — a batch inside a batch is a construction error,
    exactly as a WR list cannot contain another WR list.  ``regions`` is
    the precomputed tuple of distinct region ids the chain touches (in
    first-touch order): the explorer's dependency relation uses it as the
    chain's conservative footprint.
    """

    __slots__ = ("ops", "regions")
    kind = OP_BATCH

    def __init__(self, ops) -> None:
        ops = tuple(ops)
        regions = []
        for op in ops:
            if getattr(op, "kind", None) == OP_BATCH:
                raise ValueError("batched op chains do not nest")
            region = getattr(op, "region", None)
            if region is None:
                raise ValueError(f"{op!r} is not a memory operation")
            if region not in regions:
                regions.append(region)
        self.ops = ops
        self.regions = tuple(regions)

    def __len__(self) -> int:
        return len(self.ops)


MemoryOp = (
    ReadOp
    | WriteOp
    | SnapshotOp
    | ChangePermissionOp
    | ProbeOp
    | ReadSnapshotOp
    | BatchOp
)
