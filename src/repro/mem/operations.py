"""Memory operations a process can invoke (paper Section 3).

``read``/``write`` address a single register within a region.  ``snapshot``
reads every register of one region sharing a key prefix in a single
operation — the RDMA analogue of reading a contiguous slot array with one
verb (Section 7 describes slot arrays being read this way), and it costs the
same two delays as any other memory operation.  ``changePermission``
requests a permission change, subject to the region's ``legalChange``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.mem.permissions import Permission
from repro.types import RegionId, RegisterKey


@dataclass(frozen=True)
class ReadOp:
    """Read one register. Resolves to ``OpResult(ACK, value)`` or NAK."""

    region: RegionId
    key: RegisterKey


@dataclass(frozen=True)
class WriteOp:
    """Write one register. Resolves to ``OpResult(ACK)`` or NAK."""

    region: RegionId
    key: RegisterKey
    value: Any


@dataclass(frozen=True)
class SnapshotOp:
    """Read all registers of *region* whose key starts with *prefix*.

    Resolves to ``OpResult(ACK, {key: value, ...})`` containing only
    registers that have been written; callers treat absent keys as ``⊥``.
    """

    region: RegionId
    prefix: RegisterKey


@dataclass(frozen=True)
class ChangePermissionOp:
    """Request a permission change on *region*.

    The memory evaluates the region's ``legalChange`` policy; an illegal
    change is a no-op (the paper's semantics).  The result status reports
    whether the change took effect (ACK) or was a no-op (NAK) — protocols in
    the paper never rely on this status, but tests do.
    """

    region: RegionId
    new_permission: Permission


MemoryOp = ReadOp | WriteOp | SnapshotOp | ChangePermissionOp
