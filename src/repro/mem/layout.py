"""Memory layouts: the set of regions every memory replica boots with.

Protocols contribute :class:`~repro.mem.regions.RegionSpec` lists; a cluster
merges them into one :class:`MemoryLayout` that every memory is initialised
from.  Since replicated registers place the *same* region structure on every
memory, one layout describes all memories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.mem.regions import RegionSpec
from repro.types import RegionId, RegisterKey


@dataclass
class MemoryLayout:
    """An ordered collection of non-overlapping region specifications."""

    regions: List[RegionSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id: Dict[RegionId, RegionSpec] = {}
        for spec in self.regions:
            self._register(spec)

    def _register(self, spec: RegionSpec) -> None:
        if spec.region_id in self._by_id:
            raise ConfigurationError(f"duplicate region id {spec.region_id!r}")
        for existing in self._by_id.values():
            if existing.overlaps(spec):
                raise ConfigurationError(
                    f"region {spec.region_id!r} overlaps {existing.region_id!r}; "
                    "the paper's algorithms use non-overlapping regions"
                )
        self._by_id[spec.region_id] = spec

    def add(self, spec: RegionSpec) -> None:
        """Add one region, rejecting duplicates and overlaps."""
        self._register(spec)
        self.regions.append(spec)

    def extend(self, specs: Iterable[RegionSpec]) -> None:
        for spec in specs:
            self.add(spec)

    def merged_with(self, other: "MemoryLayout") -> "MemoryLayout":
        """A new layout combining this one's regions with *other*'s."""
        merged = MemoryLayout(list(self.regions))
        merged.extend(other.regions)
        return merged

    def by_id(self, region_id: RegionId) -> Optional[RegionSpec]:
        """The region spec named *region_id*, or None."""
        return self._by_id.get(region_id)

    def region_for(self, key: RegisterKey) -> Optional[RegionSpec]:
        """The unique region containing register *key*, or None."""
        for spec in self.regions:
            if spec.contains(key):
                return spec
        return None

    def region_ids(self) -> List[RegionId]:
        return [spec.region_id for spec in self.regions]
