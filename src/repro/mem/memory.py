"""One shared memory: registers + per-region permission state + crash flag.

The memory applies operations atomically at their arrival instant (the
simulation kernel delivers one request at a time), which yields atomic
registers per memory; the replicated-register layer in
:mod:`repro.registers` weakens this to the paper's regular registers when a
logical register spans several memories.

A crashed memory never responds: the kernel drops requests addressed to it,
so callers' futures simply never resolve — indistinguishable from slowness,
as the model requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.mem.layout import MemoryLayout
from repro.mem.operations import (
    BatchOp,
    ChangePermissionOp,
    MemoryOp,
    ProbeOp,
    ReadOp,
    ReadSnapshotOp,
    SnapshotOp,
    WriteOp,
)
from repro.mem.permissions import Permission
from repro.types import (
    BOTTOM,
    ChainAbort,
    MemoryId,
    OpResult,
    OpStatus,
    ProcessId,
    RegionId,
    RegisterKey,
)

_ACK = OpStatus.ACK
_NAK = OpStatus.NAK

# Writes and refusals carry no value: share one immutable result each
# instead of allocating per operation.
_ACK_RESULT = OpResult(_ACK)
_NAK_RESULT = OpResult(_NAK)


@dataclass
class OpCounts:
    """Operation counters kept per memory (used by metrics and tests)."""

    reads: int = 0
    writes: int = 0
    snapshots: int = 0
    permission_changes: int = 0
    probes: int = 0
    batches: int = 0
    naks: int = 0


class Memory:
    """A single fail-prone shared memory (one of the paper's ``mu_i``)."""

    def __init__(self, mid: MemoryId, layout: MemoryLayout) -> None:
        self.mid = mid
        self.layout = layout
        self.registers: Dict[RegisterKey, Any] = {}
        self.permissions: Dict[RegionId, Permission] = {
            spec.region_id: spec.initial_permission for spec in layout.regions
        }
        self.crashed = False
        self.counts = OpCounts()
        # Flat handler table indexed by the operation's ``kind`` tag
        # (see repro.mem.operations); order must match the OP_* numbering.
        self._op_handlers = (self._read, self._write, self._snapshot,
                             self._change_permission, self._probe,
                             self._read_snapshot, self._batch)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash this memory; subsequent operations hang (kernel drops them)."""
        self.crashed = True

    def recover(self, wipe: bool = False) -> None:
        """Revive this memory; operations resolve again from now on.

        Without *wipe* the regions come back intact — registers and
        permission state exactly as they were at the crash (the memory was
        merely unreachable).  With *wipe* the revival models replacing the
        hardware: registers are cleared and every region's permission is
        reset to its initial declaration.
        """
        self.crashed = False
        if wipe:
            self.registers.clear()
            self.permissions = {
                spec.region_id: spec.initial_permission for spec in self.layout.regions
            }

    def add_region(self, spec) -> None:
        """Install a region registered after boot (elastic reconfiguration).

        The layout object is shared by every memory, so the kernel adds
        the spec there once and calls this per memory to install the
        boot permission.  Idempotent per region id — a crashed memory's
        permission state is hardware state, present when it revives, and
        a coordinator retrying after its own crash must not reset a
        permission the first attempt already moved.
        """
        self.permissions.setdefault(spec.region_id, spec.initial_permission)

    # ------------------------------------------------------------------
    # operation processing
    # ------------------------------------------------------------------
    def apply(self, pid: ProcessId, op: MemoryOp) -> OpResult:
        """Apply *op* on behalf of *pid* and return its result.

        Permission failures return ``nak`` rather than raising — a Byzantine
        process is free to *try* anything; the memory is the enforcement
        point (the paper's small trusted component).
        """
        kind = getattr(op, "kind", None)
        if kind.__class__ is not int or not 0 <= kind < len(self._op_handlers):
            raise TypeError(f"unknown memory operation {op!r}")
        return self._op_handlers[kind](pid, op)

    def _spec_and_permission(self, region_id: RegionId):
        spec = self.layout.by_id(region_id)
        if spec is None:
            return None, None
        return spec, self.permissions[region_id]

    def _read(self, pid: ProcessId, op: ReadOp) -> OpResult:
        self.counts.reads += 1
        spec, perm = self._spec_and_permission(op.region)
        if spec is None or not spec.contains(op.key) or not perm.can_read(pid):
            self.counts.naks += 1
            return _NAK_RESULT
        return OpResult(_ACK, self.registers.get(op.key, BOTTOM))

    def _write(self, pid: ProcessId, op: WriteOp) -> OpResult:
        self.counts.writes += 1
        spec, perm = self._spec_and_permission(op.region)
        if spec is None or not spec.contains(op.key) or not perm.can_write(pid):
            self.counts.naks += 1
            return _NAK_RESULT
        self.registers[op.key] = op.value
        return _ACK_RESULT

    def _snapshot(self, pid: ProcessId, op: SnapshotOp) -> OpResult:
        self.counts.snapshots += 1
        spec, perm = self._spec_and_permission(op.region)
        if spec is None or not perm.can_read(pid):
            self.counts.naks += 1
            return _NAK_RESULT
        prefix = op.prefix
        if not spec.contains(prefix):
            self.counts.naks += 1
            return _NAK_RESULT
        view = {
            key: value
            for key, value in self.registers.items()
            if key[: len(prefix)] == prefix
        }
        return OpResult(_ACK, view)

    def _probe(self, pid: ProcessId, op: ProbeOp) -> OpResult:
        self.counts.probes += 1
        spec, perm = self._spec_and_permission(op.region)
        if spec is None:
            self.counts.naks += 1
            return _NAK_RESULT
        held = perm.can_write(pid) if op.access == "write" else perm.can_read(pid)
        if not held:
            self.counts.naks += 1
            return _NAK_RESULT
        return _ACK_RESULT

    def _read_snapshot(self, pid: ProcessId, op: ReadSnapshotOp) -> OpResult:
        self.counts.snapshots += 1
        spec, perm = self._spec_and_permission(op.region)
        if spec is None or not perm.can_read(pid):
            self.counts.naks += 1
            return _NAK_RESULT
        prefix = op.prefix
        if not spec.contains(prefix):
            self.counts.naks += 1
            return _NAK_RESULT
        floor = op.floor
        cut = len(prefix)
        view = {}
        for key, value in self.registers.items():
            if key[:cut] != prefix:
                continue
            if floor is not None and len(key) > cut:
                index = key[cut]
                if isinstance(index, int) and index < floor:
                    continue
            view[key] = value
        return OpResult(_ACK, view)

    def _batch(self, pid: ProcessId, op: BatchOp) -> OpResult:
        """Apply a work-request chain: sub-ops in order, abort on first NAK.

        The whole chain executes atomically at its arrival instant — the
        kernel delivers one request at a time, so no other operation can
        interleave between two sub-ops of the same chain.  A NAK (e.g. the
        region's permission was revoked between the chain being posted and
        arriving) aborts the unapplied tail and reports the failing index,
        matching how a QP error flushes the remaining work requests.
        """
        self.counts.batches += 1
        handlers = self._op_handlers
        values = []
        for index, sub in enumerate(op.ops):
            result = handlers[sub.kind](pid, sub)
            if not result.ok:
                return OpResult(_NAK, ChainAbort(index, tuple(values)))
            values.append(result.value)
        return OpResult(_ACK, tuple(values))

    def _change_permission(self, pid: ProcessId, op: ChangePermissionOp) -> OpResult:
        self.counts.permission_changes += 1
        spec, perm = self._spec_and_permission(op.region)
        if spec is None:
            self.counts.naks += 1
            return _NAK_RESULT
        if not spec.legal_change(pid, perm, op.new_permission):
            # Illegal change: a no-op per the model.  NAK status is
            # informational; the permission state is untouched.
            self.counts.naks += 1
            return _NAK_RESULT
        self.permissions[op.region] = op.new_permission
        return _ACK_RESULT

    # ------------------------------------------------------------------
    # introspection helpers (tests, debugging)
    # ------------------------------------------------------------------
    def peek(self, key: RegisterKey) -> Any:
        """Read a register without permission checks (test helper only)."""
        return self.registers.get(tuple(key), BOTTOM)

    def permission_of(self, region_id: RegionId) -> Permission:
        return self.permissions[region_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<Memory mu{int(self.mid) + 1} {state} {len(self.registers)} regs>"
