"""Memory regions: named sets of registers with a permission (Section 3).

A region is identified by a short string id and *contains* every register
whose structured key starts with the region's key prefix.  This mirrors how
RDMA registers a contiguous buffer: the registers of one region live side by
side, and a single verb can read the whole array (:class:`SnapshotOp`).

Regions may in principle overlap (the model allows it); the algorithms in
the paper never use overlapping regions, and :class:`~repro.mem.layout.MemoryLayout`
rejects overlapping prefixes to catch configuration mistakes early.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.permissions import LegalChangeFn, Permission, static_permissions
from repro.types import RegionId, RegisterKey


@dataclass(frozen=True)
class RegionSpec:
    """Declarative description of one memory region.

    Attributes:
        region_id: unique short name, e.g. ``"pmp:slots"``.
        prefix: the region contains every register key starting with this
            tuple prefix.
        initial_permission: permission installed when the memory boots.
        legal_change: ``legalChange`` policy for this region; defaults to
            static permissions (all changes are no-ops).
    """

    region_id: RegionId
    prefix: RegisterKey
    initial_permission: Permission
    legal_change: LegalChangeFn = field(default=static_permissions, compare=False)

    def __post_init__(self) -> None:
        # Normalised once so the per-operation prefix compare in
        # ``contains`` allocates nothing.
        object.__setattr__(self, "prefix", tuple(self.prefix))

    def contains(self, key: RegisterKey) -> bool:
        """True if register *key* belongs to this region (prefix match).

        *key* must be a tuple (operations normalise theirs at construction).
        """
        prefix = self.prefix
        return len(key) >= len(prefix) and key[: len(prefix)] == prefix

    def overlaps(self, other: "RegionSpec") -> bool:
        """True if the two regions could share a register."""
        shorter, longer = sorted((self.prefix, other.prefix), key=len)
        return tuple(longer[: len(shorter)]) == tuple(shorter)
