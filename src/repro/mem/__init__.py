"""The shared-memory half of the M&M model (paper Section 3).

Each :class:`~repro.mem.memory.Memory` hosts registers addressed by
structured keys, grouped into :class:`~repro.mem.regions.RegionSpec` regions.
A region carries a permission triple ``(R, W, RW)`` and an optional
``legalChange`` policy governing dynamic permission changes.  Crashed
memories hang: operations sent to them never return.
"""

from repro.mem.layout import MemoryLayout
from repro.mem.memory import Memory
from repro.mem.operations import (
    ChangePermissionOp,
    ProbeOp,
    ReadOp,
    ReadSnapshotOp,
    SnapshotOp,
    WriteOp,
)
from repro.mem.permissions import (
    Permission,
    allow_any_change,
    exclusive_grab_policy,
    revoke_only_policy,
    static_permissions,
)
from repro.mem.regions import RegionSpec

__all__ = [
    "ChangePermissionOp",
    "Memory",
    "MemoryLayout",
    "Permission",
    "ProbeOp",
    "ReadOp",
    "ReadSnapshotOp",
    "RegionSpec",
    "SnapshotOp",
    "WriteOp",
    "allow_any_change",
    "exclusive_grab_policy",
    "revoke_only_policy",
    "static_permissions",
]
