"""Permission triples and ``legalChange`` policies (paper Section 3).

A permission is three disjoint sets of processes ``(R, W, RW)``: a process
may read a region if it is in ``R`` or ``RW`` and write if in ``W`` or
``RW``.  An algorithm declares, per region, a ``legalChange`` predicate that
the memory evaluates whenever ``changePermission`` is invoked; if it returns
False the change is a no-op.  ``legalChange`` is what lets algorithms expose
*dynamic* permissions to honest protocol steps while keeping Byzantine
processes from grabbing access they should not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.types import ProcessId


def _fs(processes: Iterable[int]) -> frozenset:
    return frozenset(ProcessId(p) for p in processes)


@dataclass(frozen=True)
class Permission:
    """Disjoint sets of readers, writers and reader-writers for a region."""

    read: frozenset = field(default_factory=frozenset)
    write: frozenset = field(default_factory=frozenset)
    readwrite: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        overlap = (self.read & self.write) | (self.read & self.readwrite) | (
            self.write & self.readwrite
        )
        if overlap:
            raise ValueError(f"permission sets must be disjoint, overlap={overlap}")

    def can_read(self, pid: ProcessId) -> bool:
        """True if *pid* has read permission (member of R or RW)."""
        return pid in self.read or pid in self.readwrite

    def can_write(self, pid: ProcessId) -> bool:
        """True if *pid* has write permission (member of W or RW)."""
        return pid in self.write or pid in self.readwrite

    def summary(self) -> str:
        """Compact ``r:.. w:.. rw:..`` rendering for traces and timelines."""

        def names(processes: frozenset) -> str:
            return ",".join(f"p{int(p) + 1}" for p in sorted(processes)) or "-"

        return f"r:{names(self.read)} w:{names(self.write)} rw:{names(self.readwrite)}"

    @staticmethod
    def swmr(owner: int, all_processes: Iterable[int]) -> "Permission":
        """Single-Writer Multi-Reader permission: ``R = P \\ {p}, RW = {p}``."""
        others = _fs(p for p in all_processes if p != owner)
        return Permission(read=others, readwrite=_fs([owner]))

    @staticmethod
    def exclusive_writer(owner: int, all_processes: Iterable[int]) -> "Permission":
        """One exclusive reader-writer, everyone else read-only.

        This is the Protected Memory Paxos permission shape:
        ``(R: P - {p}, W: empty, RW: {p})``.
        """
        others = _fs(p for p in all_processes if p != owner)
        return Permission(read=others, readwrite=_fs([owner]))

    @staticmethod
    def read_only(all_processes: Iterable[int]) -> "Permission":
        """Everyone may read, nobody may write (Cheap Quorum post-revocation)."""
        return Permission(read=_fs(all_processes))

    @staticmethod
    def open(all_processes: Iterable[int]) -> "Permission":
        """Everyone may read and write (the Disk Paxos model, Section 3)."""
        return Permission(readwrite=_fs(all_processes))


#: ``legalChange(pid, old, new) -> bool`` — evaluated at the memory.
LegalChangeFn = Callable[[ProcessId, Permission, Permission], bool]


def static_permissions(pid: ProcessId, old: Permission, new: Permission) -> bool:
    """The always-False policy: permissions are static (paper Section 3)."""
    return False


def allow_any_change(pid: ProcessId, old: Permission, new: Permission) -> bool:
    """The always-True policy (useful only in crash-fault settings)."""
    return True


def revoke_only_policy(target: Permission) -> LegalChangeFn:
    """Allow only changes to exactly *target* (typically a revocation).

    Cheap Quorum uses this for the leader region: the only legal change is
    removing the leader's write permission, i.e. switching to read-only for
    everybody (paper Section 4.2).
    """

    def policy(pid: ProcessId, old: Permission, new: Permission) -> bool:
        return new == target

    return policy


def adversarial_grab(pid: ProcessId, n_processes: int) -> Permission:
    """The permission-storm default request: exclusive write for *pid*.

    This is the one shape :func:`exclusive_grab_policy` accepts, so a storm
    of these against a Protected-Memory-Paxos region is a *legal* takeover
    barrage — the paper's permission-churn adversary, which the leader must
    out-retry rather than out-law.
    """
    return Permission.exclusive_writer(int(pid), range(n_processes))


def exclusive_grab_policy(all_processes: Iterable[int]) -> LegalChangeFn:
    """Allow any process to grab exclusive write access for itself.

    Protected Memory Paxos' permission shape: a new leader ``p`` may switch a
    region to ``(R: P - {p}, W: empty, RW: {p})``, and only to that shape for
    itself — a process cannot hand exclusivity to somebody else.
    """

    processes = _fs(all_processes)

    def policy(pid: ProcessId, old: Permission, new: Permission) -> bool:
        return new == Permission.exclusive_writer(pid, processes)

    return policy
