"""Permission triples and ``legalChange`` policies (paper Section 3).

A permission is three disjoint sets of processes ``(R, W, RW)``: a process
may read a region if it is in ``R`` or ``RW`` and write if in ``W`` or
``RW``.  An algorithm declares, per region, a ``legalChange`` predicate that
the memory evaluates whenever ``changePermission`` is invoked; if it returns
False the change is a no-op.  ``legalChange`` is what lets algorithms expose
*dynamic* permissions to honest protocol steps while keeping Byzantine
processes from grabbing access they should not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.types import ProcessId


def _fs(processes: Iterable[int]) -> frozenset:
    return frozenset(ProcessId(p) for p in processes)


@dataclass(frozen=True)
class Permission:
    """Disjoint sets of readers, writers and reader-writers for a region."""

    read: frozenset = field(default_factory=frozenset)
    write: frozenset = field(default_factory=frozenset)
    readwrite: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        overlap = (self.read & self.write) | (self.read & self.readwrite) | (
            self.write & self.readwrite
        )
        if overlap:
            raise ValueError(f"permission sets must be disjoint, overlap={overlap}")

    def can_read(self, pid: ProcessId) -> bool:
        """True if *pid* has read permission (member of R or RW)."""
        return pid in self.read or pid in self.readwrite

    def can_write(self, pid: ProcessId) -> bool:
        """True if *pid* has write permission (member of W or RW)."""
        return pid in self.write or pid in self.readwrite

    def summary(self) -> str:
        """Compact ``r:.. w:.. rw:..`` rendering for traces and timelines."""

        def names(processes: frozenset) -> str:
            return ",".join(f"p{int(p) + 1}" for p in sorted(processes)) or "-"

        return f"r:{names(self.read)} w:{names(self.write)} rw:{names(self.readwrite)}"

    @staticmethod
    def swmr(owner: int, all_processes: Iterable[int]) -> "Permission":
        """Single-Writer Multi-Reader permission: ``R = P \\ {p}, RW = {p}``."""
        others = _fs(p for p in all_processes if p != owner)
        return Permission(read=others, readwrite=_fs([owner]))

    @staticmethod
    def exclusive_writer(owner: int, all_processes: Iterable[int]) -> "Permission":
        """One exclusive reader-writer, everyone else read-only.

        This is the Protected Memory Paxos permission shape:
        ``(R: P - {p}, W: empty, RW: {p})``.
        """
        others = _fs(p for p in all_processes if p != owner)
        return Permission(read=others, readwrite=_fs([owner]))

    @staticmethod
    def read_only(all_processes: Iterable[int]) -> "Permission":
        """Everyone may read, nobody may write (Cheap Quorum post-revocation)."""
        return Permission(read=_fs(all_processes))

    @staticmethod
    def open(all_processes: Iterable[int]) -> "Permission":
        """Everyone may read and write (the Disk Paxos model, Section 3)."""
        return Permission(readwrite=_fs(all_processes))


#: ``legalChange(pid, old, new) -> bool`` — evaluated at the memory.
LegalChangeFn = Callable[[ProcessId, Permission, Permission], bool]


def static_permissions(pid: ProcessId, old: Permission, new: Permission) -> bool:
    """The always-False policy: permissions are static (paper Section 3)."""
    return False


def allow_any_change(pid: ProcessId, old: Permission, new: Permission) -> bool:
    """The always-True policy (useful only in crash-fault settings)."""
    return True


def revoke_only_policy(target: Permission) -> LegalChangeFn:
    """Allow only changes to exactly *target* (typically a revocation).

    Cheap Quorum uses this for the leader region: the only legal change is
    removing the leader's write permission, i.e. switching to read-only for
    everybody (paper Section 4.2).
    """

    def policy(pid: ProcessId, old: Permission, new: Permission) -> bool:
        return new == target

    return policy


def adversarial_grab(pid: ProcessId, n_processes: int) -> Permission:
    """The permission-storm default request: exclusive write for *pid*.

    This is the one shape :func:`exclusive_grab_policy` accepts, so a storm
    of these against a Protected-Memory-Paxos region is a *legal* takeover
    barrage — the paper's permission-churn adversary, which the leader must
    out-retry rather than out-law.
    """
    return Permission.exclusive_writer(int(pid), range(n_processes))


def epoch_fence_policy(
    all_processes: Iterable[int], retirable: bool = True
) -> LegalChangeFn:
    """The reconfiguration fence policy for elastic shard-log regions.

    Two legal moves, mirroring how the paper's permission mechanism is
    repurposed from failover to membership change:

    * **exclusive grant** — the region may switch to the exclusive-writer
      shape ``(R: P - {x}, W: empty, RW: {x})`` for any replica ``x``.
      This covers both the PMP self-grab (a new-epoch leader's takeover
      prepare) and an epoch activation installing a named leader; either
      way the change *revokes* every old-epoch writer at this memory
      before the new-epoch writer holds anything.
    * **retirement** (only when *retirable*) — the region may switch to
      the empty permission (nobody reads, nobody writes): the tombstone a
      merged-away shard's log is fenced to once its keys have migrated
      out.  Retirement is STICKY: once the tombstone is installed, the
      only legal change is the tombstone again, so a deposed old-epoch
      leader (or a recovered stale incarnation) can never grab a retired
      region back — its post-revocation writes NAK forever.

    Regions that must never die — the config log's own region above all —
    pass ``retirable=False``: an errant (or scripted-adversarial)
    tombstone request against them is an ordinary illegal change, not an
    irreversible bricking of the control plane.
    """

    processes = _fs(all_processes)
    tombstone = Permission()

    def policy(pid: ProcessId, old: Permission, new: Permission) -> bool:
        if old == tombstone:
            return new == tombstone
        if new == tombstone:
            return retirable
        return (
            not new.write
            and len(new.readwrite) == 1
            and new.readwrite <= processes
            and new.read == processes - new.readwrite
        )

    return policy


def exclusive_grab_policy(all_processes: Iterable[int]) -> LegalChangeFn:
    """Allow any process to grab exclusive write access for itself.

    Protected Memory Paxos' permission shape: a new leader ``p`` may switch a
    region to ``(R: P - {p}, W: empty, RW: {p})``, and only to that shape for
    itself — a process cannot hand exclusivity to somebody else.
    """

    processes = _fs(all_processes)

    def policy(pid: ProcessId, old: Permission, new: Permission) -> bool:
        return new == Permission.exclusive_writer(pid, processes)

    return policy
