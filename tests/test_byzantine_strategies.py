"""Byzantine strategies: enforcement boundaries they cannot cross."""

import pytest

from repro import (
    CheapQuorumEquivocatorLeader,
    EquivocatingBroadcaster,
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    PermissionAbuser,
    ProtectedMemoryPaxos,
    RobustBackup,
    SilentByzantine,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig, LEADER_REGION
from repro.mem.operations import WriteOp
from repro.mem.permissions import Permission

from tests.conftest import env_of, make_kernel


def _fr():
    return FastRobust(
        FastRobustConfig(
            cheap_quorum=CheapQuorumConfig(
                leader_timeout=15.0, unanimity_timeout=25.0
            )
        )
    )


class TestEnforcementBoundaries:
    def test_byzantine_cannot_write_other_swmr_regions(self):
        """The memory is the trusted component: a Byzantine process writing
        somebody else's SWMR slot gets nak, full stop."""
        from repro.registers.swmr import swmr_regions

        kernel = make_kernel(3, 3, regions=swmr_regions("s", range(3), range(3)))
        kernel.mark_byzantine(2)
        env = env_of(kernel, 2)

        def attack():
            results = []
            for victim in (0, 1):
                result = yield from env.write(
                    0, f"s:{victim}", ("s", victim, "k"), "corrupted"
                )
                results.append(result.ok)
            return results

        task = kernel.spawn(2, "attack", attack())
        kernel.run(until=100)
        assert task.result == [False, False]

    def test_byzantine_cannot_forge_signatures(self):
        kernel = make_kernel()
        byz = env_of(kernel, 2)
        honest = env_of(kernel, 0)
        # The Byzantine process signs with its own key and claims otherwise:
        forged = byz.sign("fake")
        assert not honest.valid(0, forged)  # claimed signer 0: rejected
        assert honest.valid(2, forged)  # it only ever counts as p3's word

    def test_permission_abuser_never_changes_anything(self):
        from repro.consensus.cheap_quorum import cq_regions

        kernel = make_kernel(3, 3, regions=cq_regions(3, leader=0))
        kernel.mark_byzantine(2)
        env = env_of(kernel, 2)
        before = [m.permission_of(LEADER_REGION) for m in kernel.memories]
        strategy = PermissionAbuser()
        for name, gen in strategy.tasks(env, None):
            kernel.spawn(2, name, gen)
        kernel.run(until=50)
        after = [m.permission_of(LEADER_REGION) for m in kernel.memories]
        assert before == after


class TestStrategyMatrix:
    """Each strategy against the protocol it targets; honest side wins."""

    @pytest.mark.parametrize(
        "strategy,seat,omega",
        [
            (SilentByzantine(), 1, None),
            (SilentByzantine(), 0, 1),  # Byzantine occupies the leader seat
            (EquivocatingBroadcaster(), 2, None),
            (CheapQuorumEquivocatorLeader(), 0, 1),
        ],
        ids=["silent-follower", "silent-leader", "equivocator", "byz-cq-leader"],
    )
    def test_fast_robust_survives(self, strategy, seat, omega):
        faults = FaultPlan().make_byzantine(seat, strategy)
        result = run_consensus(
            _fr(), 3, 3, faults=faults,
            omega=(lambda now: omega) if omega is not None else None,
            deadline=40_000,
        )
        assert result.all_decided and result.agreed
        assert not result.metrics.violations

    def test_two_byzantine_of_five(self):
        faults = (
            FaultPlan()
            .make_byzantine(3, SilentByzantine())
            .make_byzantine(4, EquivocatingBroadcaster())
        )
        result = run_consensus(_fr(), 5, 3, faults=faults, deadline=60_000)
        assert result.all_decided and result.agreed

    def test_crash_model_protocol_unaffected_by_byzantine_writes(self):
        """PMP is a crash-model algorithm, but the permission system still
        stops a (hypothetical) Byzantine non-leader from corrupting slots."""
        from repro.consensus.protected_memory_paxos import pmp_regions

        kernel = make_kernel(3, 3, regions=pmp_regions(3))
        env = env_of(kernel, 1)

        def rogue_write():
            result = yield from env.write(0, "pmp", ("pmp", 1), "garbage")
            return result.ok

        task = kernel.spawn(1, "rogue", rogue_write())
        kernel.run(until=50)
        assert task.result is False  # p1 holds exclusivity initially


class TestStrategySurface:
    def test_all_strategies_expose_tasks(self):
        kernel = make_kernel()
        env = env_of(kernel, 0)
        for strategy in (
            SilentByzantine(),
            EquivocatingBroadcaster(),
            CheapQuorumEquivocatorLeader(),
            PermissionAbuser(),
        ):
            tasks = strategy.tasks(env, "input")
            assert tasks and all(len(t) == 2 for t in tasks)

    def test_base_class_is_abstract(self):
        from repro.failures.byzantine import ByzantineStrategy

        with pytest.raises(NotImplementedError):
            ByzantineStrategy().tasks(None, None)
